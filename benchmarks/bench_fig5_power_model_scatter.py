"""Figure 5 — actual vs predicted power on both platforms.

Regenerates the paper's Figure 5: out-of-fold predicted power against
measured power for the MNIST and CIFAR-10 campaigns on the GTX 1070 and
the Tegra TX1.  "Alignment across the blue line indicates good prediction
results ... our proposed models can accurately capture both the
high-performance and low-power design regimes."
"""

import numpy as np

from repro.experiments.ascii_plot import scatter
from repro.experiments.model_accuracy import figure5_series

from _shared import get_model_accuracy_study, write_artifact


def test_fig5_power_model_scatter(benchmark):
    study = get_model_accuracy_study()
    series = benchmark(lambda: figure5_series(study))

    lines = ["Figure 5: actual vs predicted power (W), out-of-fold"]
    for key, data in series.items():
        lines.append("")
        lines.append(
            scatter(
                data["actual_w"],
                data["predicted_w"],
                title=f"[{key}] predicted vs actual power",
                x_label="actual (W)",
                y_label="predicted (W)",
                width=48,
                height=14,
            )
        )
        lines.append(f"[{key}]  actual  predicted")
        order = np.argsort(data["actual_w"])
        for index in order:
            lines.append(
                f"  {data['actual_w'][index]:7.2f}  {data['predicted_w'][index]:7.2f}"
            )
    text = "\n".join(lines)
    print()
    for key, data in series.items():
        r = np.corrcoef(data["actual_w"], data["predicted_w"])[0, 1]
        print(
            f"{key:18s} r={r:.3f} "
            f"range {data['actual_w'].min():6.1f}-{data['actual_w'].max():6.1f} W"
        )
    write_artifact("fig5.txt", text)

    # Alignment on the identity line for every pair.
    for key, data in series.items():
        r = np.corrcoef(data["actual_w"], data["predicted_w"])[0, 1]
        assert r > 0.85, key

    # The two power regimes are clearly separated (GTX ~70-120 W vs
    # TX1 ~6-15 W) — both captured by the same modeling recipe.
    gtx = series["mnist-gtx1070"]["actual_w"]
    tx1 = series["mnist-tx1"]["actual_w"]
    assert gtx.min() > tx1.max()
