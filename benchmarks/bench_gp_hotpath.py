"""Benchmark: the fast GP surrogate hot path vs the seed's fit loop.

Three acceptance checks for the surrogate engine (ISSUE 2):

1. **Gradient correctness** — the fused analytic NLML gradient matches
   central finite differences to ``rtol 1e-5`` for Matérn-5/2 and RBF over
   random hyper-parameter draws.
2. **Incremental exactness** — a posterior grown by rank-1 Cholesky
   appends matches the from-scratch recompute at the same
   hyper-parameters to ``atol 1e-8`` (mean and variance).
3. **Speedup** — on a sequential 100-observation fit-predict loop, the
   fast path (analytic gradients + warm-started scheduled refits + rank-1
   appends) beats the seed path (fresh GP per round, finite-difference
   multi-restart fit) by >= 3x wall-clock.

Timings land in ``benchmarks/out/BENCH_gp_hotpath.json`` (uploaded as a CI
artifact) plus a human-readable ``gp_hotpath.txt``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.gp.gp import GaussianProcess
from repro.gp.kernels import RBF, Matern52
from repro.gp.profile import SurrogateProfile

from _shared import write_artifact

DIM = 6
N_OBS = 100
N_INIT = 5
N_TEST = 256
REFIT_EVERY = 10
MIN_SPEEDUP = 3.0
GRAD_RTOL = 1e-5
APPEND_ATOL = 1e-8

_RESULTS: dict = {}


def _objective(X: np.ndarray) -> np.ndarray:
    return (
        np.sin(3.0 * X[:, 0])
        + X[:, 1] ** 2
        + 0.5 * np.cos(5.0 * X[:, 2]) * X[:, 3]
    )


def _data(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, DIM))
    y = _objective(X) + 0.02 * rng.normal(size=n)
    return X, y


def test_analytic_gradients_match_central_differences():
    rng = np.random.default_rng(42)
    X, y = _data(25, seed=1)
    worst = 0.0
    for kernel_cls in (Matern52, RBF):
        gp = GaussianProcess(kernel=kernel_cls(DIM))
        gp.fit(X, y, optimize_hypers=False)
        for _ in range(10):
            theta = gp._pack() + rng.normal(scale=0.7, size=gp._pack().shape)
            _, grad = gp._nlml_value_and_grad(theta.copy())
            # Central-difference the same fused value function, so the
            # only disagreement left is truncation error.
            eps = 1e-6
            numeric = np.zeros_like(theta)
            for j in range(theta.size):
                hi, lo = theta.copy(), theta.copy()
                hi[j] += eps
                lo[j] -= eps
                numeric[j] = (
                    gp._nlml_value_and_grad(hi)[0]
                    - gp._nlml_value_and_grad(lo)[0]
                ) / (2.0 * eps)
            np.testing.assert_allclose(
                grad, numeric, rtol=GRAD_RTOL, atol=1e-7
            )
            denom = np.maximum(np.abs(numeric), 1e-7)
            worst = max(worst, float(np.max(np.abs(grad - numeric) / denom)))
    _RESULTS["grad_max_rel_err"] = worst


def test_rank1_append_matches_full_recompute():
    X, y = _data(N_OBS, seed=2)
    incremental = GaussianProcess(kernel=Matern52(DIM))
    incremental.fit(X[:N_INIT], y[:N_INIT], restarts=1,
                    rng=np.random.default_rng(3))
    for i in range(N_INIT, N_OBS):
        incremental.append(X[i], y[i])

    # Same hyper-parameters and target transform, posterior from scratch.
    reference = GaussianProcess(
        kernel=incremental.kernel.copy(),
        noise_variance=incremental.noise_variance,
        normalize_y=False,
    )
    reference.fit(
        X, incremental._standardizer.transform(y), optimize_hypers=False
    )
    Xs = np.random.default_rng(4).uniform(size=(N_TEST, DIM))
    mean_inc, var_inc = incremental.predict(Xs)
    mean_ref = incremental._standardizer.inverse_mean(reference.predict(Xs)[0])
    var_ref = incremental._standardizer.inverse_variance(
        reference.predict(Xs)[1]
    )
    np.testing.assert_allclose(mean_inc, mean_ref, atol=APPEND_ATOL)
    np.testing.assert_allclose(var_inc, var_ref, atol=APPEND_ATOL)
    _RESULTS["append_max_abs_err"] = float(
        max(np.max(np.abs(mean_inc - mean_ref)),
            np.max(np.abs(var_inc - var_ref)))
    )


def _seed_loop(X: np.ndarray, y: np.ndarray, Xs: np.ndarray) -> None:
    """The seed hot path: fresh GP + finite-difference fit every round."""
    rng = np.random.default_rng(10)
    for n in range(N_INIT, N_OBS + 1):
        gp = GaussianProcess(kernel=Matern52(DIM))
        gp.fit(X[:n], y[:n], restarts=2, rng=rng, gradient="numeric")
        gp.predict(Xs)


def _fast_loop(
    X: np.ndarray, y: np.ndarray, Xs: np.ndarray, profile: SurrogateProfile
) -> None:
    """Analytic gradients + warm-started scheduled refits + rank-1 appends."""
    rng = np.random.default_rng(10)
    gp = GaussianProcess(kernel=Matern52(DIM), profile=profile)
    last_refit = 0
    for n in range(N_INIT, N_OBS + 1):
        if n == N_INIT:
            gp.fit(X[:n], y[:n], restarts=2, rng=rng)
            last_refit = n
        elif n - last_refit >= REFIT_EVERY:
            # Warm start: theta of the previous fit, restarts decayed.
            gp.fit(X[:n], y[:n], restarts=1, rng=rng)
            last_refit = n
        else:
            gp.append(X[n - 1], y[n - 1])
        gp.predict(Xs)


def test_hotpath_speedup():
    X, y = _data(N_OBS, seed=5)
    Xs = np.random.default_rng(6).uniform(size=(N_TEST, DIM))

    start = time.perf_counter()
    _seed_loop(X, y, Xs)
    t_seed = time.perf_counter() - start

    profile = SurrogateProfile()
    start = time.perf_counter()
    _fast_loop(X, y, Xs, profile)
    t_fast = time.perf_counter() - start

    speedup = t_seed / t_fast
    _RESULTS.update(
        {
            "n_observations": N_OBS,
            "refit_every": REFIT_EVERY,
            "seed_loop_s": t_seed,
            "fast_loop_s": t_fast,
            "speedup": speedup,
            "stages": profile.as_dict()["stages"],
        }
    )
    assert speedup >= MIN_SPEEDUP, (
        f"fast surrogate loop only {speedup:.1f}x faster than the seed "
        f"path (needed {MIN_SPEEDUP}x): seed {t_seed:.2f} s, "
        f"fast {t_fast:.2f} s"
    )

    write_artifact(
        "BENCH_gp_hotpath.json", json.dumps(_RESULTS, indent=1) + "\n"
    )
    stage_lines = [
        f"  {stage:12s} {info['seconds'] * 1e3:9.1f} ms  "
        f"{info['calls']:5d} calls"
        for stage, info in _RESULTS["stages"].items()
    ]
    write_artifact(
        "gp_hotpath.txt",
        "\n".join(
            [
                f"observations          {N_OBS}",
                f"grad max rel err      {_RESULTS['grad_max_rel_err']:.3g}",
                f"append max abs err    {_RESULTS['append_max_abs_err']:.3g}",
                f"seed loop (FD fits)   {t_seed:.2f} s",
                f"fast loop             {t_fast:.2f} s",
                f"speedup               {speedup:.1f}x",
                "fast-loop stages:",
            ]
            + stage_lines
        )
        + "\n",
    )


if __name__ == "__main__":
    from pathlib import Path

    test_analytic_gradients_match_central_differences()
    test_rank1_append_matches_full_recompute()
    test_hotpath_speedup()
    print(
        (Path(__file__).resolve().parent / "out" / "gp_hotpath.txt").read_text()
    )
