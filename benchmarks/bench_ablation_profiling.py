"""Ablation — how much offline profiling do the models need?

The paper trains its models on an offline random-sampling campaign but
does not study the campaign's size.  This bench sweeps the number of
profiled configurations (and the sampling design: i.i.d. random vs
Latin hypercube) and reports the 10-fold-CV RMSPE of the power model on
CIFAR-10/GTX 1070 — the practical "how long must I profile before I can
trust the constraint screen?" curve.
"""

import numpy as np

from repro.experiments.reporting import render_table
from repro.hwsim.devices import GTX_1070
from repro.hwsim.profiler import HardwareProfiler
from repro.models.crossval import cross_validate, rmspe
from repro.models.linear import LinearModel
from repro.models.profiling import run_profiling_campaign
from repro.space.presets import cifar10_space

from _shared import write_artifact

SIZES = (20, 40, 80, 160)


def test_ablation_profiling(benchmark):
    space = cifar10_space()

    def run():
        scores = {}
        for method in ("random", "lhs"):
            for size in SIZES:
                rng = np.random.default_rng(100 + size)
                profiler = HardwareProfiler(GTX_1070, rng)
                campaign = run_profiling_campaign(
                    space, "cifar10", profiler, size, rng, method=method
                )
                score, _ = cross_validate(
                    lambda: LinearModel(fit_intercept=True),
                    campaign.Z,
                    campaign.power_w,
                    k=10,
                    rng=np.random.default_rng(7),
                    metric=rmspe,
                )
                scores[(method, size)] = (score, campaign.total_time_s)
        return scores

    scores = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (method, size), (score, campaign_time) in scores.items():
        rows.append(
            [
                method,
                str(size),
                f"{score:.2f}%",
                f"{campaign_time / 60:.1f} min",
            ]
        )
    table = render_table(
        "Ablation: profiling-campaign size (power model, CIFAR-10/GTX 1070)",
        ["Sampling", "Campaign size", "CV RMSPE", "Campaign cost"],
        rows,
    )
    print()
    print(table)
    write_artifact("ablation_profiling.txt", table)

    # More profiling helps (monotone-ish), and even the smallest campaign
    # that supports 10-fold CV stays usable; the full-size campaigns are
    # inside the paper's <7% regime.
    for method in ("random", "lhs"):
        assert scores[(method, 160)][0] < 7.0
        assert scores[(method, 160)][0] <= scores[(method, 20)][0] + 1.0