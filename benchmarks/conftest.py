"""Benchmark-suite plumbing.

Benchmarks live outside the default ``testpaths`` and regenerate whole
paper artifacts, so every one of them is marked ``slow`` — the CI fast
lane (``-m "not slow"``) skips them wholesale when they are collected
explicitly via ``pytest benchmarks``.
"""

import sys
from pathlib import Path

import pytest

# Make `from _shared import ...` work regardless of the invocation cwd.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_collection_modifyitems(items):
    for item in items:
        item.add_marker(pytest.mark.slow)
