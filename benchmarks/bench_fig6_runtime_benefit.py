"""Figure 6 — benefit of the models + early termination (CIFAR-10).

Regenerates the paper's Figure 6: best observed feasible test error
against total optimization wall time on CIFAR-10/GTX 1070, with each
solver's HyperPower implementation (solid) against its exhaustive default
(dotted).  "All four methods reach a high-performance region faster than
the default (exhaustive) methods, which can be seen with all solid lines
lying to the left of the dotted ones."
"""

import numpy as np

from repro.experiments.ascii_plot import step_lines
from repro.experiments.fixed_runtime import figure6_series

from _shared import get_runtime_study, write_artifact


def _time_to_error(times, values, target):
    for t, v in zip(times, values):
        if v <= target:
            return t
    return float("inf")


def test_fig6_runtime_benefit(benchmark):
    study = get_runtime_study()
    series = benchmark(lambda: figure6_series(study, "cifar10-gtx1070"))

    lines = ["Figure 6: best feasible error vs wall time (CIFAR-10, GTX 1070)"]
    for solver, variants in series.items():
        for variant, (times, values) in variants.items():
            style = "solid" if variant == "hyperpower" else "dotted"
            lines.append("")
            lines.append(f"[{solver} / {variant} ({style})]  t_hours  best_error")
            # Subsample long step series for the artifact.
            step = max(1, len(times) // 60)
            for t, v in zip(times[::step], values[::step]):
                lines.append(f"  {t/3600.0:8.3f}  {v:6.4f}")
    plot = step_lines(
        {
            f"{solver}/{'hp' if variant == 'hyperpower' else 'def'}": (
                times / 3600.0,
                values * 100,
            )
            for solver, variants in series.items()
            for variant, (times, values) in variants.items()
        },
        title="Figure 6: best feasible error vs wall time (CIFAR-10, GTX 1070)",
        x_label="wall time (h)",
        y_label="best error (%)",
        width=72,
    )
    text = "\n".join(lines) + "\n\n" + plot
    print()
    for solver, variants in series.items():
        for variant, (times, values) in variants.items():
            print(
                f"{solver:10s} {variant:10s} final best={values[-1]*100:6.2f}% "
                f"samples={len(times)}"
            )
    print(plot)
    write_artifact("fig6.txt", text)

    # Solid left of dotted: at a common error level, the HyperPower trace
    # gets there no later than the default for most solvers.
    earlier = later = 0
    for solver, variants in series.items():
        d_times, d_values = variants["default"]
        h_times, h_values = variants["hyperpower"]
        target = min(float(np.min(d_values)), float(np.min(h_values))) + 0.02
        t_default = _time_to_error(d_times, d_values, target)
        t_hyper = _time_to_error(h_times, h_values, target)
        if t_hyper <= t_default:
            earlier += 1
        else:
            later += 1
    assert earlier >= later

    # Density: HyperPower traces contain far more samples (cheaply
    # discarded ones included).
    rand_default = len(series["Rand"]["default"][0])
    rand_hyper = len(series["Rand"]["hyperpower"][0])
    assert rand_hyper > 3 * rand_default
