"""Benchmark: multi-fidelity rung scheduling vs async full-fidelity BO.

Two acceptance checks for successive-halving rungs (ISSUE 10):

1. **Time-to-best speedup** — on the HW-IECI/hyperpower cell, async SHA
   (rung-scheduled partial trainings with top-1/eta promotion) reaches
   the final error level at least 2x earlier in simulated wall-clock
   time than async full-fidelity BO at the same simulated budget and
   worker count.
2. **Worker occupancy** — rung scheduling keeps the fleet >= 0.9 busy
   on average despite the pause/promote/cull churn (occupancy = busy
   worker-seconds over ``workers * makespan``).

The gate regime is the ImageNet-class pair, where one full training
costs ~6.5 simulated days, so fidelity control has real leverage: a
16-simulated-day budget on 8 workers affords ~20 full trainings but
150+ rung-scheduled partial ones.  Divergence detection is tuned for
the slow surface (``check_epoch=10`` — the dataset's tau is 10-40
epochs, so the MNIST-tuned default would cull healthy runs at chance),
which makes the full-fidelity baseline the *strong* one: it already
kills divergers early and pays full price only for survivors.

Time-to-best uses the mean-incumbent convention (the paper's Table 5
aggregates over repeats; single-seed incumbent curves on this surface
are min-over-noise lotteries): the per-seed best-feasible-so-far step
curves are averaged on a shared simulated-time grid, the target is the
worse of the two arms' mean final errors — both arms attain it — and
the speedup is the ratio of the first grid times at which each mean
curve crosses the target.

The full sweep reports every solver/variant cell (single seed) and
lands in ``benchmarks/out/BENCH_multifidelity.json`` (uploaded as a CI
artifact) plus a human-readable ``multifidelity.txt``.
"""

from __future__ import annotations

import functools
import json
import math

import numpy as np

from repro.core.early_term import EarlyTermination
from repro.core.hyperpower import SOLVERS, VARIANTS
from repro.experiments.setup import quick_setup
from repro.telemetry import Telemetry
from repro.trainsim.dataset import get_dataset

from _shared import write_artifact

#: Simulated wall-clock budget: ~2.5x one full training, so the
#: full-fidelity arm completes several GP-guided generations and the
#: post-budget drain tail (in-flight continuations finishing while the
#: queue is empty) is amortized enough for >= 0.9 rung occupancy.
BUDGET_S = 16 * 86400.0
WORKERS = 8
RUNG_KW = dict(rungs=3, min_epochs=7, eta=3)
GATE_SEEDS = (0, 1, 2, 3, 4)
SWEEP_SEED = 0
MIN_TTB_SPEEDUP = 2.0
MIN_OCCUPANCY = 0.9
GRID_POINTS = 4000

_RESULTS: dict = {
    "dataset": "imagenet",
    "device": "gtx1070",
    "budget_s": BUDGET_S,
    "workers": WORKERS,
    "rung_kw": dict(RUNG_KW),
    "cells": {},
    "gate": {},
}


@functools.lru_cache(maxsize=1)
def _setup():
    ds = get_dataset("imagenet")
    return quick_setup(
        "imagenet", "gtx1070", power_budget_w=130.0, memory_budget_gb=2.4,
        seed=0, profiling_samples=100,
        # tau is 10-40 epochs on this surface: check later than the
        # MNIST-tuned default or every healthy run looks stuck at chance.
        early_termination=EarlyTermination(
            chance_error=ds.chance_error, check_epoch=10, min_improvement=0.1
        ),
    )


@functools.lru_cache(maxsize=64)
def _run_cell(solver, variant, with_rungs, run_seed):
    telemetry = Telemetry()
    kw = dict(RUNG_KW) if with_rungs else {}
    result = _setup().run(
        solver, variant, run_seed=run_seed, max_time_s=BUDGET_S,
        backend="serial", workers=WORKERS, scheduler="async",
        telemetry=telemetry, **kw,
    )
    snap = telemetry.metrics.snapshot()
    occupancy = snap.get("schedule.occupancy", {}).get("value")
    return result, occupancy


def _step_at(times, errors, grid):
    """Best-so-far step curve sampled on ``grid`` (NaN before first obs)."""
    out = np.full(grid.shape, np.nan)
    for i, t in enumerate(grid):
        k = np.searchsorted(times, t, side="right") - 1
        if k >= 0:
            out[i] = errors[k]
    return out


def _mean_curve(results, grid):
    """Mean incumbent trajectory; before a run's first completion it sits
    at chance error (nothing trained yet = nothing better than chance)."""
    chance = _setup().dataset.chance_error
    stack = np.vstack(
        [_step_at(*r.best_error_vs_time(), grid) for r in results]
    )
    return np.where(np.isnan(stack), chance, stack).mean(axis=0)


def _crossing(grid, curve, target) -> float:
    hit = np.nonzero(curve <= target + 1e-12)[0]
    return float(grid[hit[0]]) if hit.size else math.inf


def _time_to_target(result, target: float) -> float:
    times, values = result.best_error_vs_time()
    hit = values <= target + 1e-12
    if not hit.any():
        return math.inf
    return float(times[int(np.argmax(hit))])


def test_sweep_all_cells():
    """Full-fidelity vs rung scheduling across the eight cells (one seed).

    Report-only: single-seed incumbent curves are noise lotteries on
    this surface, so per-cell ratios scatter; the gate below averages
    trajectories over seeds on the headline cell.
    """
    for solver in sorted(SOLVERS):
        for variant in sorted(VARIANTS):
            runs = {}
            for with_rungs in (False, True):
                result, occupancy = _run_cell(
                    solver, variant, with_rungs, SWEEP_SEED
                )
                runs["rungs" if with_rungs else "full"] = (result, occupancy)
            target = max(r.best_feasible_error for r, _ in runs.values())
            cell = {}
            for mode, (result, occupancy) in runs.items():
                entry = {
                    "n_trained": result.n_trained,
                    "best_feasible_error": result.best_feasible_error,
                    "time_to_target_s": _time_to_target(result, target),
                }
                if occupancy is not None:
                    entry["occupancy"] = occupancy
                cell[mode] = entry
            cell["target_error"] = target
            t_full = cell["full"]["time_to_target_s"]
            t_rung = cell["rungs"]["time_to_target_s"]
            if t_rung > 0 and math.isfinite(t_full):
                cell["speedup"] = t_full / t_rung
            _RESULTS["cells"][f"{solver}__{variant}"] = cell


def test_multifidelity_gate():
    """The headline claim: async SHA reaches the mean final error level
    >= 2x sooner than async full-fidelity BO at equal simulated budget,
    with >= 0.9 mean worker occupancy under rung scheduling."""
    fulls, rungs, occupancies = [], [], []
    for run_seed in GATE_SEEDS:
        full, _ = _run_cell("HW-IECI", "hyperpower", False, run_seed)
        rung, occupancy = _run_cell("HW-IECI", "hyperpower", True, run_seed)
        fulls.append(full)
        rungs.append(rung)
        occupancies.append(occupancy)

    t_max = max(
        r.best_error_vs_time()[0][-1] for r in (*fulls, *rungs)
    )
    grid = np.linspace(0.0, t_max, GRID_POINTS)
    mean_full = _mean_curve(fulls, grid)
    mean_rung = _mean_curve(rungs, grid)
    # The worse of the two mean finals: both arms attain it, so the
    # crossing times are comparable.
    target = max(mean_full[-1], mean_rung[-1])
    t_full = _crossing(grid, mean_full, target)
    t_rung = _crossing(grid, mean_rung, target)
    speedup = t_full / t_rung
    mean_occupancy = float(np.mean(occupancies))

    _RESULTS["gate"] = {
        "cell": "HW-IECI__hyperpower",
        "seeds": list(GATE_SEEDS),
        "target_error": target,
        "mean_final_full": float(mean_full[-1]),
        "mean_final_rungs": float(mean_rung[-1]),
        "full_time_to_target_s": t_full,
        "rungs_time_to_target_s": t_rung,
        "speedup": speedup,
        "occupancies": [float(o) for o in occupancies],
        "mean_occupancy": mean_occupancy,
        "n_trained_full": [r.n_trained for r in fulls],
        "n_trained_rungs": [r.n_trained for r in rungs],
    }

    write_artifact(
        "BENCH_multifidelity.json", json.dumps(_RESULTS, indent=1) + "\n"
    )
    lines = [
        f"budget                {BUDGET_S / 86400:.0f} simulated days, "
        f"{WORKERS} workers, imagenet/gtx1070",
        f"gate cell             HW-IECI/hyperpower, "
        f"rungs={RUNG_KW['rungs']} min_epochs={RUNG_KW['min_epochs']} "
        f"eta={RUNG_KW['eta']} vs full fidelity",
        f"mean final error      full {mean_full[-1]:.4f}  "
        f"rungs {mean_rung[-1]:.4f}  (target {target:.4f})",
        f"time to target        full {t_full / 3600:7.1f} h  "
        f"rungs {t_rung / 3600:7.1f} h",
        f"speedup               {speedup:.2f}x (gate {MIN_TTB_SPEEDUP}x)",
        f"mean rung occupancy   {mean_occupancy:.3f} (gate {MIN_OCCUPANCY})",
        "per-cell (seed 0, single-run ratios are noisy; report only):",
    ]
    for name, cell in sorted(_RESULTS["cells"].items()):
        ratio = cell.get("speedup")
        lines.append(
            f"  {name:24s} full n={cell['full']['n_trained']:4d} "
            f"best {cell['full']['best_feasible_error']:.4f}  "
            f"rungs n={cell['rungs']['n_trained']:4d} "
            f"best {cell['rungs']['best_feasible_error']:.4f}  "
            + (f"{ratio:5.2f}x" if ratio is not None else "    --")
        )
    write_artifact("multifidelity.txt", "\n".join(lines) + "\n")

    assert speedup >= MIN_TTB_SPEEDUP, (
        f"rung scheduling only {speedup:.2f}x faster to the mean final "
        f"error level than full-fidelity BO (needed {MIN_TTB_SPEEDUP}x): "
        f"{_RESULTS['gate']!r}"
    )
    assert mean_occupancy >= MIN_OCCUPANCY, (
        f"mean rung-scheduled occupancy {mean_occupancy:.3f} below "
        f"{MIN_OCCUPANCY}: {occupancies!r}"
    )


if __name__ == "__main__":
    from pathlib import Path

    test_sweep_all_cells()
    test_multifidelity_gate()
    print(
        (Path(__file__).resolve().parent / "out" / "multifidelity.txt")
        .read_text()
    )
