"""Benchmark: asynchronous pipelined evaluation vs the round-barrier driver.

Two acceptance checks for the event-driven scheduler (ISSUE 5):

1. **Time-to-best speedup** — on the HW-IECI/hyperpower cell the async
   scheduler at 4 workers reaches the run's best feasible error level at
   least 1.5x earlier in simulated wall-clock time than the synchronous
   baseline (the paper's round loop at its default single worker), on
   every gate seed.
2. **Worker occupancy** — the 4-worker async pipeline keeps the fleet
   >= 0.9 busy on average (occupancy = busy worker-seconds over
   ``workers * makespan``, backoff waits excluded — they are charged to
   ``pool.retry_wait_s``).

The full sweep runs every solver/variant cell under sync and async at
1/2/4 workers and lands in ``benchmarks/out/BENCH_async_pipeline.json``
(uploaded as a CI artifact) plus a human-readable ``async_pipeline.txt``.

Time-to-best uses the time-to-target convention: within a cell, the
target error is the *worst* final best-feasible error across that cell's
runs, so every run attains it and the timestamps are comparable.
"""

from __future__ import annotations

import functools
import json
import math

import numpy as np

from repro.core.hyperpower import SOLVERS, VARIANTS
from repro.experiments.setup import quick_setup
from repro.telemetry import Telemetry

from _shared import write_artifact

BUDGET = 24
WORKER_COUNTS = (1, 2, 4)
GATE_SEEDS = (0, 1, 2)
MIN_TTB_SPEEDUP = 1.5
MIN_OCCUPANCY = 0.9

_RESULTS: dict = {"budget": BUDGET, "cells": {}, "gate": {}}


@functools.lru_cache(maxsize=1)
def _setup():
    return quick_setup(
        "mnist", "gtx1070", power_budget_w=85.0, memory_budget_gb=1.15,
        seed=0, profiling_samples=100,
    )


def _run_cell(solver, variant, scheduler, workers, run_seed=0):
    telemetry = Telemetry()
    result = _setup().run(
        solver, variant, run_seed=run_seed, max_evaluations=BUDGET,
        backend="serial", workers=workers, scheduler=scheduler,
        telemetry=telemetry,
    )
    snap = telemetry.metrics.snapshot()
    occupancy = snap.get("schedule.occupancy", {}).get("value")
    return result, occupancy


def _time_to_target(result, target: float) -> float:
    """First simulated timestamp at which best-so-far reaches ``target``."""
    times, values = result.best_error_vs_time()
    hit = values <= target + 1e-12
    if not hit.any():
        return math.inf
    return float(times[int(np.argmax(hit))])


def test_sweep_all_cells():
    """Sync vs async at 1/2/4 workers across the eight cells."""
    for solver in sorted(SOLVERS):
        for variant in sorted(VARIANTS):
            runs = {}
            for scheduler in ("sync", "async"):
                for workers in WORKER_COUNTS:
                    result, occupancy = _run_cell(
                        solver, variant, scheduler, workers
                    )
                    assert result.n_trained == BUDGET
                    runs[(scheduler, workers)] = (result, occupancy)
            # Worst final best across the cell's runs: every run reaches
            # it, so time-to-target is comparable within the cell.
            target = max(r.best_feasible_error for r, _ in runs.values())
            cell = {}
            for (scheduler, workers), (result, occupancy) in runs.items():
                entry = {
                    "makespan_s": result.wall_time_s,
                    "best_feasible_error": result.best_feasible_error,
                    "time_to_target_s": _time_to_target(result, target),
                }
                if occupancy is not None:
                    entry["occupancy"] = occupancy
                cell[f"{scheduler}_{workers}w"] = entry
            cell["target_error"] = target
            _RESULTS["cells"][f"{solver}__{variant}"] = cell


def test_async_pipeline_gate():
    """The headline claim, robust across seeds: async 4-worker pipelining
    reaches the target error >= 1.5x sooner than the sync baseline, at
    >= 0.9 mean worker occupancy."""
    seeds = {}
    for run_seed in GATE_SEEDS:
        sync_run, _ = _run_cell(
            "HW-IECI", "hyperpower", "sync", workers=1, run_seed=run_seed
        )
        async_run, occupancy = _run_cell(
            "HW-IECI", "hyperpower", "async", workers=4, run_seed=run_seed
        )
        target = max(
            sync_run.best_feasible_error, async_run.best_feasible_error
        )
        t_sync = _time_to_target(sync_run, target)
        t_async = _time_to_target(async_run, target)
        seeds[run_seed] = {
            "target_error": target,
            "sync_time_to_target_s": t_sync,
            "async_time_to_target_s": t_async,
            "speedup": t_sync / t_async,
            "occupancy": occupancy,
        }
    speedups = [s["speedup"] for s in seeds.values()]
    occupancies = [s["occupancy"] for s in seeds.values()]
    _RESULTS["gate"] = {
        "cell": "HW-IECI__hyperpower",
        "workers": 4,
        "seeds": seeds,
        "min_speedup": min(speedups),
        "mean_occupancy": float(np.mean(occupancies)),
    }

    write_artifact(
        "BENCH_async_pipeline.json", json.dumps(_RESULTS, indent=1) + "\n"
    )
    lines = [
        f"budget                {BUDGET} evaluations",
        f"gate cell             HW-IECI/hyperpower, async 4w vs sync",
        f"min speedup           {min(speedups):.2f}x (gate {MIN_TTB_SPEEDUP}x)",
        f"mean occupancy        {np.mean(occupancies):.3f} (gate {MIN_OCCUPANCY})",
        "per-seed:",
    ]
    lines += [
        f"  seed {seed}  sync {s['sync_time_to_target_s']:7.0f} s  "
        f"async {s['async_time_to_target_s']:7.0f} s  "
        f"{s['speedup']:.2f}x  occ {s['occupancy']:.3f}"
        for seed, s in seeds.items()
    ]
    write_artifact("async_pipeline.txt", "\n".join(lines) + "\n")

    assert min(speedups) >= MIN_TTB_SPEEDUP, (
        f"async pipelining only {min(speedups):.2f}x faster to target "
        f"than the sync baseline (needed {MIN_TTB_SPEEDUP}x): {seeds!r}"
    )
    assert np.mean(occupancies) >= MIN_OCCUPANCY, (
        f"mean 4-worker occupancy {np.mean(occupancies):.3f} below "
        f"{MIN_OCCUPANCY}: {seeds!r}"
    )


if __name__ == "__main__":
    from pathlib import Path

    test_sweep_all_cells()
    test_async_pipeline_gate()
    print(
        (Path(__file__).resolve().parent / "out" / "async_pipeline.txt")
        .read_text()
    )
