"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The heavy
studies (the fixed-runtime protocol behind Tables 2-5 and Figure 6, the
fixed-evaluation protocol behind Figure 4) are executed once per pytest
session and shared across the benches that report on them.

Scaling knobs (environment variables):

* ``REPRO_BENCH_SCALE``   — fraction of the paper's wall-clock budgets for
  the fixed-runtime study (default ``0.35``; use ``1.0`` to reproduce the
  full two/five-hour protocol, which takes a few minutes of real time).
* ``REPRO_BENCH_REPEATS`` — runs per method variant (default ``2``; the
  paper uses 3 for the runtime study and 5 for the fixed-eval study).

Each bench also writes its rendered output under ``benchmarks/out/`` so
the regenerated tables/series survive the pytest run.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro.experiments.fixed_evals import FixedEvalsStudy, run_fixed_evals
from repro.experiments.fixed_runtime import RuntimeStudy, run_fixed_runtime
from repro.experiments.model_accuracy import ModelAccuracyStudy, run_model_accuracy

__all__ = [
    "bench_scale",
    "bench_repeats",
    "get_runtime_study",
    "get_fixed_evals_study",
    "get_model_accuracy_study",
    "write_artifact",
]

#: Where rendered tables/series are persisted.
OUT_DIR = Path(__file__).resolve().parent / "out"


def bench_scale() -> float:
    """Wall-clock scale factor for the fixed-runtime study."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.35"))


def bench_repeats() -> int:
    """Repeats per method variant."""
    return int(os.environ.get("REPRO_BENCH_REPEATS", "2"))


@functools.lru_cache(maxsize=1)
def get_runtime_study() -> RuntimeStudy:
    """The (cached) fixed-runtime study behind Tables 2-5 and Figure 6."""
    return run_fixed_runtime(
        n_repeats=bench_repeats(),
        time_scale=bench_scale(),
        profiling_samples=100,
        seed=0,
    )


@functools.lru_cache(maxsize=1)
def get_fixed_evals_study() -> FixedEvalsStudy:
    """The (cached) fixed-evaluation study behind Figure 4."""
    return run_fixed_evals(
        pair_key="cifar10-gtx1070",
        n_repeats=bench_repeats(),
        n_iterations=max(10, int(50 * bench_scale())),
        seed=0,
        profiling_samples=100,
    )


@functools.lru_cache(maxsize=1)
def get_model_accuracy_study() -> ModelAccuracyStudy:
    """The (cached) Table 1 / Figure 5 study."""
    return run_model_accuracy(n_samples=100, seed=0)


def write_artifact(name: str, text: str) -> Path:
    """Persist a rendered table/series under ``benchmarks/out/``."""
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / name
    path.write_text(text, encoding="utf-8")
    return path
