"""Benchmark: wall-clock overhead of a fully traced run.

The telemetry acceptance criterion (ISSUE 4) is that instrumentation is
cheap enough to leave on: a run with a live ``Telemetry`` attached — every
span recorded, every counter bumped — must cost < 5% wall-clock over the
identical untraced run, and the screening fast path pinned by
``bench_screen_batch.py`` must be untouched (the vectorised
``screen_batch`` kernel itself carries no instrumentation).

Both arms run the same seeded HW-IECI/hyperpower cell, so besides timing
the bench re-asserts the core invariant: the traced ``RunResult``
serialises byte-identically to the untraced one.
"""

from __future__ import annotations

import json
import time

from repro.experiments.setup import quick_setup
from repro.io import run_to_dict
from repro.telemetry import Telemetry

from _shared import write_artifact

MAX_OVERHEAD = 0.05
TIMING_REPEATS = 5
BUDGET = 12


def _build_setup():
    return quick_setup(
        "mnist",
        "gtx1070",
        power_budget_w=85.0,
        memory_budget_gb=1.15,
        seed=0,
        profiling_samples=100,
    )


def _best_time(fn, repeats: int = TIMING_REPEATS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best, result = elapsed, out
    return best, result


def test_traced_run_overhead_is_small():
    setup = _build_setup()
    kwargs = dict(run_seed=1, max_evaluations=BUDGET, cache=None)

    def untraced():
        return setup.run("HW-IECI", "hyperpower", **kwargs)

    def traced():
        telemetry = Telemetry()
        result = setup.run(
            "HW-IECI", "hyperpower", telemetry=telemetry, **kwargs
        )
        return result, telemetry

    untraced()  # warm imports and allocator pools before timing
    t_plain, plain = _best_time(untraced)
    t_traced, (traced_result, telemetry) = _best_time(traced)

    # Tracing must never perturb the run itself.
    plain_json = json.dumps(run_to_dict(plain), sort_keys=True)
    traced_json = json.dumps(run_to_dict(traced_result), sort_keys=True)
    assert plain_json == traced_json, "tracing changed the serialised run"
    assert telemetry.tracer.spans, "traced arm recorded no spans"

    overhead = t_traced / t_plain - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"traced run {overhead * 100:.1f}% slower than untraced "
        f"(budget {MAX_OVERHEAD * 100:.0f}%): untraced {t_plain * 1e3:.1f} ms, "
        f"traced {t_traced * 1e3:.1f} ms"
    )

    write_artifact(
        "telemetry_overhead.txt",
        "\n".join(
            [
                f"evaluations        {BUDGET}",
                f"spans recorded     {len(telemetry.tracer.spans)}",
                f"results identical  {plain_json == traced_json}",
                f"untraced time      {t_plain * 1e3:.1f} ms",
                f"traced time        {t_traced * 1e3:.1f} ms",
                f"overhead           {overhead * 100:+.1f}%",
            ]
        )
        + "\n",
    )


if __name__ == "__main__":
    from pathlib import Path

    test_traced_run_overhead_is_small()
    print(
        (
            Path(__file__).resolve().parent / "out" / "telemetry_overhead.txt"
        ).read_text()
    )
