"""Ablation — regression form of the power/memory predictors.

The paper chooses models "linear with respect to both the input vector z
and model weights" and notes that nonlinear formulations "can be
plugged-in (e.g., see our recent work [10])" but that "these linear
functions provide sufficient accuracy".  This bench quantifies that
choice: the paper's pure linear form, the intercept-augmented linear form
this reproduction defaults to (the platform's constant idle power /
runtime overhead is huge, so a constant feature matters), and a quadratic
feature expansion.
"""

import numpy as np

from repro.experiments.reporting import render_table
from repro.hwsim.devices import GTX_1070
from repro.hwsim.profiler import HardwareProfiler
from repro.models.crossval import cross_validate, rmspe
from repro.models.linear import LinearModel
from repro.models.profiling import run_profiling_campaign
from repro.space.presets import cifar10_space, mnist_space

from _shared import write_artifact


class _QuadraticModel:
    """Linear model over [z, z^2, pairwise products] with intercept."""

    def __init__(self):
        self._inner = LinearModel(fit_intercept=True)

    @staticmethod
    def _expand(Z):
        Z = np.atleast_2d(Z)
        columns = [Z, Z**2]
        n = Z.shape[1]
        for i in range(n):
            for j in range(i + 1, n):
                columns.append((Z[:, i] * Z[:, j])[:, None])
        return np.hstack(columns)

    def fit(self, Z, y):
        self._inner.fit(self._expand(Z), y)
        return self

    def predict(self, Z):
        return self._inner.predict(self._expand(Z))


def _campaign(dataset, space, n=120, seed=0):
    rng = np.random.default_rng(seed)
    profiler = HardwareProfiler(GTX_1070, rng)
    return run_profiling_campaign(space, dataset, profiler, n, rng)


FORMS = {
    "linear (paper Eq. 1-2)": lambda: LinearModel(fit_intercept=False),
    "linear + intercept (default here)": lambda: LinearModel(fit_intercept=True),
    "quadratic features": _QuadraticModel,
}


def test_ablation_model_form(benchmark):
    campaigns = {
        "mnist": _campaign("mnist", mnist_space()),
        "cifar10": _campaign("cifar10", cifar10_space()),
    }

    def run():
        rows = []
        for form_name, factory in FORMS.items():
            row = [form_name]
            for dataset, data in campaigns.items():
                score, _ = cross_validate(
                    factory,
                    data.Z,
                    data.power_w,
                    k=10,
                    rng=np.random.default_rng(1),
                    metric=rmspe,
                )
                row.append(f"{score:.2f}%")
            rows.append(row)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        "Ablation: power-model regression form (10-fold CV RMSPE, GTX 1070)",
        ["Form", "MNIST", "CIFAR-10"],
        rows,
    )
    print()
    print(table)
    write_artifact("ablation_model_form.txt", table)

    scores = {
        row[0]: [float(cell.rstrip("%")) for cell in row[1:]] for row in rows
    }
    # The intercept matters (platform constants dominate), after which the
    # linear form is already inside the paper's <7% regime; quadratic
    # features buy little on top.
    plain = scores["linear (paper Eq. 1-2)"]
    intercept = scores["linear + intercept (default here)"]
    assert max(intercept) < 7.0
    assert np.mean(intercept) < np.mean(plain)
