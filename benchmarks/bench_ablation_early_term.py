"""Ablation — divergence detection vs learning-curve extrapolation.

The paper's Section 3.2 deliberately avoids "predicting the final test
error of a network, which could suffer from overestimation issues [18]",
and instead only *identifies diverging cases*.  This bench quantifies the
trade-off over simulated MNIST learning curves: for each policy, the rate
of missed divergers, the rate of falsely killed good runs (split into
fast and slow convergers), and the mean epochs spent per diverging run.
"""

import numpy as np

from repro.core.early_term import CurveExtrapolationTermination, EarlyTermination
from repro.experiments.reporting import render_table
from repro.trainsim.dataset import MNIST
from repro.trainsim.dynamics import LearningCurveModel
from repro.trainsim.surface import SurfaceEvaluation

from _shared import write_artifact

_EPOCHS = 30
_N = 120


def _evaluation(final, diverges, tau):
    return SurfaceEvaluation(
        final_error=final,
        diverges=diverges,
        structural_error=final,
        effective_step=0.05,
        step_optimum=0.05,
        tau_epochs=tau,
        capacity=0.5,
    )


def _stop_epoch(policy, curve):
    for epoch in range(1, len(curve) + 1):
        if policy.should_stop(epoch, curve[:epoch]):
            return epoch
    return None


def _curve_bank(seed=0):
    model = LearningCurveModel(MNIST)
    rng = np.random.default_rng(seed)
    bank = {"diverging": [], "fast good": [], "slow good": []}
    for _ in range(_N):
        bank["diverging"].append(
            model.curve(_evaluation(0.9, True, 2.0), _EPOCHS, rng)
        )
        bank["fast good"].append(
            model.curve(
                _evaluation(0.012, False, 1.0 + rng.uniform()), _EPOCHS, rng
            )
        )
        bank["slow good"].append(
            model.curve(
                _evaluation(0.012, False, 4.0 + 4.0 * rng.uniform()), _EPOCHS, rng
            )
        )
    return bank


def test_ablation_early_term(benchmark):
    policies = {
        "divergence-only (paper)": EarlyTermination(
            chance_error=MNIST.chance_error
        ),
        "curve extrapolation [18]": CurveExtrapolationTermination(
            target_error=0.05, horizon_epochs=_EPOCHS, check_epoch=5
        ),
    }
    bank = _curve_bank()

    def run():
        stats = {}
        for name, policy in policies.items():
            kills = {
                kind: [_stop_epoch(policy, c) for c in curves]
                for kind, curves in bank.items()
            }
            stats[name] = kills
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, kills in stats.items():
        missed = np.mean([k is None for k in kills["diverging"]])
        epochs_on_divergers = np.mean(
            [k if k is not None else _EPOCHS for k in kills["diverging"]]
        )
        false_fast = np.mean([k is not None for k in kills["fast good"]])
        false_slow = np.mean([k is not None for k in kills["slow good"]])
        rows.append(
            [
                name,
                f"{missed * 100:.1f}%",
                f"{epochs_on_divergers:.1f}",
                f"{false_fast * 100:.1f}%",
                f"{false_slow * 100:.1f}%",
            ]
        )
    table = render_table(
        "Ablation: early-termination policy (simulated MNIST curves)",
        [
            "Policy",
            "Missed divergers",
            "Epochs per diverger",
            "False kills (fast)",
            "False kills (slow)",
        ],
        rows,
    )
    print()
    print(table)
    write_artifact("ablation_early_term.txt", table)

    paper = stats["divergence-only (paper)"]
    extrapolation = stats["curve extrapolation [18]"]
    # Both catch every diverger quickly...
    assert all(k is not None for k in paper["diverging"])
    assert all(k is not None for k in extrapolation["diverging"])
    # ...but only the extrapolator kills slow good runs in bulk — the
    # overestimation artifact the paper's design avoids.
    paper_false = np.mean([k is not None for k in paper["slow good"]])
    extra_false = np.mean([k is not None for k in extrapolation["slow good"]])
    assert paper_false < 0.05
    assert extra_false > 0.15
