"""Ablation — grid search vs random search (the paper's intro claim).

"As the design space of hyper-parameters to be tuned grows ... traditional
techniques for hyper-parameter optimization, such as grid search, yield
poor results in terms of performance and training time [2]."  This bench
runs classic grid search against random search — both with HyperPower's
constraint screening — under the same wall-clock budget on MNIST/TX1.

Expected shape: random search finds a better (or equal) configuration —
the grid wastes its budget stepping through coarse lattice points of the
low-effective-dimensionality space (Bergstra & Bengio's argument, cited
as [5]).
"""

import numpy as np

from repro.core.constraints import ModelConstraintChecker
from repro.core.hyperpower import HyperPower
from repro.core.methods import GridSearch, RandomSearch
from repro.experiments.reporting import render_table
from repro.experiments.setup import quick_setup

from _shared import bench_scale, write_artifact

_BUDGET_S = 2.0 * 3600.0


def test_ablation_grid_search(benchmark):
    setup = quick_setup(
        "mnist", "tx1", power_budget_w=10.0, seed=0, profiling_samples=100
    )
    checker = ModelConstraintChecker(setup.spec, setup.power_model, None)

    def run():
        out = {}
        for label, factory in (
            ("grid search", lambda: GridSearch(setup.space, resolution=3, checker=checker)),
            ("random search", lambda: RandomSearch(setup.space, checker)),
        ):
            runs = []
            for repeat in range(3):
                driver = HyperPower(
                    setup.new_objective(repeat * 31 + 5),
                    factory(),
                    "hyperpower",
                )
                rng = np.random.default_rng(repeat * 31 + 5)
                runs.append(driver.run(rng, max_time_s=_BUDGET_S * bench_scale()))
            out[label] = runs
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for label, runs in results.items():
        rows.append(
            [
                label,
                f"{np.mean([r.n_trained for r in runs]):.1f}",
                f"{np.mean([r.best_feasible_error for r in runs]) * 100:.2f}%",
                f"{np.std([r.best_feasible_error for r in runs]) * 100:.2f}%",
            ]
        )
    table = render_table(
        "Ablation: grid vs random search (both screened, MNIST/TX1)",
        ["Method", "Trainings", "Mean best error", "Std"],
        rows,
    )
    print()
    print(table)
    write_artifact("ablation_grid_search.txt", table)

    grid = np.mean([r.best_feasible_error for r in results["grid search"]])
    rand = np.mean([r.best_feasible_error for r in results["random search"]])
    # Random search matches or beats the grid (the intro's claim); the
    # tolerance accommodates run noise at reduced scale.
    assert rand <= grid + 0.005
