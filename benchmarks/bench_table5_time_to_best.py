"""Table 5 — runtime improvement to reach the default's best accuracy.

Regenerates the paper's Table 5: hours until the best feasible error the
default variant ever achieved is first matched, default vs HyperPower,
with the geometric-mean speedup.

Paper shapes: HyperPower reaches the default's best accuracy faster in
the overwhelming majority of cells (up to 30.12x); cells whose default
never found a feasible solution (Rand-Walk on CIFAR-10) are '--'.
"""

import math

from repro.experiments.fixed_runtime import format_table5

from _shared import bench_scale, get_runtime_study, write_artifact


def test_table5_time_to_best(benchmark):
    study = get_runtime_study()
    table = benchmark(lambda: format_table5(study))
    print()
    print(table)
    write_artifact("table5.txt", table)

    # Across all cells, count per-run pairings where HyperPower reached
    # the default's best error at least as fast.
    faster = slower = 0
    for pair in study.pair_keys:
        for solver in study.solvers:
            for default_run, hyper_run in zip(
                study.cell(pair, solver, "default"),
                study.cell(pair, solver, "hyperpower"),
            ):
                if not default_run.found_feasible:
                    continue
                target = default_run.best_feasible_error
                d_time = default_run.time_to_reach_error(target)
                h_time = hyper_run.time_to_reach_error(target)
                if not math.isfinite(d_time):
                    continue
                if math.isfinite(h_time) and h_time <= d_time:
                    faster += 1
                else:
                    slower += 1
    # At reduced wall-clock scale this metric is heavily truncated (the
    # HyperPower run may simply not have had the budget left to match the
    # default's level), so the majority requirement only applies to the
    # full protocol.
    assert faster >= 1
    if bench_scale() >= 0.9:
        assert faster >= slower
