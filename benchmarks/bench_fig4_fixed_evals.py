"""Figure 4 — the four methods under a fixed evaluation budget (CIFAR-10).

Regenerates all three panels of the paper's Figure 4 on CIFAR-10/GTX 1070:
(left) best observed feasible error vs function evaluations, (center)
cumulative constraint-violating samples, (right) per-evaluation error
scatter.

Paper shapes: HW-IECI selects (essentially) no violating samples and
reaches the good-error region in a fraction of the evaluations; the
Bayesian methods concentrate their queries in high-performance regions
while the random methods keep hitting low-performance ones.
"""

import numpy as np

from repro.experiments.fixed_evals import figure4_series

from _shared import get_fixed_evals_study, write_artifact


def test_fig4_fixed_evals(benchmark):
    study = benchmark.pedantic(get_fixed_evals_study, rounds=1, iterations=1)
    series = figure4_series(study)

    lines = [
        f"Figure 4 (CIFAR-10, {study.n_iterations} evaluations per run)",
        "",
        "(left) mean best feasible error per evaluation",
    ]
    for solver, panels in series.items():
        curve = " ".join(f"{v:5.3f}" for v in panels["best_error_curve"])
        lines.append(f"{solver:10s} {curve}")
    lines.append("")
    lines.append("(center) mean cumulative constraint violations")
    for solver, panels in series.items():
        curve = " ".join(f"{v:4.1f}" for v in panels["violation_curve"])
        lines.append(f"{solver:10s} {curve}")
    text = "\n".join(lines)
    print()
    print(text)
    write_artifact("fig4.txt", text)

    # Center panel: HW-IECI at (essentially) zero violations — at most a
    # stray near-boundary miss per run from the models' residual
    # uncertainty — while the vanilla random methods accumulate them with
    # almost every sample.
    ieci = series["HW-IECI"]["violation_curve"]
    rand = series["Rand"]["violation_curve"]
    assert ieci[-1] <= 1.0
    assert rand[-1] >= 3.0
    assert rand[-1] > 3 * max(ieci[-1], 1.0)

    # Left panel: the model-aware BO methods end at a better error than
    # vanilla random search.
    assert (
        series["HW-IECI"]["best_error_curve"][-1]
        <= series["Rand"]["best_error_curve"][-1] + 0.02
    )

    # Right panel: random methods query low-performance (near-chance)
    # points; HW-IECI's queries concentrate in the high-performance region.
    _, rand_errors = study.error_scatter("Rand")
    _, ieci_errors = study.error_scatter("HW-IECI")
    assert np.mean(rand_errors > 0.5) > np.mean(ieci_errors > 0.5)
