"""Figure 1 — test error vs GPU power of CIFAR-10 variants (GTX 1070).

Regenerates the paper's motivating scatter: train random AlexNet variants
on CIFAR-10 and measure their inference power on the GTX 1070.  The paper
observes that "for a given accuracy level, power could differ
significantly by up to 55.01W (i.e., more than a third of the GPU Thermal
Design Power)".
"""

import numpy as np

from repro.experiments.ascii_plot import scatter
from repro.experiments.motivating import run_figure1

from _shared import write_artifact


def test_fig1_error_power_tradeoff(benchmark):
    data = benchmark.pedantic(
        lambda: run_figure1(n_samples=250, seed=0), rounds=1, iterations=1
    )
    spread = data.iso_error_power_spread(band_width=0.01)

    lines = ["Figure 1: test error vs GPU power (CIFAR-10 on GTX 1070)"]
    lines.append(f"variants plotted: {len(data.errors)}")
    lines.append(
        f"power range: {data.power_w.min():.1f} - {data.power_w.max():.1f} W"
    )
    lines.append(
        f"error range: {data.errors.min()*100:.1f} - {data.errors.max()*100:.1f} %"
    )
    lines.append(f"max iso-error power spread (1% bands): {spread:.2f} W")
    plot = scatter(
        data.power_w,
        data.errors * 100,
        title="Figure 1: test error vs power (CIFAR-10 variants, GTX 1070)",
        x_label="power (W)",
        y_label="test error (%)",
    )
    lines.append("")
    lines.append(plot)
    lines.append("")
    lines.append("error%  power_w")
    order = np.argsort(data.errors)
    for index in order:
        lines.append(f"{data.errors[index]*100:6.2f}  {data.power_w[index]:7.2f}")
    text = "\n".join(lines)
    print()
    print("\n".join(lines[:6]))
    print(plot)
    write_artifact("fig1.txt", text)

    # The motivating shape: a wide iso-error power spread — a third of the
    # 150 W TDP, like the paper's 55 W.
    assert spread > 150.0 / 3.0 * 0.6
    # And power is far from a deterministic function of accuracy.
    correlation = abs(np.corrcoef(data.errors, data.power_w)[0, 1])
    assert correlation < 0.6
