"""Ablation — the two HyperPower enhancements in isolation.

Figure 6 shows the *joint* benefit of "using early termination and the
power/memory models".  This bench crosses them (2x2) for random search on
the tight MNIST/GTX 1070 pair: constraint screening off/on x early
termination off/on, reporting samples queried, trainings, violations and
best feasible error under the same wall-clock budget.  The pair is
MNIST/TX1 (10 W admits ~a third of the space), where the 2x2 contrast is
clean at reduced scale; the tighter GTX pair pushes the same way but with
far higher run-to-run variance.

Expected shape: screening provides the bulk of the sample-throughput gain
(it skips the infeasible region at ~1 s per rejection), early termination
stacks on top by cutting diverging trainings to a few epochs.
"""

import numpy as np

from repro.core.hyperpower import HyperPower, build_method
from repro.experiments.reporting import render_table
from repro.experiments.setup import quick_setup

from _shared import bench_scale, write_artifact

_BUDGET_S = 2.0 * 3600.0


def _run_cell(setup, screening, early_term, run_seed):
    variant = "hyperpower" if screening else "default"
    method = build_method(
        "Rand",
        variant,
        setup.space,
        setup.spec,
        power_model=setup.power_model,
        memory_model=setup.memory_model,
    )
    objective = setup.new_objective(run_seed)
    driver = HyperPower(objective, method, variant, early_term=early_term)
    rng = np.random.default_rng(run_seed)
    return driver.run(rng, max_time_s=_BUDGET_S * bench_scale())


def test_ablation_enhancements(benchmark):
    setup = quick_setup(
        "mnist",
        "tx1",
        power_budget_w=10.0,
        seed=0,
        profiling_samples=100,
    )

    def run():
        cells = {}
        for screening in (False, True):
            for early_term in (False, True):
                runs = [
                    _run_cell(setup, screening, early_term, 100 * r + 17)
                    for r in range(3)
                ]
                cells[(screening, early_term)] = runs
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (screening, early_term), runs in cells.items():
        label = (
            f"models {'on ' if screening else 'off'} / "
            f"early-term {'on' if early_term else 'off'}"
        )
        rows.append(
            [
                label,
                f"{np.mean([r.n_samples for r in runs]):.1f}",
                f"{np.mean([r.n_trained for r in runs]):.1f}",
                f"{np.mean([r.n_violations for r in runs]):.1f}",
                f"{np.mean([r.best_feasible_error for r in runs])*100:.2f}%",
            ]
        )
    table = render_table(
        "Ablation: HyperPower enhancements (random search, MNIST/TX1)",
        ["Configuration", "Samples", "Trainings", "Violations", "Best error"],
        rows,
    )
    print()
    print(table)
    write_artifact("ablation_enhancements.txt", table)

    def mean_samples(screening, early_term):
        return np.mean(
            [r.n_samples for r in cells[(screening, early_term)]]
        )

    def mean_error(screening, early_term):
        return np.mean(
            [r.best_feasible_error for r in cells[(screening, early_term)]]
        )

    # Screening multiplies sample throughput.
    assert mean_samples(True, True) > 1.5 * mean_samples(False, True)
    # Early termination adds trainings on top of screening (diverging runs
    # stop after a few epochs, freeing budget).
    assert np.mean(
        [r.n_trained for r in cells[(True, True)]]
    ) >= np.mean([r.n_trained for r in cells[(True, False)]])
    # The fully-enhanced configuration finds the best (or tied) error.
    full = mean_error(True, True)
    naked = mean_error(False, False)
    assert full <= naked + 0.01
