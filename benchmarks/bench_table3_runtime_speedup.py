"""Table 3 — runtime for HyperPower to reach the default's sample count.

Regenerates the paper's Table 3: hours each HyperPower variant needs to
query as many samples as its default counterpart managed in the full
budget, plus the geometric-mean speedup.

Paper shapes: enormous speedups for the model-free methods (up to
112.99x — most of their samples are millisecond-cheap model rejections),
modest ones for the Bayesian methods (1.1-3.5x), and every speedup >= 1.
"""

from repro.experiments.fixed_runtime import format_table3
from repro.experiments.reporting import geometric_mean

from _shared import get_runtime_study, write_artifact


def test_table3_runtime_speedup(benchmark):
    study = get_runtime_study()
    table = benchmark(lambda: format_table3(study))
    print()
    print(table)
    write_artifact("table3.txt", table)

    # Per-run speedup ratios, recomputed here for the shape assertions.
    def ratios(pair, solver):
        out = []
        for default_run, hyper_run in zip(
            study.cell(pair, solver, "default"),
            study.cell(pair, solver, "hyperpower"),
        ):
            t = hyper_run.time_to_reach_samples(default_run.n_samples)
            if t > 0 and t != float("inf"):
                out.append(default_run.wall_time_s / t)
        return out

    # Random search reaches the default's sample count orders of magnitude
    # faster on the tight GTX pairs...
    rand_gtx = geometric_mean(ratios("mnist-gtx1070", "Rand"))
    assert rand_gtx > 10.0
    # ...while the Bayesian methods gain only modestly (they were already
    # spending their time on full trainings).  At reduced scale a truncated
    # HyperPower run may not reach the default's count at all (no finite
    # ratio) — the bound applies only to the pairings that completed.
    ieci_ratios = ratios("mnist-gtx1070", "HW-IECI")
    if ieci_ratios:
        ieci = geometric_mean(ieci_ratios)
        assert ieci < 6.0
        assert rand_gtx > ieci
