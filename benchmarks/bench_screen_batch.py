"""Benchmark: vectorised constraint screening vs the per-config loop.

The batch engine's first claim (ISSUE 1) is that
:meth:`~repro.core.constraints.ModelConstraintChecker.screen_batch` makes
exactly the decisions the per-config :meth:`indicator` loop makes — same
predictions, same margin-backed-off thresholds — while amortising the model
evaluations into a single NumPy call.  This bench verifies both halves on
1,000 random MNIST-space configurations: exact decision agreement, and a
>= 10x wall-clock speedup.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.constraints import GIB, ConstraintSpec, ModelConstraintChecker
from repro.hwsim.devices import get_device
from repro.hwsim.profiler import HardwareProfiler
from repro.models.hw_models import fit_hardware_models
from repro.models.profiling import run_profiling_campaign
from repro.space.presets import mnist_space

from _shared import write_artifact

N_CONFIGS = 1000
MIN_SPEEDUP = 10.0
TIMING_REPEATS = 3


def _build_checker() -> tuple[ModelConstraintChecker, list[dict]]:
    space = mnist_space()
    rng = np.random.default_rng(np.random.SeedSequence([2018, 1]))
    profiler = HardwareProfiler(get_device("gtx1070"), rng)
    data = run_profiling_campaign(space, "mnist", profiler, 100, rng)
    power_model, memory_model = fit_hardware_models(
        space, data, rng=np.random.default_rng(np.random.SeedSequence([2018, 2]))
    )
    spec = ConstraintSpec(power_budget_w=85.0, memory_budget_bytes=1.15 * GIB)
    checker = ModelConstraintChecker(spec, power_model, memory_model)
    configs = space.sample_many(N_CONFIGS, np.random.default_rng(7))
    return checker, configs


def _best_time(fn, repeats: int = TIMING_REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_screen_batch_matches_serial_and_is_faster():
    checker, configs = _build_checker()

    serial = np.array([checker.indicator(c) for c in configs])
    accept, power, memory = checker.screen_batch(configs)
    assert accept.shape == (N_CONFIGS,)
    np.testing.assert_array_equal(accept, serial)

    # The predictions backing the decisions must agree too (to the last
    # ulp: the batch gemm and the per-row gemv may round differently).
    serial_power = np.array([checker.predictions(c)[0] for c in configs])
    serial_memory = np.array([checker.predictions(c)[1] for c in configs])
    np.testing.assert_allclose(power, serial_power, rtol=1e-12)
    np.testing.assert_allclose(memory, serial_memory, rtol=1e-12)

    t_serial = _best_time(lambda: [checker.indicator(c) for c in configs])
    t_batch = _best_time(lambda: checker.screen_batch(configs))
    speedup = t_serial / t_batch
    assert speedup >= MIN_SPEEDUP, (
        f"batch screening only {speedup:.1f}x faster than per-config "
        f"(needed {MIN_SPEEDUP}x): serial {t_serial * 1e3:.2f} ms, "
        f"batch {t_batch * 1e3:.2f} ms"
    )

    write_artifact(
        "screen_batch.txt",
        "\n".join(
            [
                f"configs            {N_CONFIGS}",
                f"accepted           {int(accept.sum())}",
                f"decisions match    {bool((accept == serial).all())}",
                f"serial time        {t_serial * 1e3:.2f} ms",
                f"batch time         {t_batch * 1e3:.2f} ms",
                f"speedup            {speedup:.1f}x",
            ]
        )
        + "\n",
    )


if __name__ == "__main__":
    from pathlib import Path

    test_screen_batch_matches_serial_and_is_faster()
    print(
        (Path(__file__).resolve().parent / "out" / "screen_batch.txt").read_text()
    )
