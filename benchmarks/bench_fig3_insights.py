"""Figure 3 — the two insights enabling HyperPower (MNIST on Tegra TX1).

Left panel: measured power barely changes as the network trains for more
epochs — power is a structural property, hence an a-priori constraint.
Right panel: diverging configurations are identifiable after a few
epochs — converging runs drop below 10% error almost immediately while
diverging ones never leave the chance plateau.
"""

import numpy as np

from repro.experiments.motivating import run_figure3

from _shared import write_artifact


def test_fig3_insights(benchmark):
    data = benchmark.pedantic(
        lambda: run_figure3(n_configs=6, n_epochs=12, seed=0),
        rounds=1,
        iterations=1,
    )

    lines = ["Figure 3 (left): measured power (W) vs training epoch"]
    header = "config " + " ".join(f"e{e:02d}" for e in data.epochs)
    lines.append(header)
    for index, row in enumerate(data.power_w):
        lines.append(
            f"{index:6d} " + " ".join(f"{p:5.2f}" for p in row)
        )
    lines.append("")
    lines.append("Figure 3 (right): test error vs epoch")
    for label, curves in (
        ("converging", data.converging_curves),
        ("diverging", data.diverging_curves),
    ):
        for index, curve in enumerate(curves):
            lines.append(
                f"{label[:4]}-{index} "
                + " ".join(f"{e:5.3f}" for e in curve)
            )
    text = "\n".join(lines)
    print()
    print(f"power-vs-epoch max relative range: {data.power_epoch_sensitivity:.3f}")
    write_artifact("fig3.txt", text)

    # Left: power varies by at most a few percent across training epochs.
    assert data.power_epoch_sensitivity < 0.15
    # Right: all converging runs are below 10% within a handful of epochs
    # (the paper's ">10%" indicator), diverging runs never are.
    assert np.all(data.converging_curves[:, :6].min(axis=1) < 0.35)
    assert np.all(data.diverging_curves.min(axis=1) > 0.5)
