"""Table 2 — mean best test error (std) per method.

Regenerates the paper's Table 2: best feasible test error per solver on
all four device-dataset pairs, default vs HyperPower variants, under the
fixed wall-clock protocol (two hours MNIST / five hours CIFAR-10, scaled
by ``REPRO_BENCH_SCALE``).

Paper shapes to hold: HyperPower variants beat or match their defaults in
every cell; default random methods fail catastrophically on the tightly
constrained pairs (60-75% mean error with huge variance on MNIST/GTX and
both CIFAR-10 pairs); default Rand-Walk shows '--' on CIFAR-10.
"""

import numpy as np

from repro.experiments.fixed_runtime import format_table2

from _shared import get_runtime_study, write_artifact


def test_table2_best_error(benchmark):
    study = benchmark.pedantic(get_runtime_study, rounds=1, iterations=1)
    table = format_table2(study)
    print()
    print(table)
    write_artifact("table2.txt", table)

    # HyperPower never loses badly to its default counterpart, and wins
    # decisively wherever the default fails to find the feasible region.
    wins = losses = 0
    for pair in study.pair_keys:
        for solver in study.solvers:
            default_errors = [
                r.best_feasible_error for r in study.cell(pair, solver, "default")
            ]
            hyper_errors = [
                r.best_feasible_error
                for r in study.cell(pair, solver, "hyperpower")
            ]
            if np.mean(hyper_errors) <= np.mean(default_errors) + 0.01:
                wins += 1
            else:
                losses += 1
    assert wins >= 3 * losses

    # The headline accuracy gap: default random search collapses on the
    # tight MNIST/GTX pair while HyperPower random search stays accurate.
    default_rand = np.mean(
        [r.best_feasible_error for r in study.cell("mnist-gtx1070", "Rand", "default")]
    )
    hyper_rand = np.mean(
        [r.best_feasible_error for r in study.cell("mnist-gtx1070", "Rand", "hyperpower")]
    )
    assert hyper_rand < 0.05
    assert default_rand > 2 * hyper_rand
