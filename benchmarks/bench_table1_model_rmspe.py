"""Table 1 — RMSPE of the power and memory models.

Regenerates the paper's Table 1: 10-fold cross-validated Root Mean Square
Percentage Error of the linear power/memory predictors on all four
device-dataset pairs (no memory column on the Tegra TX1).

Paper values: power 5.70 / 5.98 / 6.62 / 4.17 %, memory 4.43 / 4.67 %,
headline claim "always less than 7%".
"""

from repro.experiments.model_accuracy import format_table1, run_model_accuracy

from _shared import get_model_accuracy_study, write_artifact


def test_table1_model_rmspe(benchmark):
    study = benchmark.pedantic(
        lambda: run_model_accuracy(n_samples=100, seed=0),
        rounds=1,
        iterations=1,
    )
    table = format_table1(study)
    print()
    print(table)
    write_artifact("table1.txt", table)

    # The paper's headline shape: every model under 7% RMSPE, and no
    # memory model on the TX1.
    assert study.max_rmspe < 7.0
    assert study.pairs["mnist-tx1"].memory_rmspe is None
    assert study.pairs["cifar10-tx1"].memory_rmspe is None
    assert study.pairs["mnist-gtx1070"].memory_rmspe is not None
