"""Benchmark: the sparse surrogate tier vs the exact GP (ISSUE 7).

Two acceptance gates for scaling BO proposals from hundreds to 10^5
trials:

1. **Proposal-time speedup** — at 10,000 observations, one proposal-shaped
   round (a rank-1 ``append`` plus a 1,000-candidate ``predict``) on the
   RFF and Nyström tiers beats the exact GP by >= 10x wall-clock.  The
   exact GP pays O(n^2) per append and O(n^2 q) per candidate sweep; the
   weight-space tiers pay O(m^2) and O(m^2 + m q) with ``m = 256``
   features, independent of history length.
2. **Regret parity** — on all eight solver/variant cells of the paper's
   protocol (quick MNIST/GTX1070 setup, 20 evaluations), the RFF tier's
   final best feasible error stays within 10% of the exact tier's.  The
   model-free cells ignore the surrogate and pin the comparison harness;
   the BO cells demonstrate the approximation does not cost optimization
   quality at this horizon.

Results land in ``benchmarks/out/BENCH_sparse_gp.json`` (uploaded as a CI
artifact) plus a human-readable ``sparse_gp.txt``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.core.hyperpower import SOLVERS, VARIANTS
from repro.experiments.setup import quick_setup
from repro.gp import make_surrogate

from _shared import write_artifact

DIM = 6
N_OBS = 10_000
N_CANDIDATES = 1_000
N_FEATURES = 256
N_ROUNDS = 2
MIN_SPEEDUP = 10.0

N_EVALUATIONS = 20
REGRET_RTOL = 0.10

_RESULTS: dict = {}


def _data(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, DIM))
    y = (
        np.sin(3.0 * X[:, 0])
        + X[:, 1] ** 2
        + 0.5 * np.cos(5.0 * X[:, 2]) * X[:, 3]
        + 0.02 * rng.normal(size=n)
    )
    return X, y


def _proposal_seconds(model, X_new, y_new, X_cand) -> float:
    """Wall-clock of ``N_ROUNDS`` proposal-shaped rounds (append+predict)."""
    start = time.perf_counter()
    for i in range(N_ROUNDS):
        model.append(X_new[i], y_new[i])
        model.predict(X_cand)
    return (time.perf_counter() - start) / N_ROUNDS


def test_proposal_speedup_at_10k_observations():
    X, y = _data(N_OBS + N_ROUNDS, seed=0)
    X_cand = np.random.default_rng(1).uniform(size=(N_CANDIDATES, DIM))
    tiers = {}
    for tier in ("exact", "rff", "nystrom"):
        model = make_surrogate(tier, DIM, n_features=N_FEATURES)
        start = time.perf_counter()
        model.fit(X[:N_OBS], y[:N_OBS], optimize_hypers=False)
        fit_s = time.perf_counter() - start
        proposal_s = _proposal_seconds(
            model, X[N_OBS:], y[N_OBS:], X_cand
        )
        tiers[tier] = {"fit_s": fit_s, "proposal_s": proposal_s}

    exact_s = tiers["exact"]["proposal_s"]
    for tier in ("rff", "nystrom"):
        tiers[tier]["speedup"] = exact_s / tiers[tier]["proposal_s"]
    _RESULTS["proposal"] = {
        "n_observations": N_OBS,
        "n_candidates": N_CANDIDATES,
        "n_features": N_FEATURES,
        "tiers": tiers,
    }
    for tier in ("rff", "nystrom"):
        assert tiers[tier]["speedup"] >= MIN_SPEEDUP, (
            f"{tier} proposal round only {tiers[tier]['speedup']:.1f}x "
            f"faster than exact at n={N_OBS} (needed {MIN_SPEEDUP}x): "
            f"exact {exact_s:.3f} s, {tier} "
            f"{tiers[tier]['proposal_s']:.3f} s"
        )


def test_regret_parity_across_all_cells():
    setup = quick_setup(
        "mnist", "gtx1070", power_budget_w=85.0, memory_budget_gb=1.15,
        seed=0, profiling_samples=100,
    )
    cells = []
    for variant in sorted(VARIANTS):
        for solver in sorted(SOLVERS):
            exact = setup.run(
                solver, variant, run_seed=7,
                max_evaluations=N_EVALUATIONS, surrogate="exact",
            )
            sparse = setup.run(
                solver, variant, run_seed=7,
                max_evaluations=N_EVALUATIONS, surrogate="rff",
                surrogate_features=N_FEATURES,
            )
            best_exact = float(exact.best_error_vs_samples()[-1])
            best_sparse = float(sparse.best_error_vs_samples()[-1])
            # Relative regret gap vs the exact tier (chance error bounds
            # both, so the denominator is never degenerate).
            gap = (best_sparse - best_exact) / max(best_exact, 1e-12)
            cells.append(
                {
                    "solver": solver,
                    "variant": variant,
                    "best_error_exact": best_exact,
                    "best_error_rff": best_sparse,
                    "regret_gap": gap,
                }
            )
    _RESULTS["regret"] = {
        "n_evaluations": N_EVALUATIONS,
        "rtol": REGRET_RTOL,
        "cells": cells,
    }
    failing = [c for c in cells if c["regret_gap"] > REGRET_RTOL]
    assert not failing, (
        "RFF tier lost more than "
        f"{REGRET_RTOL:.0%} regret vs exact on: "
        + ", ".join(
            f"{c['solver']}/{c['variant']} (+{c['regret_gap']:.1%})"
            for c in failing
        )
    )

    write_artifact(
        "BENCH_sparse_gp.json", json.dumps(_RESULTS, indent=1) + "\n"
    )
    prop = _RESULTS["proposal"]["tiers"]
    lines = [
        f"observations        {N_OBS}",
        f"candidates/round    {N_CANDIDATES}",
        f"sparse features     {N_FEATURES}",
        f"exact proposal      {prop['exact']['proposal_s'] * 1e3:9.1f} ms",
        f"rff proposal        {prop['rff']['proposal_s'] * 1e3:9.1f} ms"
        f"  ({prop['rff']['speedup']:.0f}x)",
        f"nystrom proposal    {prop['nystrom']['proposal_s'] * 1e3:9.1f} ms"
        f"  ({prop['nystrom']['speedup']:.0f}x)",
        f"regret cells (rff vs exact, {N_EVALUATIONS} evals):",
    ]
    lines += [
        f"  {c['solver']:9s} {c['variant']:10s} "
        f"exact {c['best_error_exact']:.4f}  "
        f"rff {c['best_error_rff']:.4f}  gap {c['regret_gap']:+.1%}"
        for c in cells
    ]
    write_artifact("sparse_gp.txt", "\n".join(lines) + "\n")


if __name__ == "__main__":
    from pathlib import Path

    test_proposal_speedup_at_10k_observations()
    test_regret_parity_across_all_cells()
    print(
        (Path(__file__).resolve().parent / "out" / "sparse_gp.txt").read_text()
    )
