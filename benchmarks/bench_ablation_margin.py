"""Ablation — the HW-IECI indicator's uncertainty margin.

The paper's Equation 3 gates EI with hard indicators and reports zero
constraint violations; it also notes that "uncertainty can be also
encapsulated by replacing the indicator functions with probabilistic
Gaussian models ... whose analysis we leave for future work".  This bench
explores that axis: backing the indicator off the budget by 0, 0.5 and 1
out-of-fold residual standard deviations, and measuring the violation
rate and accuracy trade-off for model-screened random search.
"""

import numpy as np

from repro.core.constraints import ModelConstraintChecker
from repro.core.hyperpower import HyperPower
from repro.core.methods import RandomSearch
from repro.experiments.reporting import render_table
from repro.experiments.setup import quick_setup

from _shared import bench_scale, write_artifact

MARGINS = (0.0, 0.5, 1.0)
_BUDGET_S = 2.0 * 3600.0


def test_ablation_margin(benchmark):
    setup = quick_setup(
        "mnist",
        "tx1",
        power_budget_w=10.0,
        seed=0,
        profiling_samples=100,
    )

    def run():
        out = {}
        for margin in MARGINS:
            checker = ModelConstraintChecker(
                setup.spec, setup.power_model, None, margin_sigmas=margin
            )
            runs = []
            for repeat in range(2):
                method = RandomSearch(setup.space, checker)
                objective = setup.new_objective(1000 * repeat + int(margin * 10))
                driver = HyperPower(objective, method, "hyperpower")
                rng = np.random.default_rng(7 + repeat)
                runs.append(
                    driver.run(rng, max_time_s=_BUDGET_S * bench_scale())
                )
            out[margin] = runs
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for margin, runs in results.items():
        trained = np.mean([r.n_trained for r in runs])
        violations = np.mean([r.n_violations for r in runs])
        error = np.mean([r.best_feasible_error for r in runs]) * 100
        rows.append(
            [
                f"{margin:.1f} sigma",
                f"{trained:.1f}",
                f"{violations:.1f}",
                f"{violations / max(trained, 1) * 100:.1f}%",
                f"{error:.2f}%",
            ]
        )
    table = render_table(
        "Ablation: indicator margin (screened random search, MNIST/TX1)",
        ["Margin", "Trainings", "Violations", "Violation rate", "Best error"],
        rows,
    )
    print()
    print(table)
    write_artifact("ablation_margin.txt", table)

    # Violation rate decreases monotonically-ish with the margin.
    rates = {
        margin: np.mean([r.n_violations for r in runs])
        / max(1, np.mean([r.n_trained for r in runs]))
        for margin, runs in results.items()
    }
    assert rates[1.0] <= rates[0.0] + 1e-9
