"""Table 4 — increase in the number of samples each method could query.

Regenerates the paper's Table 4: samples queried within the fixed budget,
default vs HyperPower, and the increase factor.

Paper shapes: random search gains the most (up to 57.20x — rejected
proposals cost milliseconds instead of a full training), random walk
follows, and the Bayesian methods gain 1.1-2x (their per-iteration cost
is dominated by the training of the accepted sample).
"""

import numpy as np

from repro.experiments.fixed_runtime import format_table4

from _shared import get_runtime_study, write_artifact


def test_table4_sample_increase(benchmark):
    study = get_runtime_study()
    table = benchmark(lambda: format_table4(study))
    print()
    print(table)
    write_artifact("table4.txt", table)

    def increase(pair, solver):
        default = np.mean(
            [r.n_samples for r in study.cell(pair, solver, "default")]
        )
        hyper = np.mean(
            [r.n_samples for r in study.cell(pair, solver, "hyperpower")]
        )
        return hyper / default

    # Ordering of the gains mirrors the paper: Rand >> Rand-Walk > BO.
    rand = increase("mnist-gtx1070", "Rand")
    walk = increase("mnist-gtx1070", "Rand-Walk")
    ieci = increase("mnist-gtx1070", "HW-IECI")
    assert rand > 10.0
    assert rand > walk > ieci * 0.9
    assert ieci < 4.0

    # The loose MNIST/TX1 pair shows much smaller gains than the tight
    # MNIST/GTX pair (fewer rejections to skip).
    assert increase("mnist-gtx1070", "Rand") > 2 * increase("mnist-tx1", "Rand")
