"""The abstract's headline factors, paper vs measured.

Distils the fixed-runtime study into the four numbers the paper's
abstract leads with: up to 112.99x faster to the default's sample count,
up to 30.12x faster to its best error, up to 57.20x more samples queried,
and accuracy improved by up to 67.6%.
"""

import math

from repro.experiments.headlines import compute_headlines, format_headlines

from _shared import get_runtime_study, write_artifact


def test_headlines(benchmark):
    study = get_runtime_study()
    headlines = benchmark(lambda: compute_headlines(study))
    table = format_headlines(headlines)
    print()
    print(table)
    write_artifact("headlines.txt", table)

    # The orders of magnitude of the paper's abstract: huge sample-count
    # effects, meaningful accuracy effects.
    assert headlines.max_speedup_to_sample_count > 10.0
    assert headlines.max_sample_increase > 10.0
    assert headlines.max_accuracy_improvement_pct > 20.0
    if math.isfinite(headlines.max_speedup_to_best_error):
        assert headlines.max_speedup_to_best_error > 1.0
