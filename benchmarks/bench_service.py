"""Benchmark: multi-tenant study-service throughput (ISSUE 6).

Acceptance gate: one :class:`~repro.service.StudyStore` holding 100
concurrent studies must sustain **>= 1000 suggest/observe ops/s** with
per-event fsync durability on, and a kill at a request boundary must
resume every one of the 100 studies bit-exactly.

The op stream interleaves the studies in a seeded random order — each op
is one service request (a suggest, or the observe resolving the study's
oldest pending ticket), the same shape the HTTP front end serves.  The
throughput phase uses the model-free solvers (Rand/Rand-Walk): they make
the journal + store machinery the bottleneck being measured, not GP
algebra.  Results land in ``benchmarks/out/BENCH_service.json``
(uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.study import TrialReport
from repro.service import StudySpec, StudyStore
from repro.space.params import ContinuousParameter, IntegerParameter
from repro.space.space import SearchSpace

from _shared import write_artifact

N_STUDIES = 100
PAIRS_PER_STUDY = 10  # suggest+observe pairs, so 20 ops per study
MIN_OPS_PER_S = 1000.0


def _space() -> SearchSpace:
    return SearchSpace(
        [
            IntegerParameter("units", 0, 512),
            ContinuousParameter("lr", 1e-4, 1.0, log=True),
        ]
    )


def _spec(i: int) -> StudySpec:
    return StudySpec(
        name=f"bench-{i:03d}",
        space=_space(),
        solver="Rand" if i % 2 == 0 else "Rand-Walk",
        seed=i,
    )


def _report(study_index: int, ticket: int) -> dict:
    return TrialReport(
        error=round(0.7 - 0.0005 * ticket - 0.001 * study_index, 6),
        cost_s=8.0,
        epochs_run=3,
        power_w=50.0 + (study_index + ticket) % 45,
    ).to_dict()


def test_service_throughput_and_kill_resume():
    root = Path(tempfile.mkdtemp(prefix="bench-service-"))
    results: dict = {
        "n_studies": N_STUDIES,
        "pairs_per_study": PAIRS_PER_STUDY,
        "fsync": True,
        "min_ops_per_s": MIN_OPS_PER_S,
    }
    try:
        store = StudyStore(root, fsync=True)
        for i in range(N_STUDIES):
            store.create_study(_spec(i))

        rng = np.random.default_rng(0)
        schedule = rng.permutation(
            np.repeat(np.arange(N_STUDIES), 2 * PAIRS_PER_STUDY)
        )
        pending: dict[int, list[int]] = {i: [] for i in range(N_STUDIES)}

        t0 = time.perf_counter()
        for index in schedule:
            index = int(index)
            name = f"bench-{index:03d}"
            queue = pending[index]
            if queue:
                ticket = queue.pop(0)
                store.observe(name, ticket, _report(index, ticket))
            else:
                (suggestion,) = store.suggest(name, 1)
                queue.append(suggestion["ticket"])
        elapsed = time.perf_counter() - t0

        n_ops = len(schedule)
        ops_per_s = n_ops / elapsed
        results["n_ops"] = int(n_ops)
        results["elapsed_s"] = round(elapsed, 4)
        results["ops_per_s"] = round(ops_per_s, 1)

        reference = {
            f"bench-{i:03d}": store.trials(f"bench-{i:03d}")
            for i in range(N_STUDIES)
        }
        # Kill at a request boundary (close without any special shutdown
        # path — the journal is already durable line by line) and resume.
        store.close()
        t0 = time.perf_counter()
        resumed = StudyStore(root, fsync=True)
        drift = [
            name
            for name, trials in reference.items()
            if resumed.trials(name) != trials
        ]
        results["resume_s"] = round(time.perf_counter() - t0, 4)
        results["resume_drift"] = drift
        resumed.close()

        write_artifact(
            "BENCH_service.json", json.dumps(results, indent=2) + "\n"
        )
        assert not drift, f"kill-and-resume drifted in {len(drift)} studies"
        assert ops_per_s >= MIN_OPS_PER_S, (
            f"sustained only {ops_per_s:.0f} suggest/observe ops/s "
            f"(gate: {MIN_OPS_PER_S:.0f})"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    test_service_throughput_and_kill_resume()
    print(
        (Path(__file__).resolve().parent / "out" / "BENCH_service.json")
        .read_text()
    )
