"""Benchmark: multi-tenant study-service throughput and recovery.

Acceptance gates: one :class:`~repro.service.StudyStore` holding 100
concurrent studies must sustain **>= 1000 suggest/observe ops/s** with
per-event fsync durability on, and a kill at a request boundary must
resume every one of the 100 studies bit-exactly.  Snapshot compaction
must make recovery of a 10k-event study **>= 5x faster** than full
journal replay while staying bit-exact (same status, trials and future
proposal stream).

The op stream interleaves the studies in a seeded random order — each op
is one service request (a suggest, or the observe resolving the study's
oldest pending ticket), the same shape the HTTP front end serves.  The
throughput phase uses the model-free solvers (Rand/Rand-Walk): they make
the journal + store machinery the bottleneck being measured, not GP
algebra.  Results land in ``benchmarks/out/BENCH_service.json``
(uploaded as a CI artifact).
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.study import TrialReport
from repro.service import StudySpec, StudyStore
from repro.space.params import ContinuousParameter, IntegerParameter
from repro.space.space import SearchSpace

from _shared import write_artifact

N_STUDIES = 100
PAIRS_PER_STUDY = 10  # suggest+observe pairs, so 20 ops per study
MIN_OPS_PER_S = 1000.0

RECOVERY_EVENTS = 10_000  # journal events in the snapshot-recovery gate
MIN_RECOVERY_SPEEDUP = 5.0


def _space() -> SearchSpace:
    return SearchSpace(
        [
            IntegerParameter("units", 0, 512),
            ContinuousParameter("lr", 1e-4, 1.0, log=True),
        ]
    )


def _spec(i: int) -> StudySpec:
    return StudySpec(
        name=f"bench-{i:03d}",
        space=_space(),
        solver="Rand" if i % 2 == 0 else "Rand-Walk",
        seed=i,
    )


def _report(study_index: int, ticket: int) -> dict:
    return TrialReport(
        error=round(0.7 - 0.0005 * ticket - 0.001 * study_index, 6),
        cost_s=8.0,
        epochs_run=3,
        power_w=50.0 + (study_index + ticket) % 45,
    ).to_dict()


def test_service_throughput_and_kill_resume():
    root = Path(tempfile.mkdtemp(prefix="bench-service-"))
    results: dict = {
        "n_studies": N_STUDIES,
        "pairs_per_study": PAIRS_PER_STUDY,
        "fsync": True,
        "min_ops_per_s": MIN_OPS_PER_S,
    }
    try:
        store = StudyStore(root, fsync=True)
        for i in range(N_STUDIES):
            store.create_study(_spec(i))

        rng = np.random.default_rng(0)
        schedule = rng.permutation(
            np.repeat(np.arange(N_STUDIES), 2 * PAIRS_PER_STUDY)
        )
        pending: dict[int, list[int]] = {i: [] for i in range(N_STUDIES)}

        t0 = time.perf_counter()
        for index in schedule:
            index = int(index)
            name = f"bench-{index:03d}"
            queue = pending[index]
            if queue:
                ticket = queue.pop(0)
                store.observe(name, ticket, _report(index, ticket))
            else:
                (suggestion,) = store.suggest(name, 1)
                queue.append(suggestion["ticket"])
        elapsed = time.perf_counter() - t0

        n_ops = len(schedule)
        ops_per_s = n_ops / elapsed
        results["n_ops"] = int(n_ops)
        results["elapsed_s"] = round(elapsed, 4)
        results["ops_per_s"] = round(ops_per_s, 1)

        reference = {
            f"bench-{i:03d}": store.trials(f"bench-{i:03d}")
            for i in range(N_STUDIES)
        }
        # Kill at a request boundary (close without any special shutdown
        # path — the journal is already durable line by line) and resume.
        store.close()
        t0 = time.perf_counter()
        resumed = StudyStore(root, fsync=True)
        drift = [
            name
            for name, trials in reference.items()
            if resumed.trials(name) != trials
        ]
        results["resume_s"] = round(time.perf_counter() - t0, 4)
        results["resume_drift"] = drift
        resumed.close()

        _merge_artifact(results)
        assert not drift, f"kill-and-resume drifted in {len(drift)} studies"
        assert ops_per_s >= MIN_OPS_PER_S, (
            f"sustained only {ops_per_s:.0f} suggest/observe ops/s "
            f"(gate: {MIN_OPS_PER_S:.0f})"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)


def test_snapshot_recovery_speedup():
    """Snapshot resume of a 10k-event study: bit-exact and >= 5x faster.

    One study accumulates ``RECOVERY_EVENTS`` journal events; the
    directory is cloned, one copy compacted via ``snapshot()``.  Resuming
    the compacted copy must be at least ``MIN_RECOVERY_SPEEDUP``x faster
    than full replay of the clone — and land on the identical state
    (status, trials, and the next proposals, compared bit-for-bit).
    """
    root = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
    replay_root = Path(tempfile.mkdtemp(prefix="bench-recovery-replay-"))
    results: dict = {
        "n_events": RECOVERY_EVENTS,
        "min_speedup": MIN_RECOVERY_SPEEDUP,
    }
    try:
        store = StudyStore(root, fsync=True)
        store.create_study(_spec(0))
        for _ in range(RECOVERY_EVENTS // 2):
            (suggestion,) = store.suggest("bench-000", 1)
            store.observe(
                "bench-000", suggestion["ticket"],
                _report(0, suggestion["ticket"]),
            )
        store.close()

        # Clone the journal before compaction: the replay twin.
        shutil.rmtree(replay_root, ignore_errors=True)
        shutil.copytree(root, replay_root)

        compactor = StudyStore(root, fsync=True)
        compactor.get("bench-000").snapshot()
        compactor.close()

        t0 = time.perf_counter()
        replayed = StudyStore(replay_root, fsync=True)
        replayed.get("bench-000")  # forces the full-journal replay
        replay_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        snapped = StudyStore(root, fsync=True)
        snapped.get("bench-000")  # restores from study.snap
        snapshot_s = time.perf_counter() - t0

        speedup = replay_s / snapshot_s if snapshot_s > 0 else float("inf")
        results["replay_resume_s"] = round(replay_s, 4)
        results["snapshot_resume_s"] = round(snapshot_s, 4)
        results["speedup"] = round(speedup, 1)

        identical = (
            snapped.status("bench-000") == replayed.status("bench-000")
            and snapped.trials("bench-000") == replayed.trials("bench-000")
            and snapped.suggest("bench-000", 2)
            == replayed.suggest("bench-000", 2)
        )
        results["bit_exact"] = identical
        snapped.close()
        replayed.close()

        _merge_artifact({"recovery": results})
        assert identical, "snapshot resume diverged from full replay"
        assert speedup >= MIN_RECOVERY_SPEEDUP, (
            f"snapshot resume only {speedup:.1f}x faster than replay "
            f"(gate: {MIN_RECOVERY_SPEEDUP:.0f}x; replay {replay_s:.3f}s, "
            f"snapshot {snapshot_s:.3f}s)"
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
        shutil.rmtree(replay_root, ignore_errors=True)


def _merge_artifact(update: dict) -> None:
    """Fold one bench's results into the shared BENCH_service.json."""
    out = Path(__file__).resolve().parent / "out" / "BENCH_service.json"
    merged: dict = {}
    if out.exists():
        try:
            merged = json.loads(out.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            merged = {}
    merged.update(update)
    write_artifact("BENCH_service.json", json.dumps(merged, indent=2) + "\n")


if __name__ == "__main__":
    test_service_throughput_and_kill_resume()
    test_snapshot_recovery_speedup()
    print(
        (Path(__file__).resolve().parent / "out" / "BENCH_service.json")
        .read_text()
    )
