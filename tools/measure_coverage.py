#!/usr/bin/env python
"""Zero-dependency line-coverage estimator for the test suite.

CI measures coverage properly with ``coverage.py`` (see the ``coverage``
job in ``.github/workflows/ci.yml``); this tool exists for environments
where that package is not installable.  It traces the test run with
``sys.settrace``, records which lines of ``src/repro`` execute, and
divides by the executable-line count derived from each module's compiled
code objects (``co_lines``), which is the same line universe coverage.py
uses.  Expect agreement within a couple of points — decorators and
module-level constants are attributed slightly differently.

Usage::

    PYTHONPATH=src python tools/measure_coverage.py [pytest args...]

e.g. ``python tools/measure_coverage.py -m "not slow" -q``.  Prints a
per-file table plus the total, and exits non-zero if pytest failed.
"""

from __future__ import annotations

import dis
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"


def executable_lines(path: Path) -> set[int]:
    """Line numbers coverage.py would consider executable, via co_lines."""
    code = compile(path.read_text(encoding="utf-8"), str(path), "exec")
    lines: set[int] = set()
    stack = [code]
    while stack:
        obj = stack.pop()
        for const in obj.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
        for _, _, lineno in obj.co_lines():
            if lineno is not None:
                lines.add(lineno)
    return lines


def main(argv: list[str]) -> int:
    import pytest

    prefix = str(SRC_ROOT)
    executed: dict[str, set[int]] = {}

    def local_trace(frame, event, arg):
        if event == "line":
            executed[frame.f_code.co_filename].add(frame.f_lineno)
        return local_trace

    def global_trace(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(prefix):
            return None
        executed.setdefault(filename, set())
        return local_trace

    sys.settrace(global_trace)
    try:
        status = pytest.main(argv or ["-q"])
    finally:
        sys.settrace(None)

    rows = []
    total_hit = total_lines = 0
    for path in sorted(SRC_ROOT.rglob("*.py")):
        lines = executable_lines(path)
        if not lines:
            continue
        hit = len(lines & executed.get(str(path), set()))
        total_hit += hit
        total_lines += len(lines)
        rows.append((path.relative_to(REPO_ROOT), hit, len(lines)))

    width = max(len(str(name)) for name, _, _ in rows)
    for name, hit, n in rows:
        print(f"{str(name):<{width}}  {hit:5d}/{n:<5d}  {100 * hit / n:6.1f}%")
    print("-" * (width + 22))
    print(
        f"{'TOTAL':<{width}}  {total_hit:5d}/{total_lines:<5d}  "
        f"{100 * total_hit / total_lines:6.1f}%"
    )
    return int(status)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
