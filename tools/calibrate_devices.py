"""Calibrate device energy/latency constants against the paper's implied
budget quantiles.

The paper fixes its power/memory budgets (85/90 W GTX 1070, 10/12 W Tegra
TX1, 1.15/1.25 GB GTX) and its Tables 2-4 imply how deeply those budgets
cut the uniform configuration distribution (e.g. default random search on
MNIST/GTX almost never lands a feasible point, while on MNIST/TX1 it
usually does).  This script random-searches the four free constants of each
:class:`~repro.hwsim.device.DeviceModel` (energy per FLOP, energy per byte,
per-kernel memory latency, per-kernel compute ramp-up) so that uniform
samples from the two design spaces land at those quantiles, then prints the
constants to freeze into :mod:`repro.hwsim.devices`.

Usage: ``python tools/calibrate_devices.py [iterations]``
"""

from __future__ import annotations

import sys
from dataclasses import replace

import numpy as np

from repro.hwsim import GTX_1070, TEGRA_TX1
from repro.hwsim.power import inference_power
from repro.nn import build_network
from repro.space import cifar10_space, mnist_space

#: (dataset, percentile, target watts, weight) — see DESIGN.md Section 2.
GTX_TARGETS = [
    ("mnist", 5, 85.0, 1.5),
    ("mnist", 50, 95.0, 0.4),
    ("cifar10", 10, 90.0, 1.5),
    ("cifar10", 60, 105.0, 0.3),
    ("cifar10", 97, 130.0, 0.4),
]
TX1_TARGETS = [
    ("mnist", 55, 10.0, 1.5),
    ("mnist", 5, 7.2, 0.3),
    ("mnist", 97, 12.0, 0.5),
    ("cifar10", 15, 12.0, 1.5),
    ("cifar10", 60, 13.6, 0.4),
    ("cifar10", 95, 14.6, 0.3),
]

#: log10 search ranges for (energy_per_flop, energy_per_byte,
#: mem_latency_bytes, compute_latency_flops).
SEARCH_RANGES = {
    "GTX 1070": [(-12.3, -10.5), (-10.6, -8.8), (4.0, 7.5), (5.0, 9.5)],
    "Tegra TX1": [(-11.8, -10.0), (-11.0, -9.2), (3.5, 7.0), (4.5, 9.0)],
}


def sample_networks(n: int, seed: int) -> dict[str, list]:
    """Per-layer (flops, bytes) work arrays for uniformly sampled networks.

    Precomputing the work lets the inner loop evaluate power as pure numpy
    instead of re-profiling every network for every candidate device.
    """
    from repro.hwsim.power import _layer_bytes
    from repro.nn.metrics import profile_network

    rng = np.random.default_rng(seed)
    nets = {}
    for name, space in (("mnist", mnist_space()), ("cifar10", cifar10_space())):
        batch = 256 if name else 256  # overwritten per device below
        work = []
        for config in space.sample_many(n, rng):
            profile = profile_network(build_network(name, config))
            flops = np.array([layer.flops for layer in profile.layers], dtype=float)
            bytes_1 = np.array(
                [_layer_bytes(layer, 1) for layer in profile.layers], dtype=float
            )
            weights = np.array(
                [layer.weight_bytes for layer in profile.layers], dtype=float
            )
            work.append((flops, bytes_1, weights))
        nets[name] = work
    return nets


def powers(device, work_list) -> np.ndarray:
    """Vectorised re-implementation of :func:`inference_power`.

    Mirrors the full model including the DVFS boost and the concave
    occupancy-efficiency exponent, but skips the per-topology variation
    (the calibration targets are distribution quantiles, which the
    zero-mean variation barely moves).
    """
    batch = device.profile_batch
    out = np.empty(len(work_list))
    for index, (flops, bytes_1, weights) in enumerate(work_list):
        layer_flops = flops * batch
        # _layer_bytes(layer, B) = B * (input + output bytes) + weights.
        layer_bytes = (bytes_1 - weights) * batch + weights
        t_compute = (layer_flops + device.compute_latency_flops) / device.peak_flops
        t_memory = (layer_bytes + device.mem_latency_bytes) / device.mem_bandwidth
        total = float(
            np.sum(np.maximum(t_compute, t_memory)) + flops.size * device.launch_overhead_s
        )
        rate_f = layer_flops.sum() / total
        rate_b = layer_bytes.sum() / total
        dynamic = (
            device.energy_per_flop * rate_f + device.energy_per_byte * rate_b
        )
        dynamic *= 1.0 + device.utilization_boost * rate_f / device.peak_flops
        span = device.dynamic_range_w
        if device.power_gamma < 1.0 and dynamic > 0.0:
            dynamic = span * (dynamic / span) ** device.power_gamma
        out[index] = device.idle_power_w + span * np.tanh(dynamic / span)
    return out


def calibrate(base, targets, nets, iterations: int, seed: int):
    ranges = SEARCH_RANGES[base.name]
    rng = np.random.default_rng(seed)
    best, best_loss = None, np.inf
    for _ in range(iterations):
        params = [10 ** rng.uniform(lo, hi) for lo, hi in ranges]
        device = replace(
            base,
            energy_per_flop=params[0],
            energy_per_byte=params[1],
            mem_latency_bytes=params[2],
            compute_latency_flops=params[3],
        )
        loss = 0.0
        for dataset, pct, value, weight in targets:
            got = np.percentile(powers(device, nets[dataset]), pct)
            loss += weight * ((got - value) / value) ** 2
        if loss < best_loss:
            best_loss, best = loss, params
    return best, best_loss


def report(base, params, nets) -> None:
    device = replace(
        base,
        energy_per_flop=params[0],
        energy_per_byte=params[1],
        mem_latency_bytes=params[2],
        compute_latency_flops=params[3],
    )
    print(f"  energy_per_flop={params[0]:.4e}")
    print(f"  energy_per_byte={params[1]:.4e}")
    print(f"  mem_latency_bytes={params[2]:.4e}")
    print(f"  compute_latency_flops={params[3]:.4e}")
    for dataset in ("mnist", "cifar10"):
        p = powers(device, nets[dataset])
        quantiles = np.round(np.percentile(p, [0, 5, 15, 25, 50, 75, 95, 100]), 1)
        print(f"  {dataset:8s} quantiles(0/5/15/25/50/75/95/100)={quantiles}")


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 3000
    nets = sample_networks(400, seed=0)
    for base, targets, seed in (
        (GTX_1070, GTX_TARGETS, 1),
        (TEGRA_TX1, TX1_TARGETS, 2),
    ):
        print(f"=== {base.name} ===")
        best, loss = calibrate(base, targets, nets, iterations, seed)
        print(f"  loss={loss:.5f}")
        report(base, best, nets)


if __name__ == "__main__":
    main()
