"""Error-power Pareto analysis of optimization runs.

The paper's related work frames hardware-aware HPO as multi-objective
(Smithson et al. [8] optimize accuracy against implementation cost;
Hernández-Lobato et al. [14] support constrained multi-objective
formulations that HyperPower's models "can be flexibly incorporated
into").  Single-budget runs still produce the raw material: every trained
trial is an (error, power) point.  This module extracts the
non-dominated front from one or more runs — the menu of best achievable
trade-offs a designer would actually pick from.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

from ..core.result import RunResult
from .reporting import render_table

__all__ = ["ParetoPoint", "pareto_front", "hypervolume_2d", "format_front"]


@dataclass(frozen=True)
class ParetoPoint:
    """One non-dominated (error, power) trade-off."""

    #: Best observed test error of the trial.
    error: float
    #: Measured power, W.
    power_w: float
    #: The configuration achieving it.
    config: dict

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weak domination: no worse on both axes, better on one."""
        no_worse = self.error <= other.error and self.power_w <= other.power_w
        better = self.error < other.error or self.power_w < other.power_w
        return no_worse and better


def _candidate_points(runs: Iterable[RunResult]) -> list[ParetoPoint]:
    points = []
    for run in runs:
        for trial in run.trials:
            if not trial.was_trained or math.isnan(trial.error):
                continue
            if trial.power_meas_w is None:
                continue
            points.append(
                ParetoPoint(
                    error=trial.error,
                    power_w=trial.power_meas_w,
                    config=dict(trial.config),
                )
            )
    return points


def pareto_front(runs: Iterable[RunResult] | RunResult) -> list[ParetoPoint]:
    """The non-dominated (error, power) points across ``runs``.

    Returned sorted by increasing power (hence decreasing error).
    """
    if isinstance(runs, RunResult):
        runs = [runs]
    points = _candidate_points(runs)
    # Sweep by power, keeping strictly improving error.
    points.sort(key=lambda p: (p.power_w, p.error))
    front: list[ParetoPoint] = []
    best_error = math.inf
    for point in points:
        if point.error < best_error:
            front.append(point)
            best_error = point.error
    return front


def hypervolume_2d(
    front: Iterable[ParetoPoint],
    error_ref: float,
    power_ref_w: float,
) -> float:
    """Dominated hypervolume against a reference (error, power) corner.

    The standard 2-D quality indicator: the area between the front and the
    reference point; larger is better.  Points outside the reference box
    contribute nothing.
    """
    points = sorted(front, key=lambda p: p.power_w)
    volume = 0.0
    previous_power = None
    best_error = error_ref
    for point in points:
        if point.power_w >= power_ref_w or point.error >= error_ref:
            continue
        if previous_power is None:
            previous_power = point.power_w
        if point.error < best_error:
            volume += (power_ref_w - point.power_w) * (best_error - point.error)
            best_error = point.error
    return volume


def format_front(front: Iterable[ParetoPoint]) -> str:
    """Render the front as a table (low-power end first)."""
    rows = [
        [f"{p.power_w:.1f} W", f"{p.error * 100:.2f}%"]
        for p in sorted(front, key=lambda q: q.power_w)
    ]
    return render_table(
        "Error-power Pareto front (non-dominated trained samples)",
        ["Power", "Test error"],
        rows,
    )
