"""Evaluation harnesses regenerating the paper's tables and figures."""

from .headlines import Headlines, compute_headlines, format_headlines
from .fixed_evals import FIXED_EVAL_FORMS, FixedEvalsStudy, figure4_series, run_fixed_evals
from .fixed_runtime import (
    RuntimeStudy,
    figure6_series,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    run_fixed_runtime,
)
from .model_accuracy import (
    ModelAccuracyStudy,
    PairModelAccuracy,
    figure5_series,
    format_table1,
    run_model_accuracy,
)
from .motivating import (
    Figure1Data,
    Figure3Data,
    IntroComparison,
    run_figure1,
    run_figure3,
    run_intro_comparison,
)
from .breakdown import TimeBreakdown, format_breakdown, time_breakdown
from .pareto import ParetoPoint, format_front, hypervolume_2d, pareto_front
from .reporting import geometric_mean, render_table
from .sensitivity import ParameterSensitivity, format_sensitivity, sensitivity_report
from .setup import (
    PAPER_PAIRS,
    ExperimentSetup,
    PairSpec,
    paper_setup,
    quick_setup,
)

__all__ = [
    "PairSpec",
    "PAPER_PAIRS",
    "ExperimentSetup",
    "quick_setup",
    "paper_setup",
    "ModelAccuracyStudy",
    "PairModelAccuracy",
    "run_model_accuracy",
    "format_table1",
    "figure5_series",
    "Figure1Data",
    "Figure3Data",
    "run_figure1",
    "run_figure3",
    "IntroComparison",
    "run_intro_comparison",
    "FixedEvalsStudy",
    "FIXED_EVAL_FORMS",
    "run_fixed_evals",
    "figure4_series",
    "RuntimeStudy",
    "run_fixed_runtime",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
    "figure6_series",
    "geometric_mean",
    "Headlines",
    "compute_headlines",
    "format_headlines",
    "ParameterSensitivity",
    "sensitivity_report",
    "format_sensitivity",
    "ParetoPoint",
    "pareto_front",
    "hypervolume_2d",
    "format_front",
    "TimeBreakdown",
    "time_breakdown",
    "format_breakdown",
    "render_table",
]
