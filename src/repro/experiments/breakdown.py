"""Where does the wall-clock go? — per-run time breakdown.

Figure 6's "density of the samples along the solid lines" and Tables 3-4
are consequences of how each variant *spends* its budget: full trainings,
early-terminated trainings, model-rejected proposals, and framework
overhead (GP fits, proposal bookkeeping).  This module attributes a
:class:`~repro.core.result.RunResult`'s simulated time to those buckets.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.result import RunResult, TrialStatus
from .reporting import render_table

__all__ = ["TimeBreakdown", "time_breakdown", "format_breakdown"]


@dataclass(frozen=True)
class TimeBreakdown:
    """Simulated seconds spent per activity in one run."""

    #: Completed (full-schedule) trainings, incl. their profiling.
    full_training_s: float
    #: Early-terminated trainings, incl. their profiling.
    early_terminated_s: float
    #: Model-rejected proposals (wrapper + constraint check).
    rejected_s: float
    #: Everything else: GP fits, pool scoring, proposal bookkeeping.
    overhead_s: float
    #: The run's total wall time.
    total_s: float

    @property
    def accounted_s(self) -> float:
        """Sum of the attributed buckets (== total up to rounding)."""
        return (
            self.full_training_s
            + self.early_terminated_s
            + self.rejected_s
            + self.overhead_s
        )

    def fraction(self, bucket_s: float) -> float:
        """A bucket's share of the total."""
        if self.total_s <= 0:
            return 0.0
        return bucket_s / self.total_s


def time_breakdown(run: RunResult) -> TimeBreakdown:
    """Attribute ``run``'s wall time to activity buckets."""
    full = sum(
        t.cost_s for t in run.trials if t.status is TrialStatus.COMPLETED
    )
    early = sum(
        t.cost_s for t in run.trials if t.status is TrialStatus.EARLY_TERMINATED
    )
    rejected = sum(
        t.cost_s for t in run.trials if t.status is TrialStatus.REJECTED_MODEL
    )
    overhead = max(0.0, run.wall_time_s - full - early - rejected)
    return TimeBreakdown(
        full_training_s=full,
        early_terminated_s=early,
        rejected_s=rejected,
        overhead_s=overhead,
        total_s=run.wall_time_s,
    )


def format_breakdown(runs: dict[str, RunResult]) -> str:
    """Render one breakdown row per labelled run."""
    rows = []
    for label, run in runs.items():
        breakdown = time_breakdown(run)
        rows.append(
            [
                label,
                f"{breakdown.full_training_s / 3600:.2f} h "
                f"({breakdown.fraction(breakdown.full_training_s) * 100:.0f}%)",
                f"{breakdown.early_terminated_s / 3600:.2f} h "
                f"({breakdown.fraction(breakdown.early_terminated_s) * 100:.0f}%)",
                f"{breakdown.rejected_s / 3600:.2f} h "
                f"({breakdown.fraction(breakdown.rejected_s) * 100:.0f}%)",
                f"{breakdown.overhead_s / 3600:.2f} h "
                f"({breakdown.fraction(breakdown.overhead_s) * 100:.0f}%)",
            ]
        )
    return render_table(
        "Wall-clock breakdown per run",
        ["Run", "Full trainings", "Early-terminated", "Rejections", "Overhead"],
        rows,
    )
