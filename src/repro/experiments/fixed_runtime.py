"""Tables 2-5 + Figure 6: fixed wall-clock-budget comparison.

The paper's headline protocol: "each method keeps querying new samples as
long as the total wall-clock timestamp is less than two hours and five
hours for MNIST and CIFAR-10 respectively", three runs per method, on all
four device-dataset pairs, comparing every solver's HyperPower
implementation against its constraint-unaware ``default`` counterpart.

Derived reports:

* **Table 2** — mean (std) best feasible test error per cell; ``--`` when
  every run of a cell failed to find a feasible point (the fate of default
  Rand-Walk on CIFAR-10).
* **Table 3** — hours for the HyperPower variant to reach the *sample
  count* its default counterpart managed, and the geometric-mean speedup.
* **Table 4** — samples queried by each variant and the increase factor.
* **Table 5** — hours to reach the best accuracy the default variant
  achieved, and the speedup.
* **Figure 6** — best-error-vs-time step series for both variants of every
  solver on one pair (solid HyperPower lines left of dotted default ones).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.hyperpower import SOLVERS
from ..core.result import RunResult
from .reporting import (
    geometric_mean,
    hours_text,
    mean_std_text,
    render_table,
    speedup_text,
)
from .setup import PAPER_PAIRS, ExperimentSetup, paper_setup

__all__ = [
    "RuntimeStudy",
    "run_fixed_runtime",
    "format_table2",
    "format_table3",
    "format_table4",
    "format_table5",
    "figure6_series",
]

_PAIR_ORDER = ("mnist-gtx1070", "cifar10-gtx1070", "mnist-tx1", "cifar10-tx1")
_PAIR_LABELS = {
    "mnist-gtx1070": "MNIST-GTX1070",
    "cifar10-gtx1070": "CIFAR10-GTX1070",
    "mnist-tx1": "MNIST-TX1",
    "cifar10-tx1": "CIFAR10-TX1",
}


@dataclass(frozen=True)
class RuntimeStudy:
    """Raw runs of the fixed-runtime protocol.

    ``runs[(pair_key, solver, variant)]`` holds one
    :class:`~repro.core.result.RunResult` per repeat, with matching repeat
    indices across the two variants of a cell (the paper's per-run speedup
    ratios pair them up).
    """

    runs: dict[tuple[str, str, str], tuple[RunResult, ...]]
    n_repeats: int
    time_scale: float

    @property
    def pair_keys(self) -> tuple[str, ...]:
        """Pairs present in the study, in the paper's column order."""
        present = {key[0] for key in self.runs}
        return tuple(k for k in _PAIR_ORDER if k in present)

    @property
    def solvers(self) -> tuple[str, ...]:
        """Solvers present in the study, in the paper's row order."""
        present = {key[1] for key in self.runs}
        return tuple(s for s in SOLVERS if s in present)

    def cell(self, pair_key: str, solver: str, variant: str) -> tuple[RunResult, ...]:
        """All repeats of one table cell."""
        return self.runs[(pair_key, solver, variant)]


def run_fixed_runtime(
    pair_keys: tuple[str, ...] | None = None,
    solvers: tuple[str, ...] = SOLVERS,
    n_repeats: int = 3,
    seed: int = 0,
    time_scale: float = 1.0,
    profiling_samples: int = 100,
) -> RuntimeStudy:
    """Run the Tables 2-5 protocol.

    ``time_scale`` shrinks the two/five-hour budgets proportionally — handy
    for smoke tests; the published numbers use ``time_scale=1.0``.
    """
    if pair_keys is None:
        pair_keys = _PAIR_ORDER
    if not (0.0 < time_scale <= 1.0):
        raise ValueError("time_scale must be in (0, 1]")

    runs: dict[tuple[str, str, str], tuple[RunResult, ...]] = {}
    for pair_key in pair_keys:
        setup, pair = paper_setup(
            pair_key, seed=seed, profiling_samples=profiling_samples
        )
        budget_s = pair.time_budget_s * time_scale
        for solver in solvers:
            for variant in ("default", "hyperpower"):
                repeats = []
                for repeat in range(n_repeats):
                    result = setup.run(
                        solver,
                        variant,
                        run_seed=1000 * repeat + 11,
                        max_time_s=budget_s,
                    )
                    repeats.append(result)
                runs[(pair_key, solver, variant)] = tuple(repeats)
    return RuntimeStudy(runs=runs, n_repeats=n_repeats, time_scale=time_scale)


def _headers(study: RuntimeStudy, sub: tuple[str, ...]) -> list[str]:
    headers = ["Solver"]
    for pair_key in study.pair_keys:
        label = _PAIR_LABELS[pair_key]
        headers.extend(f"{label} {column}" for column in sub)
    return headers


def format_table2(study: RuntimeStudy) -> str:
    """Table 2: mean best test error (std) per method and variant."""
    rows = []
    for solver in study.solvers:
        row = [solver]
        for pair_key in study.pair_keys:
            for variant in ("default", "hyperpower"):
                cell = study.cell(pair_key, solver, variant)
                if not any(run.found_feasible for run in cell):
                    # Every repeat failed to find a feasible solution —
                    # the paper's '--' cells (default Rand-Walk, CIFAR-10).
                    row.append("--")
                    continue
                # Failed repeats enter the mean at chance level, which is
                # how the paper's default-Rand cells reach ~60-75% error.
                errors = [run.best_feasible_error for run in cell]
                row.append(mean_std_text(errors, scale=100.0))
        rows.append(row)
    return render_table(
        "Table 2: mean best test error (std) per method",
        _headers(study, ("Default", "HyperPower")),
        rows,
    )


def format_table3(study: RuntimeStudy) -> str:
    """Table 3: hours for HyperPower to reach default's sample count."""
    rows = []
    for solver in study.solvers:
        row = [solver]
        for pair_key in study.pair_keys:
            default_cell = study.cell(pair_key, solver, "default")
            hyper_cell = study.cell(pair_key, solver, "hyperpower")
            default_hours, hyper_hours, ratios = [], [], []
            for default_run, hyper_run in zip(default_cell, hyper_cell):
                d_time = default_run.wall_time_s
                h_time = hyper_run.time_to_reach_samples(
                    default_run.n_samples
                )
                default_hours.append(d_time / 3600.0)
                if math.isfinite(h_time) and h_time > 0:
                    hyper_hours.append(h_time / 3600.0)
                    ratios.append(d_time / h_time)
            row.extend(
                [
                    hours_text(default_hours),
                    hours_text(hyper_hours),
                    speedup_text(ratios),
                ]
            )
        rows.append(row)
    return render_table(
        "Table 3: runtime (hours) for HyperPower to reach the sample count "
        "of its default counterpart",
        _headers(study, ("Default", "HyperPower", "Speedup")),
        rows,
    )


def format_table4(study: RuntimeStudy) -> str:
    """Table 4: increase in samples queried within the budget."""
    rows = []
    for solver in study.solvers:
        row = [solver]
        for pair_key in study.pair_keys:
            default_cell = study.cell(pair_key, solver, "default")
            hyper_cell = study.cell(pair_key, solver, "hyperpower")
            d_counts = [run.n_samples for run in default_cell]
            h_counts = [run.n_samples for run in hyper_cell]
            ratios = [
                h / d
                for d, h in zip(d_counts, h_counts)
                if d > 0 and h > 0
            ]
            row.extend(
                [
                    f"{np.mean(d_counts):.2f}",
                    f"{np.mean(h_counts):.2f}",
                    speedup_text(ratios),
                ]
            )
        rows.append(row)
    return render_table(
        "Table 4: increase in the number of samples each method could query",
        _headers(study, ("Default", "HyperPower", "Increase")),
        rows,
    )


def format_table5(study: RuntimeStudy) -> str:
    """Table 5: hours to reach the best accuracy the default achieved."""
    rows = []
    for solver in study.solvers:
        row = [solver]
        for pair_key in study.pair_keys:
            default_cell = study.cell(pair_key, solver, "default")
            hyper_cell = study.cell(pair_key, solver, "hyperpower")
            default_hours, hyper_hours, ratios = [], [], []
            for default_run, hyper_run in zip(default_cell, hyper_cell):
                if not default_run.found_feasible:
                    continue  # the paper's '--' runs
                target = default_run.best_feasible_error
                d_time = default_run.time_to_reach_error(target)
                h_time = hyper_run.time_to_reach_error(target)
                if math.isfinite(d_time):
                    default_hours.append(d_time / 3600.0)
                if math.isfinite(h_time):
                    hyper_hours.append(h_time / 3600.0)
                if (
                    math.isfinite(d_time)
                    and math.isfinite(h_time)
                    and h_time > 0
                ):
                    ratios.append(d_time / h_time)
            row.extend(
                [
                    hours_text(default_hours),
                    hours_text(hyper_hours),
                    speedup_text(ratios),
                ]
            )
        rows.append(row)
    return render_table(
        "Table 5: improvement in runtime (hours) to achieve the best "
        "accuracy of the default methods",
        _headers(study, ("Default", "HyperPower", "Speedup")),
        rows,
    )


def figure6_series(
    study: RuntimeStudy, pair_key: str = "cifar10-gtx1070"
) -> dict[str, dict[str, tuple[np.ndarray, np.ndarray]]]:
    """Figure 6: best-error-vs-time step series per solver and variant."""
    out: dict[str, dict[str, tuple[np.ndarray, np.ndarray]]] = {}
    for solver in study.solvers:
        out[solver] = {}
        for variant in ("default", "hyperpower"):
            cell = study.cell(pair_key, solver, variant)
            # Use the first repeat as the representative trace (the paper
            # plots single runs); all repeats remain available in `runs`.
            times, values = cell[0].best_error_vs_time()
            out[solver][variant] = (times, values)
    return out
