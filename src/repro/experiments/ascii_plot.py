"""Minimal ASCII plotting for figure artifacts.

The benchmark harness regenerates the paper's figures as data series; this
module renders them as terminal-friendly plots so the artifacts under
``benchmarks/out/`` are eyeballable without any plotting dependency.

Two primitives cover every figure in the paper:

* :func:`scatter` — Figures 1 and 5 (point clouds);
* :func:`step_lines` — Figures 4 and 6 (best-so-far trajectories, one
  glyph per series).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

__all__ = ["scatter", "step_lines"]

#: Glyphs assigned to successive series in multi-line plots.
_GLYPHS = "ox+*#@%&"


def _prepare_canvas(width: int, height: int) -> list[list[str]]:
    return [[" "] * width for _ in range(height)]


def _render(
    canvas: list[list[str]],
    title: str,
    x_label: str,
    y_label: str,
    x_range: tuple[float, float],
    y_range: tuple[float, float],
    legend: str = "",
) -> str:
    lines = [title]
    if legend:
        lines.append(legend)
    lines.append(f"{y_label}  [{y_range[0]:.4g} .. {y_range[1]:.4g}]")
    border = "+" + "-" * len(canvas[0]) + "+"
    lines.append(border)
    for row in canvas:
        lines.append("|" + "".join(row) + "|")
    lines.append(border)
    lines.append(f"{x_label}  [{x_range[0]:.4g} .. {x_range[1]:.4g}]")
    return "\n".join(lines)


def _scale(values: np.ndarray, low: float, high: float, cells: int) -> np.ndarray:
    span = high - low
    if span <= 0:
        return np.zeros(len(values), dtype=int)
    positions = (values - low) / span * (cells - 1)
    return np.clip(np.round(positions).astype(int), 0, cells - 1)


def scatter(
    x: Sequence[float],
    y: Sequence[float],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 64,
    height: int = 20,
    glyph: str = "o",
) -> str:
    """Render a point cloud (Figures 1 and 5)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError("x and y must have the same shape")
    if x.size == 0:
        raise ValueError("nothing to plot")
    if width < 2 or height < 2:
        raise ValueError("canvas too small")
    x_range = (float(np.min(x)), float(np.max(x)))
    y_range = (float(np.min(y)), float(np.max(y)))
    canvas = _prepare_canvas(width, height)
    columns = _scale(x, *x_range, width)
    rows = _scale(y, *y_range, height)
    for column, row in zip(columns, rows):
        canvas[height - 1 - row][column] = glyph
    return _render(canvas, title, x_label, y_label, x_range, y_range)


def step_lines(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    width: int = 64,
    height: int = 20,
) -> str:
    """Render best-so-far step trajectories (Figures 4 and 6).

    ``series`` maps a label to ``(x, y)`` arrays; each series draws with
    its own glyph, held constant between steps (a right-continuous step
    function, the natural shape for best-so-far curves).
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 2 or height < 2:
        raise ValueError("canvas too small")
    all_x = np.concatenate([np.asarray(x, dtype=float) for x, _ in series.values()])
    all_y = np.concatenate([np.asarray(y, dtype=float) for _, y in series.values()])
    if all_x.size == 0:
        raise ValueError("nothing to plot")
    x_range = (float(np.min(all_x)), float(np.max(all_x)))
    y_range = (float(np.min(all_y)), float(np.max(all_y)))
    canvas = _prepare_canvas(width, height)

    legend_parts = []
    for glyph, (label, (x, y)) in zip(_GLYPHS, series.items()):
        legend_parts.append(f"{glyph}={label}")
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.shape != y.shape:
            raise ValueError(f"series {label!r}: x and y must match")
        if x.size == 0:
            continue
        # Evaluate the step function at every column for a continuous look.
        span = x_range[1] - x_range[0]
        for column in range(width):
            t = x_range[0] + (span * column / max(1, width - 1))
            index = int(np.searchsorted(x, t, side="right")) - 1
            if index < 0:
                continue
            row = _scale(np.array([y[index]]), *y_range, height)[0]
            cell = canvas[height - 1 - row][column]
            canvas[height - 1 - row][column] = glyph if cell == " " else "*"
    legend = "legend: " + "  ".join(legend_parts)
    return _render(canvas, title, x_label, y_label, x_range, y_range, legend)
