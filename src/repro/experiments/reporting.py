"""Table rendering and summary statistics for the evaluation harnesses.

The paper reports per-method means with standard deviations (Table 2) and
"average speedup values ... computed as the geometric mean across all runs
per case" (Tables 3-5); these helpers implement that arithmetic plus plain
ASCII table rendering for the benchmark output.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = [
    "geometric_mean",
    "mean_std_text",
    "speedup_text",
    "hours_text",
    "render_table",
    "cache_text",
    "run_summary",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values; NaN for an empty input."""
    values = [float(v) for v in values]
    if not values:
        return math.nan
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(values))))


def mean_std_text(values: Sequence[float], scale: float = 1.0, unit: str = "%") -> str:
    """``'12.34% (0.56%)'``-style cell text; ``'--'`` for empty input."""
    values = [float(v) for v in values if not math.isnan(v)]
    if not values:
        return "--"
    mean = np.mean(values) * scale
    std = np.std(values) * scale
    return f"{mean:.2f}{unit} ({std:.2f}{unit})"


def speedup_text(ratios: Sequence[float]) -> str:
    """Geometric-mean speedup cell, ``'--'`` when no finite ratios exist."""
    finite = [r for r in ratios if math.isfinite(r) and r > 0]
    if not finite:
        return "--"
    return f"{geometric_mean(finite):.2f}x"


def hours_text(values: Sequence[float]) -> str:
    """Mean hours cell, ``'--'`` when empty or all-infinite.

    Sub-minute means get extra decimals so HyperPower's near-instant
    screening phases don't render as ``0.00``.
    """
    finite = [float(v) for v in values if math.isfinite(v)]
    if not finite:
        return "--"
    mean = float(np.mean(finite))
    if 0 < mean < 0.01:
        return f"{mean:.4f}"
    return f"{mean:.2f}"


def cache_text(run) -> str:
    """``'hits=3 misses=17 hit_rate=15.00%'`` cache cell for one run.

    Returns ``'--'`` when the run never consulted a trial cache (no
    lookups recorded), so the sequential paper protocol renders cleanly.
    """
    lookups = run.cache_hits + run.cache_misses
    if lookups == 0:
        return "--"
    rate = run.cache_hits / lookups
    return (
        f"hits={run.cache_hits} misses={run.cache_misses} "
        f"hit_rate={rate * 100:.2f}%"
    )


def run_summary(run) -> str:
    """Multi-line human-readable summary of one run.

    Includes the cache hit/miss counters whenever the run went through an
    :class:`~repro.core.parallel.EvaluationPool` with caching enabled.
    """
    lines = [
        f"method={run.method} variant={run.variant} "
        f"dataset={run.dataset} device={run.device}",
        f"trials={len(run.trials)} trained={run.n_trained} "
        f"cached={run.n_cached} violations={run.n_violations}",
        f"best_error={run.best_feasible_error * 100:.2f}% "
        f"wall_time={run.wall_time_s / 3600.0:.2f}h",
    ]
    cache = cache_text(run)
    if cache != "--":
        lines.append(f"cache: {cache}")
    return "\n".join(lines)


def render_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Render an ASCII table with right-padded columns."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {columns}"
            )
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows), 2)
        if rows
        else len(str(headers[i]))
        for i in range(columns)
    ]
    lines = [title]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).ljust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
