"""The paper's reported numbers, as data.

Tables 1-5 of the paper, transcribed so harnesses can print side-by-side
paper-vs-measured comparisons and tests can check that the reproduced
*shapes* (orderings, failure modes, rough factors) match.

Cell conventions follow the paper: ``None`` marks its '--' entries
(measurements that do not exist — no memory API on the Tegra TX1, runs
that never found a feasible solution).
"""

from __future__ import annotations

__all__ = [
    "PAIRS",
    "SOLVERS",
    "TABLE1_POWER_RMSPE",
    "TABLE1_MEMORY_RMSPE",
    "TABLE2_BEST_ERROR",
    "TABLE3_SPEEDUP",
    "TABLE4_DEFAULT_SAMPLES",
    "TABLE4_HYPERPOWER_SAMPLES",
    "TABLE4_INCREASE",
    "TABLE5_SPEEDUP",
    "FIG1_MAX_ISO_ERROR_SPREAD_W",
    "HEADLINES",
]

#: Column order used by every table below.
PAIRS = ("mnist-gtx1070", "cifar10-gtx1070", "mnist-tx1", "cifar10-tx1")
#: Row order used by Tables 2-5.
SOLVERS = ("Rand", "Rand-Walk", "HW-CWEI", "HW-IECI")

#: Table 1 — RMSPE (%) of the power model per pair.
TABLE1_POWER_RMSPE = {
    "mnist-gtx1070": 5.70,
    "cifar10-gtx1070": 5.98,
    "mnist-tx1": 6.62,
    "cifar10-tx1": 4.17,
}

#: Table 1 — RMSPE (%) of the memory model (None where unmeasurable).
TABLE1_MEMORY_RMSPE = {
    "mnist-gtx1070": 4.43,
    "cifar10-gtx1070": 4.67,
    "mnist-tx1": None,
    "cifar10-tx1": None,
}

#: Table 2 — mean best test error (%), as (default, hyperpower) per cell.
#: ``None`` reproduces the paper's '--' (all runs failed to find a
#: feasible solution).
TABLE2_BEST_ERROR = {
    "Rand": {
        "mnist-gtx1070": (60.59, 1.01),
        "cifar10-gtx1070": (69.60, 24.39),
        "mnist-tx1": (1.06, 0.97),
        "cifar10-tx1": (74.35, 24.09),
    },
    "Rand-Walk": {
        "mnist-gtx1070": (31.16, 0.84),
        "cifar10-gtx1070": (None, 22.88),
        "mnist-tx1": (1.04, 0.90),
        "cifar10-tx1": (None, 21.90),
    },
    "HW-CWEI": {
        "mnist-gtx1070": (0.97, 0.85),
        "cifar10-gtx1070": (22.09, 22.09),
        "mnist-tx1": (0.98, 0.91),
        "cifar10-tx1": (24.28, 22.99),
    },
    "HW-IECI": {
        "mnist-gtx1070": (0.81, 0.81),
        "cifar10-gtx1070": (22.35, 21.81),
        "mnist-tx1": (0.81, 0.79),
        "cifar10-tx1": (23.35, 21.95),
    },
}

#: Table 3 — speedup (x) for HyperPower to reach the default sample count.
TABLE3_SPEEDUP = {
    "Rand": {
        "mnist-gtx1070": 101.46, "cifar10-gtx1070": 30.31,
        "mnist-tx1": 4.31, "cifar10-tx1": 11.78,
    },
    "Rand-Walk": {
        "mnist-gtx1070": 112.99, "cifar10-gtx1070": 17.45,
        "mnist-tx1": 2.15, "cifar10-tx1": 21.00,
    },
    "HW-CWEI": {
        "mnist-gtx1070": 10.22, "cifar10-gtx1070": 2.07,
        "mnist-tx1": 1.65, "cifar10-tx1": 8.06,
    },
    "HW-IECI": {
        "mnist-gtx1070": 1.13, "cifar10-gtx1070": 1.74,
        "mnist-tx1": 1.22, "cifar10-tx1": 3.48,
    },
}

#: Table 4 — mean samples queried by the default variants.
TABLE4_DEFAULT_SAMPLES = {
    "Rand": {
        "mnist-gtx1070": 14.00, "cifar10-gtx1070": 14.67,
        "mnist-tx1": 13.00, "cifar10-tx1": 13.33,
    },
    "Rand-Walk": {
        "mnist-gtx1070": 15.00, "cifar10-gtx1070": 13.33,
        "mnist-tx1": 14.00, "cifar10-tx1": 14.33,
    },
    "HW-CWEI": {
        "mnist-gtx1070": 21.67, "cifar10-gtx1070": 28.00,
        "mnist-tx1": 11.00, "cifar10-tx1": 13.00,
    },
    "HW-IECI": {
        "mnist-gtx1070": 53.00, "cifar10-gtx1070": 29.00,
        "mnist-tx1": 46.33, "cifar10-tx1": 11.00,
    },
}

#: Table 4 — mean samples queried by the HyperPower variants.
TABLE4_HYPERPOWER_SAMPLES = {
    "Rand": {
        "mnist-gtx1070": 796.33, "cifar10-gtx1070": 405.33,
        "mnist-tx1": 35.67, "cifar10-tx1": 262.33,
    },
    "Rand-Walk": {
        "mnist-gtx1070": 316.67, "cifar10-gtx1070": 118.33,
        "mnist-tx1": 30.67, "cifar10-tx1": 88.67,
    },
    "HW-CWEI": {
        "mnist-gtx1070": 62.67, "cifar10-gtx1070": 38.67,
        "mnist-tx1": 14.67, "cifar10-tx1": 27.33,
    },
    "HW-IECI": {
        "mnist-gtx1070": 60.33, "cifar10-gtx1070": 43.33,
        "mnist-tx1": 54.67, "cifar10-tx1": 20.00,
    },
}

#: Table 4 — the increase factors (x).
TABLE4_INCREASE = {
    "Rand": {
        "mnist-gtx1070": 57.20, "cifar10-gtx1070": 27.88,
        "mnist-tx1": 2.77, "cifar10-tx1": 20.00,
    },
    "Rand-Walk": {
        "mnist-gtx1070": 19.16, "cifar10-gtx1070": 8.86,
        "mnist-tx1": 2.12, "cifar10-tx1": 5.46,
    },
    "HW-CWEI": {
        "mnist-gtx1070": 2.79, "cifar10-gtx1070": 1.38,
        "mnist-tx1": 1.35, "cifar10-tx1": 1.97,
    },
    "HW-IECI": {
        "mnist-gtx1070": 1.14, "cifar10-gtx1070": 1.49,
        "mnist-tx1": 1.18, "cifar10-tx1": 1.75,
    },
}

#: Table 5 — speedup (x) to reach the default's best accuracy.
#: ``None`` where the default never found a feasible solution.
TABLE5_SPEEDUP = {
    "Rand": {
        "mnist-gtx1070": 1.56, "cifar10-gtx1070": 3.97,
        "mnist-tx1": 3.64, "cifar10-tx1": 4.54,
    },
    "Rand-Walk": {
        "mnist-gtx1070": 4.72, "cifar10-gtx1070": None,
        "mnist-tx1": 6.18, "cifar10-tx1": None,
    },
    "HW-CWEI": {
        "mnist-gtx1070": 6.11, "cifar10-gtx1070": 2.08,
        "mnist-tx1": 7.39, "cifar10-tx1": 4.80,
    },
    "HW-IECI": {
        "mnist-gtx1070": 30.12, "cifar10-gtx1070": 2.13,
        "mnist-tx1": 11.30, "cifar10-tx1": 2.69,
    },
}

#: Figure 1 — maximum iso-error power spread the paper reports, W.
FIG1_MAX_ISO_ERROR_SPREAD_W = 55.01

#: The abstract's headline factors.
HEADLINES = {
    "max_speedup_to_sample_count": 112.99,   # Table 3
    "max_speedup_to_best_error": 30.12,      # Table 5
    "max_sample_increase": 57.20,            # Table 4
    "max_accuracy_improvement_pct": 67.6,    # Table 2 (Rand, CIFAR-10/TX1)
    "model_rmspe_bound_pct": 7.0,            # Table 1
}
