"""Figures 1 and 3: the observations motivating HyperPower.

* **Figure 1** — test error vs GPU power for random CIFAR-10 AlexNet
  variants on the GTX 1070: "for a given accuracy level, power could
  differ significantly by up to 55.01W".  We regenerate the scatter and
  the iso-error power spread.
* **Figure 3 (left)** — power is insensitive to how long the network has
  been trained (MNIST on the Tegra TX1): the insight that makes power an
  a-priori constraint.
* **Figure 3 (right)** — diverging configurations are identifiable after a
  few epochs: converging runs drop below 10% error almost immediately,
  diverging runs never leave chance level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hwsim.devices import GTX_1070, TEGRA_TX1
from ..hwsim.profiler import HardwareProfiler
from ..nn.builder import build_network
from ..space.presets import cifar10_space, mnist_space
from ..trainsim.dataset import CIFAR10, MNIST
from ..trainsim.dynamics import LearningCurveModel
from ..trainsim.surface import ErrorSurface

__all__ = [
    "Figure1Data",
    "run_figure1",
    "Figure3Data",
    "run_figure3",
    "IntroComparison",
    "run_intro_comparison",
]

#: World seed shared with the optimization experiments.
_SURFACE_SEED = 2018


@dataclass(frozen=True)
class Figure1Data:
    """Error-vs-power scatter of trained CIFAR-10 variants (GTX 1070)."""

    #: Final test error of each (converging) variant.
    errors: np.ndarray
    #: Measured inference power of each variant, W.
    power_w: np.ndarray

    def iso_error_power_spread(self, band_width: float = 0.01) -> float:
        """Largest power spread among variants within one error band, W.

        The paper's headline: "power could differ significantly by up to
        55.01W" at a given accuracy level.
        """
        if self.errors.size == 0:
            return 0.0
        spread = 0.0
        lows = np.arange(
            float(np.min(self.errors)), float(np.max(self.errors)), band_width
        )
        for low in lows:
            mask = (self.errors >= low) & (self.errors < low + band_width)
            if mask.sum() >= 2:
                band = self.power_w[mask]
                spread = max(spread, float(np.max(band) - np.min(band)))
        return spread


def run_figure1(
    n_samples: int = 200,
    seed: int = 0,
    max_error: float = 0.5,
) -> Figure1Data:
    """Train random CIFAR-10 variants and measure their power (Figure 1).

    Diverged / near-chance variants (error above ``max_error``) are dropped
    as the paper's scatter only shows trained, usable networks.
    """
    space = cifar10_space()
    surface = ErrorSurface(CIFAR10, seed=_SURFACE_SEED)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xF161]))
    profiler = HardwareProfiler(GTX_1070, rng)

    errors, powers = [], []
    for config in space.sample_many(n_samples, rng):
        evaluation = surface.evaluate(config)
        if evaluation.diverges or evaluation.final_error > max_error:
            continue
        network = build_network("cifar10", config)
        measurement = profiler.profile(network)
        errors.append(evaluation.final_error)
        powers.append(measurement.power_w)
    return Figure1Data(
        errors=np.asarray(errors), power_w=np.asarray(powers)
    )


@dataclass(frozen=True)
class IntroComparison:
    """The introduction's motivating example, regenerated.

    "hardware-aware hyper-parameter optimization ... can find an iso-error
    NN with power savings of 12.12W compared to AlexNet, or an iso-power
    NN with error decreased to 21.16 from 24.74%."
    """

    #: The reference (hand-picked) configuration's error and power.
    baseline_error: float
    baseline_power_w: float
    #: Best power found at no worse error than the baseline.
    iso_error_power_w: float
    #: Best error found at no higher power than the baseline.
    iso_power_error: float

    @property
    def power_savings_w(self) -> float:
        """Watts saved at iso-error."""
        return self.baseline_power_w - self.iso_error_power_w

    @property
    def error_reduction(self) -> float:
        """Error-points gained at iso-power."""
        return self.baseline_error - self.iso_power_error


def run_intro_comparison(
    n_samples: int = 300,
    seed: int = 0,
) -> IntroComparison:
    """Regenerate the intro's iso-error / iso-power comparison.

    The baseline plays the hand-designed AlexNet: a mid-range CIFAR-10
    configuration with textbook solver settings.  The "hardware-aware
    optimization" side is approximated by the best of ``n_samples`` random
    variants — the point is the *existence* of dominating configurations,
    which is what motivates the whole framework.
    """
    space = cifar10_space()
    surface = ErrorSurface(CIFAR10, seed=_SURFACE_SEED)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0x1270]))
    profiler = HardwareProfiler(GTX_1070, rng)

    baseline_config = {
        "conv1_features": 64, "conv1_kernel": 5, "pool1_kernel": 3,
        "conv2_features": 64, "conv2_kernel": 5, "pool2_kernel": 3,
        "conv3_features": 64, "conv3_kernel": 5, "pool3_kernel": 3,
        "fc1_units": 384,
        "learning_rate": 0.01, "momentum": 0.9, "weight_decay": 0.004,
    }
    baseline_error = surface.evaluate(baseline_config).final_error
    baseline_power = profiler.profile(
        build_network("cifar10", baseline_config)
    ).power_w

    iso_error_power = baseline_power
    iso_power_error = baseline_error
    for config in space.sample_many(n_samples, rng):
        evaluation = surface.evaluate(config)
        if evaluation.diverges:
            continue
        power = profiler.profile(build_network("cifar10", config)).power_w
        if evaluation.final_error <= baseline_error and power < iso_error_power:
            iso_error_power = power
        if power <= baseline_power and evaluation.final_error < iso_power_error:
            iso_power_error = evaluation.final_error
    return IntroComparison(
        baseline_error=baseline_error,
        baseline_power_w=baseline_power,
        iso_error_power_w=iso_error_power,
        iso_power_error=iso_power_error,
    )


@dataclass(frozen=True)
class Figure3Data:
    """Power-vs-epochs and error-vs-epochs series (MNIST on Tegra TX1)."""

    #: Epoch checkpoints at which power was measured.
    epochs: np.ndarray
    #: ``(n_configs, n_epochs)`` measured power at each checkpoint, W.
    power_w: np.ndarray
    #: ``(n_converging, n_epochs)`` error curves of converging configs.
    converging_curves: np.ndarray
    #: ``(n_diverging, n_epochs)`` error curves of diverging configs.
    diverging_curves: np.ndarray

    @property
    def power_epoch_sensitivity(self) -> float:
        """Largest per-config relative power range across epochs.

        Small values back the paper's claim that "NN power values ... do
        not heavily change even if the NN is trained for more iterations".
        """
        per_config = (
            self.power_w.max(axis=1) - self.power_w.min(axis=1)
        ) / self.power_w.mean(axis=1)
        return float(np.max(per_config))


def run_figure3(
    n_configs: int = 6,
    n_epochs: int = 12,
    seed: int = 0,
) -> Figure3Data:
    """Regenerate Figure 3's two panels (MNIST on the Tegra TX1)."""
    space = mnist_space()
    surface = ErrorSurface(MNIST, seed=_SURFACE_SEED)
    curve_model = LearningCurveModel(MNIST)
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xF163]))
    profiler = HardwareProfiler(TEGRA_TX1, rng)

    epochs = np.arange(1, n_epochs + 1)

    # Left panel: re-measure the same deployed networks after each epoch of
    # training — power only moves by sensor noise.
    power_rows = []
    for config in space.sample_many(n_configs, rng):
        network = build_network("mnist", config)
        row = [profiler.profile(network).power_w for _ in epochs]
        power_rows.append(row)

    # Right panel: error curves for converging vs diverging configurations.
    converging, diverging = [], []
    attempts = 0
    while (len(converging) < n_configs or len(diverging) < n_configs) and (
        attempts < 300
    ):
        attempts += 1
        config = space.sample(rng)
        evaluation = surface.evaluate(config)
        curve = curve_model.curve(evaluation, n_epochs, rng)
        if evaluation.diverges and len(diverging) < n_configs:
            diverging.append(curve)
        elif not evaluation.diverges and len(converging) < n_configs:
            converging.append(curve)

    return Figure3Data(
        epochs=epochs,
        power_w=np.asarray(power_rows),
        converging_curves=np.asarray(converging),
        diverging_curves=np.asarray(diverging),
    )
