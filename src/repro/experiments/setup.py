"""Experiment wiring: the paper's four device-dataset pairs (Section 4-5).

An :class:`ExperimentSetup` assembles everything one benchmark-platform
pair needs — design space, error surface, training simulator (always on
the GTX 1070 server host: the paper trains on the host and deploys/measures
on the target), target-platform profiler, and the offline-fitted predictive
models — and can then spin up independent optimization runs.

The offline profiling campaign and model fitting happen once per setup and
are *not* charged to any run's clock, matching the paper where the models
are trained before hyper-parameter optimization starts.

:data:`PAPER_PAIRS` records the Section 5 constants: power budgets of
85/90 W (GTX 1070) and 10/12 W (Tegra TX1), memory budgets of 1.15/1.25 GB
(GTX only — "Tegra does not support NVML API for memory measurements"),
wall-clock budgets of two hours (MNIST) and five hours (CIFAR-10), and the
fixed-evaluation budgets of 30/50 iterations.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from ..core.clock import DEFAULT_COST_MODEL, CostModel, SimClock
from ..core.constraints import GIB, ConstraintSpec
from ..core.early_term import EarlyTermination
from ..core.faults import FaultInjector, FaultRates, RetryPolicy
from ..core.fidelity import FidelitySchedule
from ..core.hyperpower import HyperPower, build_method
from ..core.objective import NNObjective
from ..core.parallel import EvaluationPool, TrialCache
from ..core.result import RunResult
from ..hwsim.devices import GTX_1070, get_device
from ..hwsim.profiler import HardwareProfiler
from ..models.hw_models import fit_hardware_models
from ..models.profiling import run_profiling_campaign
from ..space.presets import cifar10_space, imagenet_space, mnist_space
from ..trainsim.dataset import get_dataset
from ..trainsim.surface import ErrorSurface
from ..trainsim.trainer import TrainingSimulator

__all__ = ["PairSpec", "PAPER_PAIRS", "ExperimentSetup", "quick_setup", "paper_setup"]

#: Seed of the shared "world" (error surface) — identical across methods so
#: every method optimizes the same ground truth.
_SURFACE_SEED = 2018


@dataclass(frozen=True)
class PairSpec:
    """Section 5 constants for one device-dataset pair."""

    dataset: str
    device_key: str
    power_budget_w: float
    memory_budget_gib: float | None
    time_budget_hours: float
    fixed_eval_iterations: int
    fixed_eval_power_w: float

    @property
    def constraint_spec(self) -> ConstraintSpec:
        """The fixed-runtime constraints of this pair."""
        memory = (
            None
            if self.memory_budget_gib is None
            else self.memory_budget_gib * GIB
        )
        return ConstraintSpec(
            power_budget_w=self.power_budget_w, memory_budget_bytes=memory
        )

    @property
    def fixed_eval_constraint_spec(self) -> ConstraintSpec:
        """The fixed-evaluation (Figure 4) power-only constraints."""
        return ConstraintSpec(power_budget_w=self.fixed_eval_power_w)

    @property
    def time_budget_s(self) -> float:
        """Wall-clock budget, seconds."""
        return self.time_budget_hours * 3600.0

    @property
    def key(self) -> str:
        """Stable identifier, e.g. ``'mnist-gtx1070'``."""
        return f"{self.dataset}-{self.device_key}"


#: Section 5: "85W and 1.15 for MNIST on GTX 1070, 90W and 1.25GB for
#: CIFAR-10 on GTX 1070, 10W for MNIST on Tegra TX1, and 12W for CIFAR-10
#: on Tegra TX1 (no memory constraints on Tegra)"; runtime budgets of two
#: and five hours; fixed-eval budgets of 30 (MNIST) and 50 (CIFAR-10)
#: iterations with power constraints of 90W and 85W respectively.
#: Note on the fixed-evaluation power levels: Section 5's fixed-evaluation
#: paragraph reads "power constraints of 90W and 85W" for MNIST and
#: CIFAR-10.  In our calibrated simulator the 85 W level lies below what
#: the CIFAR-10 linear power model can resolve (its predictions bottom out
#: around 84 W), so the Figure 4 harness reuses the 90 W budget of the
#: fixed-runtime protocol for CIFAR-10; see EXPERIMENTS.md.
PAPER_PAIRS = {
    "mnist-gtx1070": PairSpec("mnist", "gtx1070", 85.0, 1.15, 2.0, 30, 90.0),
    "cifar10-gtx1070": PairSpec("cifar10", "gtx1070", 90.0, 1.25, 5.0, 50, 90.0),
    "mnist-tx1": PairSpec("mnist", "tx1", 10.0, None, 2.0, 30, 10.0),
    "cifar10-tx1": PairSpec("cifar10", "tx1", 12.0, None, 5.0, 50, 12.0),
}

_SPACES = {
    "mnist": mnist_space,
    "cifar10": cifar10_space,
    "imagenet": imagenet_space,
}


class ExperimentSetup:
    """One benchmark-platform pair, ready to run method variants."""

    def __init__(
        self,
        dataset_name: str,
        device_key: str,
        constraint_spec: ConstraintSpec,
        seed: int = 0,
        profiling_samples: int = 100,
        fit_intercept: bool = True,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        early_termination: EarlyTermination | None = None,
    ):
        if dataset_name not in _SPACES:
            raise ValueError(
                f"unknown dataset {dataset_name!r}; expected one of "
                f"{sorted(_SPACES)}"
            )
        self.dataset_name = dataset_name
        self.device_key = device_key
        self.spec = constraint_spec
        self.seed = int(seed)
        self.cost_model = cost_model
        #: Divergence-detection policy handed to every objective this setup
        #: builds.  ``None`` keeps the MNIST-tuned default (check_epoch=3);
        #: slow-converging benchmarks (ImageNet, tau 10-40 epochs) need a
        #: later check or every healthy run looks stuck at chance.
        self.early_termination = early_termination

        self.space = _SPACES[dataset_name]()
        self.dataset = get_dataset(dataset_name)
        self.surface = ErrorSurface(self.dataset, seed=_SURFACE_SEED)
        self.target_device = get_device(device_key)
        #: Training always happens on the server host (paper Section 4).
        self.train_device = GTX_1070

        # Offline profiling campaign + predictive-model fit (Section 3.3).
        campaign_rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 1])
        )
        campaign_profiler = HardwareProfiler(self.target_device, campaign_rng)
        # I.i.d. random sampling, as in the paper.  (Latin-hypercube
        # sampling is available via run_profiling_campaign(method="lhs") and
        # raises the models' usable low-tail pass rate on MNIST, but the
        # acquisition maximiser then exploits a CIFAR-10 corner the
        # LHS-fitted model under-predicts — see
        # benchmarks/bench_ablation_profiling.py for the comparison.)
        self.profiling_data = run_profiling_campaign(
            self.space,
            dataset_name,
            campaign_profiler,
            profiling_samples,
            campaign_rng,
        )
        self.power_model, self.memory_model = fit_hardware_models(
            self.space,
            self.profiling_data,
            rng=np.random.default_rng(np.random.SeedSequence([self.seed, 2])),
            fit_intercept=fit_intercept,
        )

    # -- per-run factories -----------------------------------------------------------

    def new_objective(self, run_seed: int) -> NNObjective:
        """A fresh objective (own clock, own noise streams) for one run."""
        seq = np.random.SeedSequence([self.seed, 3, int(run_seed)])
        rng_train, rng_profile = [
            np.random.default_rng(s) for s in seq.spawn(2)
        ]
        trainer = TrainingSimulator(
            self.dataset, self.surface, self.train_device
        )
        profiler = HardwareProfiler(self.target_device, rng_profile)
        return NNObjective(
            space=self.space,
            trainer=trainer,
            profiler=profiler,
            spec=self.spec,
            clock=SimClock(),
            rng=rng_train,
            early_termination=self.early_termination,
        )

    def open_study(
        self,
        solver: str,
        variant: str,
        run_seed: int = 0,
        telemetry=None,
        **method_kwargs,
    ):
        """An open ask/tell study seeded exactly like :meth:`run`.

        Builds the same method, objective, driver and proposal RNG a
        ``run(solver, variant, run_seed)`` call would (same decorrelation
        tag, same seed words), then hands back the driver's
        :meth:`~repro.core.hyperpower.HyperPower.open_study` — so a caller
        driving ``suggest``/``evaluate_and_observe`` in the sequential
        pattern reproduces the closed loop byte for byte.
        """
        import zlib

        method = build_method(
            solver,
            variant,
            self.space,
            self.spec,
            power_model=self.power_model,
            memory_model=self.memory_model,
            **method_kwargs,
        )
        tag = zlib.crc32(f"{solver}/{variant}".encode("utf-8"))
        objective = self.new_objective(int(run_seed) * 0x10000 + (tag & 0xFFFF))
        driver = HyperPower(
            objective, method, variant, self.cost_model, telemetry=telemetry
        )
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 4, int(run_seed), tag])
        )
        return driver.open_study(rng)

    def run(
        self,
        solver: str,
        variant: str,
        run_seed: int = 0,
        max_evaluations: int | None = None,
        max_time_s: float | None = None,
        backend: str | None = None,
        workers: int = 1,
        use_cache: bool = True,
        cache: TrialCache | None = None,
        faults: FaultRates | None = None,
        fault_seed: int | None = None,
        retry: RetryPolicy | None = None,
        journal: str | Path | None = None,
        resume_from: str | Path | None = None,
        telemetry=None,
        scheduler: str = "sync",
        rungs: int = 0,
        eta: int = 3,
        min_epochs: int = 1,
        brackets: int = 1,
        scatter_init: int = 0,
        **method_kwargs,
    ) -> RunResult:
        """Build and run one method variant under the given budget.

        ``backend`` (``'serial'``/``'thread'``/``'process'``) routes
        evaluations through a :class:`~repro.core.parallel.EvaluationPool`
        with ``workers`` concurrent trainings and (unless ``use_cache`` is
        False) a trial cache; the three backends are seeded identically,
        so they yield the same :class:`~repro.core.result.RunResult`.
        ``backend=None`` runs the paper's sequential loop.

        Pass ``cache`` to share one :class:`TrialCache` across several runs
        (warm-cache replay: because runs are deterministic, re-running the
        same seeded configuration against a populated cache replays every
        training at lookup cost).  The counters copied into the result are
        this run's lookups only, not the shared cache's lifetime totals.

        ``faults`` switches on deterministic fault injection (pool path
        only): each evaluation attempt may crash, hang, NaN, OOM or lose
        its hardware measurement at the given per-attempt rates, governed
        by ``retry`` (timeouts, attempt budget, backoff — defaults to
        :class:`~repro.core.faults.RetryPolicy`).  The injection stream is
        seeded by ``fault_seed`` (derived from the setup/run seeds when
        None), so failures are reproducible across backends and resumes.

        ``journal`` writes a crash-safe JSONL journal of the run (see
        :class:`~repro.io.RunJournal`); ``resume_from`` replays one left
        behind by an interrupted run and continues it bit-identically
        (the journal's recorded parameters must match this call's).  When
        resuming without an explicit ``journal``, new rounds are appended
        to the resumed journal itself.

        ``telemetry`` (a :class:`~repro.telemetry.Telemetry` bundle)
        switches on span tracing and run metrics; tracing never touches
        the clock or any RNG stream, so the result is byte-identical to
        an untraced run (modulo ``RunResult.telemetry`` itself).

        ``scheduler="async"`` (pool path only) replaces the round-barrier
        loop with the event-driven scheduler: workers are refilled the
        moment a trial completes and proposals condition on the in-flight
        set — see :meth:`~repro.core.hyperpower.HyperPower.run`.  The BO
        solvers' constant-liar strategy is selected with the
        ``fantasy`` method kwarg (``"cl-min"``/``"cl-mean"``/``"none"``).

        The surrogate tier of the BO solvers is selected with the
        ``surrogate`` method kwarg (``"exact"``/``"rff"``/``"nystrom"``/
        ``"auto"``, with ``surrogate_features`` and
        ``surrogate_switch_at`` sizing the sparse tiers) — see
        :func:`~repro.core.hyperpower.build_method`; the default
        ``"exact"`` reproduces the seed trajectories byte-for-byte.

        ``rungs > 0`` switches on multi-fidelity scheduling (async pool
        path only): trials train to a geometric ladder of ``rungs``
        cumulative epoch budgets starting at ``min_epochs`` and capped at
        the dataset's full schedule, pausing at each rung until enough
        peers arrive, with only the top ``1/eta`` promoted to the next
        rung (see :class:`~repro.core.fidelity.FidelitySchedule`).
        ``brackets > 1`` runs Hyperband-style brackets round-robin, and
        ``scatter_init`` widens both the rung-0 cell and the BO solvers'
        random initial design (cheap low-fidelity screening before the GP
        takes over).  ``rungs=0`` (the default) keeps the classic
        full-fidelity paths byte-identical.
        """
        if rungs < 0:
            raise ValueError("rungs must be >= 0")
        if rungs > 0 and (backend is None or scheduler != "async"):
            raise ValueError(
                "multi-fidelity rungs require the asynchronous pool path "
                "(pass scheduler='async' and a backend)"
            )
        if scatter_init:
            method_kwargs = dict(method_kwargs, scatter_init=scatter_init)
        fidelity = None
        if rungs > 0:
            fidelity = FidelitySchedule.geometric(
                self.dataset.default_epochs,
                min_epochs=min_epochs,
                eta=eta,
                num_rungs=rungs,
                scatter_init=scatter_init or None,
                brackets=brackets,
            )
        method = build_method(
            solver,
            variant,
            self.space,
            self.spec,
            power_model=self.power_model,
            memory_model=self.memory_model,
            **method_kwargs,
        )
        # Decorrelate streams across method variants, or every method would
        # see the exact same random proposals.
        import zlib

        tag = zlib.crc32(f"{solver}/{variant}".encode("utf-8"))
        objective = self.new_objective(int(run_seed) * 0x10000 + (tag & 0xFFFF))
        if faults is not None and backend is None:
            raise ValueError(
                "fault injection requires a pool backend (the sequential "
                "paper loop has no retry machinery)"
            )
        if scheduler == "async" and backend is None:
            raise ValueError(
                "the asynchronous scheduler requires a pool backend "
                "(pass backend='serial'/'thread'/'process')"
            )
        if fault_seed is None:
            fault_seed = int(
                np.random.SeedSequence(
                    [self.seed, 6, int(run_seed), tag]
                ).generate_state(1)[0]
            )
        pool = None
        if backend is not None:
            pool_seed = int(
                np.random.SeedSequence(
                    [self.seed, 5, int(run_seed), tag]
                ).generate_state(1)[0]
            )
            if cache is None and use_cache:
                cache = TrialCache()
            pool = EvaluationPool(
                objective,
                backend=backend,
                workers=workers,
                cache=cache,
                seed=pool_seed,
                injector=(
                    None
                    if faults is None
                    else FaultInjector(faults, seed=fault_seed)
                ),
                retry=retry,
            )
        driver = HyperPower(
            objective,
            method,
            variant,
            self.cost_model,
            pool=pool,
            telemetry=telemetry,
        )
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, 4, int(run_seed), tag])
        )
        run_journal, replay = self._journal_and_replay(
            journal,
            resume_from,
            meta={
                "setup_seed": self.seed,
                "dataset": self.dataset_name,
                "device": self.device_key,
                "solver": solver,
                "variant": variant,
                "run_seed": int(run_seed),
                "max_evaluations": max_evaluations,
                "max_time_s": max_time_s,
                "backend": backend,
                "workers": int(workers),
                "faults": None if faults is None else asdict(faults),
                "fault_seed": None if faults is None else fault_seed,
                "retry": asdict(RetryPolicy() if retry is None else retry),
                "scheduler": scheduler,
                **(
                    {}
                    if fidelity is None
                    else {
                        "fidelity": {
                            "rungs": list(fidelity.rungs),
                            "eta": fidelity.eta,
                            "n0": fidelity.n0,
                            "brackets": fidelity.brackets,
                        }
                    }
                ),
            },
        )
        try:
            return driver.run(
                rng,
                max_evaluations=max_evaluations,
                max_time_s=max_time_s,
                journal=run_journal,
                replay=replay,
                scheduler=scheduler,
                fidelity=fidelity,
            )
        finally:
            if run_journal is not None:
                run_journal.close()
            if pool is not None:
                pool.close()

    @staticmethod
    def _journal_and_replay(journal, resume_from, meta):
        """Open the journal writer and/or replay for one run.

        Imported lazily: :mod:`repro.io` is only needed when journaling is
        actually requested.
        """
        if journal is None and resume_from is None:
            return None, None
        from ..io import JournalReplay, RunJournal

        replay = None
        if resume_from is not None:
            replay = JournalReplay.load(resume_from)
            if replay.meta != meta:
                raise ValueError(
                    "cannot resume: the journal was written under different "
                    f"run parameters ({replay.meta!r} != {meta!r})"
                )
        if journal is None:
            run_journal = RunJournal.reopen(resume_from)
        elif (
            resume_from is not None
            and Path(journal).resolve() == Path(resume_from).resolve()
        ):
            run_journal = RunJournal.reopen(journal)
        else:
            run_journal = RunJournal(journal, meta=meta)
        return run_journal, replay


def quick_setup(
    dataset: str,
    device: str,
    power_budget_w: float | None = None,
    memory_budget_gb: float | None = None,
    seed: int = 0,
    profiling_samples: int = 100,
    early_termination: EarlyTermination | None = None,
) -> ExperimentSetup:
    """Convenience constructor with budgets in natural units."""
    spec = ConstraintSpec(
        power_budget_w=power_budget_w,
        memory_budget_bytes=(
            None if memory_budget_gb is None else memory_budget_gb * GIB
        ),
    )
    return ExperimentSetup(
        dataset,
        device,
        spec,
        seed=seed,
        profiling_samples=profiling_samples,
        early_termination=early_termination,
    )


def paper_setup(
    pair_key: str,
    seed: int = 0,
    fixed_eval: bool = False,
    profiling_samples: int = 100,
) -> tuple[ExperimentSetup, PairSpec]:
    """An :class:`ExperimentSetup` with the paper's budgets for one pair.

    ``fixed_eval=True`` selects the Figure 4 power-only constraints instead
    of the fixed-runtime ones.
    """
    try:
        pair = PAPER_PAIRS[pair_key]
    except KeyError:
        raise ValueError(
            f"unknown pair {pair_key!r}; expected one of "
            f"{sorted(PAPER_PAIRS)}"
        ) from None
    spec = pair.fixed_eval_constraint_spec if fixed_eval else pair.constraint_spec
    setup = ExperimentSetup(
        pair.dataset,
        pair.device_key,
        spec,
        seed=seed,
        profiling_samples=profiling_samples,
    )
    return setup, pair
