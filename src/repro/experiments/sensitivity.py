"""Which hyper-parameter drives power? — a model-based sensitivity report.

The paper motivates HyperPower with the observation that exploiting the
hardware-constrained design space "necessitat[es] a significant, yet often
unavailable, familiarity of the researcher with the hardware architecture".
The fitted linear models make that familiarity explicit: each structural
hyper-parameter's weight times its range is the watts (or bytes) it can
swing across the design space.  This module turns a fitted
:class:`~repro.models.hw_models.HardwareModel` into that ranked report.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.hw_models import HardwareModel
from ..space.params import IntegerParameter
from .reporting import render_table

__all__ = ["ParameterSensitivity", "sensitivity_report", "format_sensitivity"]


@dataclass(frozen=True)
class ParameterSensitivity:
    """One structural hyper-parameter's leverage on a hardware quantity."""

    #: Hyper-parameter name.
    name: str
    #: Fitted weight (quantity units per parameter unit).
    weight: float
    #: Width of the parameter's range, in its native units.
    range_width: float

    @property
    def swing(self) -> float:
        """Quantity change across the full range (weight x width)."""
        return self.weight * self.range_width


def sensitivity_report(model: HardwareModel) -> list[ParameterSensitivity]:
    """Per-parameter swings, sorted by absolute magnitude (largest first)."""
    if not model.is_fitted:
        raise ValueError("model must be fitted")
    rows = []
    for name, weight in zip(model.space.structural_names, model.weights_):
        parameter = model.space[name]
        if isinstance(parameter, IntegerParameter):
            width = float(parameter.high - parameter.low)
        else:  # pragma: no cover - structural params are integer in practice
            width = float(parameter.high - parameter.low)
        rows.append(
            ParameterSensitivity(name=name, weight=float(weight), range_width=width)
        )
    return sorted(rows, key=lambda r: abs(r.swing), reverse=True)


def format_sensitivity(
    model: HardwareModel, unit_scale: float = 1.0, unit_label: str | None = None
) -> str:
    """Render the ranked sensitivity table.

    ``unit_scale``/``unit_label`` re-express the quantity (e.g. pass
    ``1 / 2**20, "MiB"`` for a memory model fitted in bytes).
    """
    label = unit_label if unit_label is not None else model.unit
    rows = [
        [
            entry.name,
            f"{entry.weight * unit_scale:+.4f}",
            f"{entry.range_width:.0f}",
            f"{entry.swing * unit_scale:+.2f} {label}",
        ]
        for entry in sensitivity_report(model)
    ]
    return render_table(
        f"{model.quantity.capitalize()}-model sensitivity "
        f"(swing = weight x range width)",
        ["Hyper-parameter", f"Weight ({label}/unit)", "Range", "Full-range swing"],
        rows,
    )
