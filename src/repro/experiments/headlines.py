"""The abstract's headline factors, computed from a runtime study.

The paper's abstract distils its evaluation into four numbers: the maximum
speedups to reach a default method's sample count (112.99x) and best error
(30.12x), the maximum increase in queried samples (57.20x), and the
maximum accuracy improvement (67.6%).  This module extracts the same
factors from a :class:`~repro.experiments.fixed_runtime.RuntimeStudy` and
renders them next to the paper's values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from . import paper_values
from .fixed_runtime import RuntimeStudy
from .reporting import geometric_mean, render_table

__all__ = ["Headlines", "compute_headlines", "format_headlines"]


@dataclass(frozen=True)
class Headlines:
    """The four abstract factors, measured."""

    #: Max geometric-mean speedup to reach the default's sample count.
    max_speedup_to_sample_count: float
    #: Max geometric-mean speedup to reach the default's best error.
    max_speedup_to_best_error: float
    #: Max increase in queried samples within the budget.
    max_sample_increase: float
    #: Max relative accuracy improvement over the default, %.
    max_accuracy_improvement_pct: float


def _cell_ratios(study: RuntimeStudy, pair: str, solver: str, metric) -> list[float]:
    ratios = []
    for default_run, hyper_run in zip(
        study.cell(pair, solver, "default"),
        study.cell(pair, solver, "hyperpower"),
    ):
        value = metric(default_run, hyper_run)
        if value is not None and math.isfinite(value) and value > 0:
            ratios.append(value)
    return ratios


def compute_headlines(study: RuntimeStudy) -> Headlines:
    """Extract the abstract's four factors from a runtime study."""

    def time_to_samples(default_run, hyper_run):
        t = hyper_run.time_to_reach_samples(default_run.n_samples)
        if not math.isfinite(t) or t <= 0:
            return None
        return default_run.wall_time_s / t

    def time_to_error(default_run, hyper_run):
        if not default_run.found_feasible:
            return None
        target = default_run.best_feasible_error
        d = default_run.time_to_reach_error(target)
        h = hyper_run.time_to_reach_error(target)
        if not (math.isfinite(d) and math.isfinite(h)) or h <= 0:
            return None
        return d / h

    def sample_increase(default_run, hyper_run):
        if default_run.n_samples == 0:
            return None
        return hyper_run.n_samples / default_run.n_samples

    speedup_samples, speedup_error, increase, accuracy = [], [], [], []
    for pair in study.pair_keys:
        for solver in study.solvers:
            for metric, bucket in (
                (time_to_samples, speedup_samples),
                (time_to_error, speedup_error),
                (sample_increase, increase),
            ):
                ratios = _cell_ratios(study, pair, solver, metric)
                if ratios:
                    bucket.append(geometric_mean(ratios))
            default_error = np.mean(
                [r.best_feasible_error for r in study.cell(pair, solver, "default")]
            )
            hyper_error = np.mean(
                [
                    r.best_feasible_error
                    for r in study.cell(pair, solver, "hyperpower")
                ]
            )
            if default_error > 0:
                accuracy.append(
                    (default_error - hyper_error) / default_error * 100.0
                )

    return Headlines(
        max_speedup_to_sample_count=max(speedup_samples, default=math.nan),
        max_speedup_to_best_error=max(speedup_error, default=math.nan),
        max_sample_increase=max(increase, default=math.nan),
        max_accuracy_improvement_pct=max(accuracy, default=math.nan),
    )


def format_headlines(headlines: Headlines) -> str:
    """Render the measured factors next to the paper's."""
    paper = paper_values.HEADLINES
    rows = [
        [
            "speedup to default's sample count",
            f"{paper['max_speedup_to_sample_count']:.2f}x",
            f"{headlines.max_speedup_to_sample_count:.2f}x",
        ],
        [
            "speedup to default's best error",
            f"{paper['max_speedup_to_best_error']:.2f}x",
            f"{headlines.max_speedup_to_best_error:.2f}x",
        ],
        [
            "increase in queried samples",
            f"{paper['max_sample_increase']:.2f}x",
            f"{headlines.max_sample_increase:.2f}x",
        ],
        [
            "accuracy improvement",
            f"{paper['max_accuracy_improvement_pct']:.1f}%",
            f"{headlines.max_accuracy_improvement_pct:.1f}%",
        ],
    ]
    return render_table(
        "Headline factors (maximum over methods and pairs)",
        ["Factor", "Paper", "Measured"],
        rows,
    )
