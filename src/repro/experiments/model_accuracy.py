"""Table 1 + Figure 5: accuracy of the power and memory models.

For each device-dataset pair, run the offline profiling campaign of
Section 3.3, fit the linear models with 10-fold cross-validation, and
report the pooled out-of-fold RMSPE (Table 1) plus the actual-vs-predicted
scatter series (Figure 5).  The Tegra TX1 rows have no memory entry —
``tegrastats`` exposes no memory-consumption counter (footnote 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hwsim.devices import get_device
from ..hwsim.profiler import HardwareProfiler
from ..models.crossval import cross_validate, rmspe
from ..models.linear import LinearModel
from ..models.profiling import ProfilingDataset, run_profiling_campaign
from ..space.presets import cifar10_space, mnist_space
from .reporting import render_table
from .setup import PAPER_PAIRS

__all__ = [
    "PairModelAccuracy",
    "ModelAccuracyStudy",
    "run_model_accuracy",
    "format_table1",
    "figure5_series",
]

_SPACES = {"mnist": mnist_space, "cifar10": cifar10_space}


@dataclass(frozen=True)
class PairModelAccuracy:
    """Cross-validated model accuracy for one device-dataset pair."""

    pair_key: str
    dataset: str
    device_name: str
    #: Pooled 10-fold out-of-fold RMSPE of the power model, %.
    power_rmspe: float
    #: Same for the memory model; ``None`` on platforms without memory API.
    memory_rmspe: float | None
    #: Measured power values, W (Figure 5 x-axis).
    power_actual: np.ndarray
    #: Out-of-fold predicted power values, W (Figure 5 y-axis).
    power_predicted: np.ndarray
    #: The underlying profiling campaign.
    profiled: ProfilingDataset


@dataclass(frozen=True)
class ModelAccuracyStudy:
    """Table 1 / Figure 5 data for all pairs."""

    pairs: dict[str, PairModelAccuracy]

    @property
    def max_rmspe(self) -> float:
        """Worst RMSPE across all models — the paper's '< 7%' claim."""
        worst = 0.0
        for pair in self.pairs.values():
            worst = max(worst, pair.power_rmspe)
            if pair.memory_rmspe is not None:
                worst = max(worst, pair.memory_rmspe)
        return worst


def _evaluate_pair(
    pair_key: str,
    n_samples: int,
    seed: int,
    cv_folds: int,
    fit_intercept: bool,
) -> PairModelAccuracy:
    pair = PAPER_PAIRS[pair_key]
    space = _SPACES[pair.dataset]()
    device = get_device(pair.device_key)
    rng = np.random.default_rng(np.random.SeedSequence([seed, hash_key(pair_key)]))
    profiler = HardwareProfiler(device, rng)
    profiled = run_profiling_campaign(space, pair.dataset, profiler, n_samples, rng)

    cv_rng = np.random.default_rng(np.random.SeedSequence([seed, 99]))
    power_rmspe, power_pred = cross_validate(
        lambda: LinearModel(fit_intercept=fit_intercept),
        profiled.Z,
        profiled.power_w,
        k=cv_folds,
        rng=cv_rng,
        metric=rmspe,
    )
    memory_rmspe = None
    if profiled.has_memory:
        memory_rmspe, _ = cross_validate(
            lambda: LinearModel(fit_intercept=fit_intercept),
            profiled.Z,
            profiled.memory_bytes,
            k=cv_folds,
            rng=cv_rng,
            metric=rmspe,
        )
    return PairModelAccuracy(
        pair_key=pair_key,
        dataset=pair.dataset,
        device_name=device.name,
        power_rmspe=power_rmspe,
        memory_rmspe=memory_rmspe,
        power_actual=profiled.power_w.copy(),
        power_predicted=power_pred,
        profiled=profiled,
    )


def hash_key(key: str) -> int:
    """Stable small integer derived from a pair key (seed material)."""
    import zlib

    return zlib.crc32(key.encode("utf-8")) & 0xFFFF


def run_model_accuracy(
    n_samples: int = 100,
    seed: int = 0,
    cv_folds: int = 10,
    fit_intercept: bool = True,
    pair_keys: tuple[str, ...] | None = None,
) -> ModelAccuracyStudy:
    """Run the Table 1 / Figure 5 study over the paper's pairs."""
    if pair_keys is None:
        pair_keys = tuple(PAPER_PAIRS)
    pairs = {
        key: _evaluate_pair(key, n_samples, seed, cv_folds, fit_intercept)
        for key in pair_keys
    }
    return ModelAccuracyStudy(pairs=pairs)


_TABLE1_ORDER = ("mnist-gtx1070", "cifar10-gtx1070", "mnist-tx1", "cifar10-tx1")
_TABLE1_LABELS = {
    "mnist-gtx1070": "MNIST GTX 1070",
    "cifar10-gtx1070": "CIFAR-10 GTX 1070",
    "mnist-tx1": "MNIST Tegra TX1",
    "cifar10-tx1": "CIFAR-10 Tegra TX1",
}


def format_table1(study: ModelAccuracyStudy) -> str:
    """Render Table 1: RMSPE of the power and memory models."""
    headers = ["Model"] + [
        _TABLE1_LABELS[k] for k in _TABLE1_ORDER if k in study.pairs
    ]
    power_row = ["Power"]
    memory_row = ["Memory"]
    for key in _TABLE1_ORDER:
        if key not in study.pairs:
            continue
        pair = study.pairs[key]
        power_row.append(f"{pair.power_rmspe:.2f}%")
        memory_row.append(
            "--" if pair.memory_rmspe is None else f"{pair.memory_rmspe:.2f}%"
        )
    return render_table(
        "Table 1: RMSPE of the proposed power and memory models",
        headers,
        [power_row, memory_row],
    )


def figure5_series(
    study: ModelAccuracyStudy,
) -> dict[str, dict[str, np.ndarray]]:
    """Figure 5 scatter data: actual vs predicted power per pair."""
    return {
        key: {
            "actual_w": pair.power_actual,
            "predicted_w": pair.power_predicted,
        }
        for key, pair in study.pairs.items()
    }
