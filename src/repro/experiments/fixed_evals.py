"""Figure 4: the four methods under a fixed function-evaluation budget.

"We apply each algorithm on the MNIST and CIFAR-10 NNs with power
constraints ... we select a maximum number of 50 iterations per run (30
for MNIST); we execute each method five times."

Method forms in this protocol (before the runtime enhancements of
Figure 6): random search and random walk are the vanilla, published
algorithms (every sampled point is trained — that is what a fixed number
of function evaluations means for them), HW-CWEI weights EI by the
predictive models' satisfaction probability, and HW-IECI gates EI with the
models' hard indicators — which is why Figure 4 (center) shows HW-IECI at
zero constraint-violating samples while the others accumulate them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.result import RunResult
from .setup import ExperimentSetup, PAPER_PAIRS, paper_setup

__all__ = [
    "FIXED_EVAL_FORMS",
    "FixedEvalsStudy",
    "run_fixed_evals",
    "figure4_series",
]

#: (solver, variant) forms compared in Figure 4.
FIXED_EVAL_FORMS = (
    ("Rand", "default"),
    ("Rand-Walk", "default"),
    ("HW-CWEI", "hyperpower"),
    ("HW-IECI", "hyperpower"),
)


@dataclass(frozen=True)
class FixedEvalsStudy:
    """Figure 4 raw results: repeated runs per method."""

    pair_key: str
    n_iterations: int
    #: solver name -> one RunResult per repeat.
    runs: dict[str, tuple[RunResult, ...]]

    def mean_best_error_curve(self, solver: str) -> np.ndarray:
        """Mean best-feasible-error after each trained evaluation."""
        curves = []
        for run in self.runs[solver]:
            trained = [
                t for t in run.trials if t.was_trained
            ]
            best = run.chance_error
            curve = []
            for trial in trained:
                if (
                    not np.isnan(trial.error)
                    and trial.feasible_meas is not False
                ):
                    best = min(best, trial.error)
                curve.append(best)
            curves.append(curve)
        length = min(len(c) for c in curves)
        return np.mean([c[:length] for c in curves], axis=0)

    def mean_violation_curve(self, solver: str) -> np.ndarray:
        """Mean cumulative violations after each trained evaluation."""
        curves = []
        for run in self.runs[solver]:
            counts = np.cumsum(
                [1 if t.is_violation else 0 for t in run.trials if t.was_trained]
            )
            curves.append(counts)
        length = min(len(c) for c in curves)
        return np.mean([c[:length] for c in curves], axis=0)

    def error_scatter(self, solver: str) -> tuple[np.ndarray, np.ndarray]:
        """(evaluation index, observed error) pairs (Figure 4 right)."""
        xs, ys = [], []
        for run in self.runs[solver]:
            for position, trial in enumerate(
                t for t in run.trials if t.was_trained
            ):
                if not np.isnan(trial.error):
                    xs.append(position)
                    ys.append(trial.error)
        return np.asarray(xs), np.asarray(ys)


def run_fixed_evals(
    pair_key: str = "cifar10-gtx1070",
    n_repeats: int = 5,
    n_iterations: int | None = None,
    seed: int = 0,
    profiling_samples: int = 100,
    setup: ExperimentSetup | None = None,
) -> FixedEvalsStudy:
    """Run the Figure 4 protocol on one device-dataset pair."""
    if pair_key not in PAPER_PAIRS:
        raise ValueError(f"unknown pair {pair_key!r}")
    if setup is None:
        setup, pair = paper_setup(
            pair_key,
            seed=seed,
            fixed_eval=True,
            profiling_samples=profiling_samples,
        )
    else:
        pair = PAPER_PAIRS[pair_key]
    if n_iterations is None:
        n_iterations = pair.fixed_eval_iterations

    runs: dict[str, tuple[RunResult, ...]] = {}
    for solver, variant in FIXED_EVAL_FORMS:
        repeats = []
        for repeat in range(n_repeats):
            result = setup.run(
                solver,
                variant,
                run_seed=1000 * repeat + 7,
                max_evaluations=n_iterations,
            )
            repeats.append(result)
        runs[solver] = tuple(repeats)
    return FixedEvalsStudy(
        pair_key=pair_key, n_iterations=n_iterations, runs=runs
    )


def figure4_series(study: FixedEvalsStudy) -> dict[str, dict[str, object]]:
    """All three Figure 4 panels as plain arrays, per solver."""
    out = {}
    for solver in study.runs:
        xs, ys = study.error_scatter(solver)
        out[solver] = {
            "best_error_curve": study.mean_best_error_curve(solver),
            "violation_curve": study.mean_violation_curve(solver),
            "scatter_index": xs,
            "scatter_error": ys,
        }
    return out
