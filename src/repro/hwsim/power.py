"""Inference latency and power model.

The model is a per-layer roofline with a rate-based energy model on top:

1. Each layer's execution time is the larger of its compute time
   (``FLOPs / peak_flops``) and its memory time (``bytes / bandwidth``),
   plus a fixed kernel-launch overhead.
2. The network's achieved FLOP and DRAM-byte *rates* are total work divided
   by total time.  Tiny layers are launch-overhead dominated, so small
   networks achieve low rates; large memory-bound stacks push the byte rate
   toward the bandwidth roof.
3. Board power is idle power plus energy-per-op times the achieved rates,
   soft-saturating at the board power limit (TDP on the GTX 1070, the SoC
   power envelope on the TX1 — which is why large CIFAR-10 networks bunch
   up near the TX1 ceiling).

The resulting power is a deterministic, training-state-independent function
of the network's *structure* — precisely the property Section 3.2 of the
paper exploits to treat power as an a-priori known constraint.  Sensor
noise is added separately by :mod:`repro.hwsim.nvml`.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from ..nn.layers import DTYPE_BYTES
from ..nn.metrics import NetworkProfile, profile_network
from ..nn.network import NetworkSpec
from .device import DeviceModel

__all__ = [
    "InferenceTiming",
    "LayerTiming",
    "inference_timing",
    "layer_timings",
    "inference_power",
    "inference_latency",
]


@dataclass(frozen=True)
class InferenceTiming:
    """Timing breakdown for one inference batch on one device."""

    #: Total batch latency, s (roofline times plus launch overheads).
    total_s: float
    #: Sum of per-layer compute roofline times, s.
    compute_s: float
    #: Sum of per-layer memory roofline times, s.
    memory_s: float
    #: Sum of per-layer launch overheads, s.
    overhead_s: float
    #: Total FLOPs executed for the batch.
    flops: float
    #: Total DRAM bytes moved for the batch.
    bytes_moved: float

    @property
    def achieved_flops_rate(self) -> float:
        """Achieved compute rate over the whole batch, FLOP/s."""
        return self.flops / self.total_s

    @property
    def achieved_byte_rate(self) -> float:
        """Achieved DRAM rate over the whole batch, bytes/s."""
        return self.bytes_moved / self.total_s


@dataclass(frozen=True)
class LayerTiming:
    """Per-layer execution record for one inference batch.

    This is the granularity profilers like ``nvprof`` report and the
    layer-wise predictive models of NeuralPower [10] are trained on (the
    paper cites them as the drop-in refinement of its network-level
    models).
    """

    #: Position of the layer in the network.
    index: int
    #: Layer class name (``'Conv2D'``, ``'Dense'``, ...).
    kind: str
    #: FLOPs executed by this layer for the batch.
    flops: float
    #: DRAM bytes moved by this layer for the batch.
    bytes_moved: float
    #: Execution time, s (roofline plus launch overhead).
    time_s: float

    @property
    def achieved_flops_rate(self) -> float:
        """This layer's achieved compute rate, FLOP/s."""
        return self.flops / self.time_s

    @property
    def achieved_byte_rate(self) -> float:
        """This layer's achieved DRAM rate, bytes/s."""
        return self.bytes_moved / self.time_s


def _layer_bytes(profile_layer, batch: int) -> float:
    """DRAM bytes one layer moves for a batch: input + weights + output."""
    elements_in = 1
    for dim in profile_layer.input_shape:
        elements_in *= dim
    input_bytes = elements_in * DTYPE_BYTES * batch
    output_bytes = profile_layer.activation_bytes * batch
    # Weights are loaded once per batch (they fit in cache across samples).
    return input_bytes + profile_layer.weight_bytes + output_bytes


def inference_timing(
    network: NetworkSpec,
    device: DeviceModel,
    batch: int | None = None,
    profile: NetworkProfile | None = None,
) -> InferenceTiming:
    """Roofline timing of one inference batch of ``network`` on ``device``.

    Per-kernel latency terms model the limited utilization of small
    kernels: a layer only approaches the roofline's peaks when its work
    dwarfs the fixed ramp-up cost.
    """
    if batch is None:
        batch = device.profile_batch
    if batch < 1:
        raise ValueError("batch must be >= 1")
    if profile is None:
        profile = profile_network(network)

    total = compute = memory = overhead = 0.0
    flops = 0.0
    bytes_moved = 0.0
    for layer in profile.layers:
        layer_flops = layer.flops * batch
        layer_bytes = _layer_bytes(layer, batch)
        t_compute = (layer_flops + device.compute_latency_flops) / device.peak_flops
        t_memory = (layer_bytes + device.mem_latency_bytes) / device.mem_bandwidth
        compute += t_compute
        memory += t_memory
        overhead += device.launch_overhead_s
        total += max(t_compute, t_memory) + device.launch_overhead_s
        flops += layer_flops
        bytes_moved += layer_bytes
    return InferenceTiming(
        total_s=total,
        compute_s=compute,
        memory_s=memory,
        overhead_s=overhead,
        flops=flops,
        bytes_moved=bytes_moved,
    )


def layer_timings(
    network: NetworkSpec,
    device: DeviceModel,
    batch: int | None = None,
) -> list[LayerTiming]:
    """Per-layer execution records for one inference batch."""
    if batch is None:
        batch = device.profile_batch
    if batch < 1:
        raise ValueError("batch must be >= 1")
    profile = profile_network(network)
    records = []
    for layer in profile.layers:
        flops = layer.flops * batch
        moved = _layer_bytes(layer, batch)
        t_compute = (flops + device.compute_latency_flops) / device.peak_flops
        t_memory = (moved + device.mem_latency_bytes) / device.mem_bandwidth
        records.append(
            LayerTiming(
                index=layer.index,
                kind=layer.kind,
                flops=flops,
                bytes_moved=moved,
                time_s=max(t_compute, t_memory) + device.launch_overhead_s,
            )
        )
    return records


def inference_power(
    network: NetworkSpec,
    device: DeviceModel,
    batch: int | None = None,
) -> float:
    """True (noise-free) board power of ``network`` inferring on ``device``, W.

    ``P = idle + range * tanh((e_f * FLOP/s + e_b * B/s) / range)`` — linear
    in the achieved rates for moderate loads, softly saturating at the board
    power limit for loads that would exceed it.
    """
    timing = inference_timing(network, device, batch)
    dynamic = (
        device.energy_per_flop * timing.achieved_flops_rate
        + device.energy_per_byte * timing.achieved_byte_rate
    )
    # DVFS effect: sustained occupancy raises clocks/voltage, so energy per
    # operation grows with compute utilization.
    utilization = timing.achieved_flops_rate / device.peak_flops
    dynamic *= 1.0 + device.utilization_boost * utilization
    # Concave occupancy-efficiency softening (see DeviceModel docs).
    if device.power_gamma < 1.0 and dynamic > 0.0:
        reference = device.dynamic_range_w
        dynamic = reference * (dynamic / reference) ** device.power_gamma
    # Systematic per-topology variation (kernel/algorithm selection) —
    # deterministic, so re-measuring the same network reproduces it.
    if device.power_variation_rel > 0:
        seed = np.random.SeedSequence(
            [network.fingerprint(), zlib.crc32(device.name.encode())]
        )
        wobble = np.random.default_rng(seed).normal(0.0, 1.0)
        dynamic *= math.exp(device.power_variation_rel * wobble)
    span = device.dynamic_range_w
    return device.idle_power_w + span * math.tanh(dynamic / span)


def inference_latency(
    network: NetworkSpec,
    device: DeviceModel,
    batch: int | None = None,
) -> float:
    """Batch inference latency of ``network`` on ``device``, s."""
    return inference_timing(network, device, batch).total_s
