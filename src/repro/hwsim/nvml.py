"""Simulated power/memory measurement APIs (NVML and tegrastats analogs).

The paper samples board power through NVML on the GTX 1070 and through the
TX1's on-board INA sensors (via ``tegrastats``).  Real sensors return noisy,
temporally correlated readings; we reproduce that with an AR(1) relative
noise process around the device model's true power.

The TX1 quirk from the paper's footnote 1 is preserved: ``tegrastats``
"reports utilization and not memory consumption", so memory queries on a
device with ``supports_memory_query=False`` raise
:class:`UnsupportedQueryError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..nn.network import NetworkSpec
from .device import DeviceModel
from .memory import inference_memory
from .power import inference_power

__all__ = ["UnsupportedQueryError", "PowerTrace", "PowerMeter"]


class UnsupportedQueryError(RuntimeError):
    """The platform does not expose the requested measurement API."""


@dataclass(frozen=True)
class PowerTrace:
    """A sequence of power-sensor samples taken at a fixed rate."""

    samples_w: np.ndarray
    sample_hz: float

    def __post_init__(self) -> None:
        if self.samples_w.size == 0:
            raise ValueError("empty power trace")
        if self.sample_hz <= 0:
            raise ValueError("sample rate must be positive")

    @property
    def mean_w(self) -> float:
        """Mean sampled power, W — the value reported for a measurement."""
        return float(np.mean(self.samples_w))

    @property
    def std_w(self) -> float:
        """Sample standard deviation, W."""
        return float(np.std(self.samples_w))

    @property
    def duration_s(self) -> float:
        """Wall time the trace spans, s."""
        return self.samples_w.size / self.sample_hz

    def __len__(self) -> int:
        return self.samples_w.size


class PowerMeter:
    """Sensor-level access to one device: sampled power, queried memory.

    Parameters
    ----------
    device:
        The platform being measured.
    rng:
        Source of sensor noise.  Passing a seeded generator makes every
        measurement reproducible.
    autocorrelation:
        AR(1) coefficient of the relative noise process; real power sensors
        smooth over their sampling window, which correlates readings.
    """

    def __init__(
        self,
        device: DeviceModel,
        rng: np.random.Generator,
        autocorrelation: float = 0.6,
    ):
        if not (0.0 <= autocorrelation < 1.0):
            raise ValueError("autocorrelation must be in [0, 1)")
        self.device = device
        self._rng = rng
        self._rho = autocorrelation

    # -- power ---------------------------------------------------------------

    def sample_power(
        self,
        true_power_w: float,
        duration_s: float = 5.0,
        sample_hz: float = 10.0,
    ) -> PowerTrace:
        """Sample a sensor trace around a known true power level."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        count = max(1, int(round(duration_s * sample_hz)))
        sigma = self.device.power_noise_rel
        innovations = self._rng.normal(
            0.0, sigma * math.sqrt(1.0 - self._rho**2), size=count
        )
        noise = np.empty(count)
        state = self._rng.normal(0.0, sigma)
        for index in range(count):
            state = self._rho * state + innovations[index]
            noise[index] = state
        samples = true_power_w * (1.0 + noise)
        ceiling = self.device.max_power_w * 1.05
        samples = np.clip(samples, 0.0, ceiling)
        return PowerTrace(samples_w=samples, sample_hz=sample_hz)

    def measure_power(
        self,
        network: NetworkSpec,
        batch: int | None = None,
        duration_s: float = 5.0,
        sample_hz: float = 10.0,
    ) -> PowerTrace:
        """Run inference on ``network`` and sample board power."""
        true_power = inference_power(network, self.device, batch)
        return self.sample_power(true_power, duration_s, sample_hz)

    # -- memory ---------------------------------------------------------------

    def query_memory(
        self,
        network: NetworkSpec,
        batch: int | None = None,
    ) -> float:
        """Query the device-memory footprint of ``network``, bytes.

        Raises
        ------
        UnsupportedQueryError
            On platforms without a memory API (Tegra TX1, footnote 1).
        """
        if not self.device.supports_memory_query:
            raise UnsupportedQueryError(
                f"{self.device.name} exposes no memory-consumption counter"
            )
        true_memory = inference_memory(network, self.device, batch)
        # Allocator behaviour varies run to run by a fraction of a percent.
        jitter = 1.0 + self._rng.normal(0.0, 0.003)
        return float(max(0.0, true_memory * jitter))
