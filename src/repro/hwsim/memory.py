"""Inference memory-footprint model (Caffe-style allocation).

Caffe allocates every blob of the network up front, so the footprint of a
network inferring with batch ``B`` is modeled as:

``runtime overhead + slack * (weights + B * all activation blobs
+ B * largest im2col workspace)``

* the *runtime overhead* is the CUDA context, cuDNN handles and framework
  buffers — a large device constant that dominates small networks (and is
  what lets the paper's linear model, which has no explicit intercept,
  stay accurate: the constant is absorbed across the structural features);
* *weights* are the learnable parameters;
* *activation blobs* are every layer output (in-place ReLU/Dropout layers
  reuse their input blob and are excluded) — at profiling batch sizes these
  dominate the variable part and are *linear* in the layer feature counts,
  which is why the paper's linear memory model works (Table 1);
* the *im2col workspace* is the convolution lowering buffer
  ``C_in * K^2 * H_out * W_out`` floats, allocated per image.

Like power, the footprint depends only on structure, never on training
state.
"""

from __future__ import annotations

import math
import zlib

import numpy as np

from ..nn.layers import DTYPE_BYTES, Conv2D, Dropout, ReLU, Softmax
from ..nn.network import NetworkSpec
from .device import DeviceModel

__all__ = [
    "weights_bytes",
    "activation_blob_bytes",
    "im2col_workspace_bytes",
    "inference_memory",
]

#: Layer kinds Caffe runs in place (output blob shared with input blob).
_IN_PLACE_LAYERS = (ReLU, Dropout, Softmax)


def weights_bytes(network: NetworkSpec) -> int:
    """Bytes of learnable parameters."""
    return sum(
        layer.weight_bytes(in_shape)
        for layer, in_shape, _ in network.walk()
    )


def activation_blob_bytes(network: NetworkSpec, batch: int) -> int:
    """Bytes of all allocated activation blobs for batch size ``batch``.

    Counts the input blob and every non-in-place layer output.
    """
    elements = 1
    for dim in network.input_shape:
        elements *= dim
    total = elements * DTYPE_BYTES * batch
    for layer, in_shape, _ in network.walk():
        if isinstance(layer, _IN_PLACE_LAYERS):
            continue
        total += layer.activation_bytes(in_shape) * batch
    return total


def im2col_workspace_bytes(network: NetworkSpec) -> int:
    """Bytes of the largest convolution lowering buffer.

    Caffe's ``col_buffer`` is allocated per *image*, not per batch — the
    lowering loop runs image by image — so there is no batch multiplier.
    """
    largest = 0
    for layer, in_shape, out_shape in network.walk():
        if not isinstance(layer, Conv2D):
            continue
        channels_in = in_shape[0]
        _, out_h, out_w = out_shape
        per_sample = channels_in * layer.kernel * layer.kernel * out_h * out_w
        largest = max(largest, per_sample * DTYPE_BYTES)
    return largest


def inference_memory(
    network: NetworkSpec,
    device: DeviceModel,
    batch: int | None = None,
) -> float:
    """True (noise-free) device-memory footprint during inference, bytes."""
    if batch is None:
        batch = device.profile_batch
    if batch < 1:
        raise ValueError("batch must be >= 1")
    variable = (
        weights_bytes(network)
        + activation_blob_bytes(network, batch)
        + im2col_workspace_bytes(network)
    )
    total = device.runtime_overhead_bytes + device.allocator_slack * variable
    # Systematic per-topology variation (workspace-algorithm selection,
    # allocator pooling) — deterministic, reproduced on re-measurement.
    if device.memory_variation_rel > 0:
        seed = np.random.SeedSequence(
            [network.fingerprint(), zlib.crc32(device.name.encode()), 0x4D454D]
        )
        wobble = np.random.default_rng(seed).normal(0.0, 1.0)
        total *= math.exp(device.memory_variation_rel * wobble)
    return total
