"""One-call hardware profiling of a candidate network.

:class:`HardwareProfiler` is the simulation analog of the paper's wrapper
scripts that deploy a generated Caffe model on the target platform and
record its inference power (via NVML / tegrastats) and memory footprint.
Profiling has a wall-clock cost — model load plus the sensor-sampling
window — which the experiment clock charges to "default" methods that must
measure candidates on hardware, and which HyperPower's predictive models
avoid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn.network import NetworkSpec
from .device import DeviceModel
from .memory import inference_memory
from .nvml import PowerMeter, PowerTrace
from .power import LayerTiming, inference_latency, inference_power, layer_timings

__all__ = ["HardwareMeasurement", "HardwareProfiler"]

#: Time to instantiate the network and warm the device before sampling, s.
_SETUP_TIME_S = 3.0


@dataclass(frozen=True)
class HardwareMeasurement:
    """Result of profiling one network on one platform."""

    #: Platform the measurement was taken on.
    device_name: str
    #: Mean measured power over the sampling window, W.
    power_w: float
    #: Measured memory footprint, bytes — ``None`` when the platform has no
    #: memory API (Tegra TX1).
    memory_bytes: float | None
    #: Measured batch inference latency, s.
    latency_s: float
    #: Wall-clock time the measurement took, s.
    duration_s: float
    #: The raw power-sensor trace.
    power_trace: PowerTrace

    @property
    def memory_gb(self) -> float | None:
        """Memory footprint in GiB, or ``None`` when unavailable."""
        if self.memory_bytes is None:
            return None
        return self.memory_bytes / 2**30


class HardwareProfiler:
    """Profile networks on one device with reproducible sensor noise."""

    def __init__(
        self,
        device: DeviceModel,
        rng: np.random.Generator,
        batch: int | None = None,
        duration_s: float = 5.0,
        sample_hz: float = 10.0,
    ):
        self.device = device
        self.batch = device.profile_batch if batch is None else int(batch)
        if self.batch < 1:
            raise ValueError("batch must be >= 1")
        self.duration_s = float(duration_s)
        self.sample_hz = float(sample_hz)
        self._meter = PowerMeter(device, rng)

    def profile(self, network: NetworkSpec) -> HardwareMeasurement:
        """Deploy ``network``, sample power, time a batch, query memory."""
        trace = self._meter.measure_power(
            network, self.batch, self.duration_s, self.sample_hz
        )
        if self.device.supports_memory_query:
            memory = self._meter.query_memory(network, self.batch)
        else:
            memory = None
        latency = self.measure_latency(network)
        return HardwareMeasurement(
            device_name=self.device.name,
            power_w=trace.mean_w,
            memory_bytes=memory,
            latency_s=latency,
            duration_s=_SETUP_TIME_S + trace.duration_s,
            power_trace=trace,
        )

    def measure_latency(self, network: NetworkSpec) -> float:
        """Timed batch inference, s (averaged-run timer jitter included)."""
        true_latency = inference_latency(network, self.device, self.batch)
        jitter = 1.0 + self._rng_for_timers().normal(0.0, 0.01)
        return float(max(0.0, true_latency * jitter))

    def profile_layers(self, network: NetworkSpec) -> list[LayerTiming]:
        """Per-layer runtime profile (nvprof analog), with timer jitter.

        This is the measurement granularity NeuralPower-style layer-wise
        models (paper ref. [10]) are trained on.
        """
        rng = self._rng_for_timers()
        noisy = []
        for record in layer_timings(network, self.device, self.batch):
            jitter = 1.0 + rng.normal(0.0, 0.02)
            noisy.append(
                LayerTiming(
                    index=record.index,
                    kind=record.kind,
                    flops=record.flops,
                    bytes_moved=record.bytes_moved,
                    time_s=float(max(1e-9, record.time_s * jitter)),
                )
            )
        return noisy

    def _rng_for_timers(self) -> np.random.Generator:
        """Timer noise shares the profiler's reproducible stream."""
        return self._meter._rng

    # -- noise-free ground truth (for tests and figures) ----------------------

    def true_power(self, network: NetworkSpec) -> float:
        """Noise-free power of ``network`` on this profiler's device, W."""
        return inference_power(network, self.device, self.batch)

    def true_memory(self, network: NetworkSpec) -> float:
        """Noise-free memory footprint, bytes (even on the TX1 — the
        simulator always knows it; only the *query API* is missing there)."""
        return inference_memory(network, self.device, self.batch)
