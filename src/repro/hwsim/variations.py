"""Device-instance variations: process, thermal and aging effects.

The paper notes its models "could be flexibly extended to account for
process variations [11], thermal effects [12], and aging [13]".  This
module provides those extensions as *device transformations*: each returns
a new :class:`~repro.hwsim.device.DeviceModel` whose constants reflect the
physical effect, so every downstream consumer (power model, profiler,
predictive models, the whole HPO loop) works unchanged.

* :func:`sample_process_variation` — die-to-die fabrication spread: a
  correlated lognormal scaling of the dynamic-energy coefficients plus a
  leakage (idle-power) component.  Two boards of the same SKU draw
  measurably different power for the same network.
* :func:`thermal_derating` — steady-state temperature raises leakage
  exponentially (the classic positive feedback, linearised here): idle
  power grows with ambient temperature and with sustained load.
* :func:`aged_device` — BTI-style degradation: threshold-voltage drift
  over operating hours raises both leakage and dynamic energy, and
  slightly reduces attainable peak throughput.

These are deliberately first-order models — enough to study how much
instance variation the paper's linear predictors absorb (see
``examples/device_variation.py``).
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np

from .device import DeviceModel

__all__ = [
    "sample_process_variation",
    "thermal_derating",
    "aged_device",
]

#: Reference junction temperature for the thermal model, degC.
_NOMINAL_TEMPERATURE_C = 45.0

#: Leakage doubles roughly every this many degC (exponential rule of thumb).
_LEAKAGE_DOUBLING_C = 25.0


def sample_process_variation(
    device: DeviceModel,
    rng: np.random.Generator,
    dynamic_sigma: float = 0.05,
    leakage_sigma: float = 0.10,
    correlation: float = 0.6,
) -> DeviceModel:
    """One fabricated instance of ``device``.

    Parameters
    ----------
    dynamic_sigma:
        Lognormal sigma of the dynamic-energy spread (affects both the
        per-FLOP and per-byte coefficients, correlated across the two).
    leakage_sigma:
        Lognormal sigma of the idle-power (leakage) spread.
    correlation:
        Correlation between the dynamic and leakage draws — fast corners
        leak more.
    """
    if not (0.0 <= correlation <= 1.0):
        raise ValueError("correlation must be in [0, 1]")
    if dynamic_sigma < 0 or leakage_sigma < 0:
        raise ValueError("sigmas must be non-negative")
    shared = rng.normal()
    dynamic_z = correlation * shared + math.sqrt(1 - correlation**2) * rng.normal()
    leakage_z = correlation * shared + math.sqrt(1 - correlation**2) * rng.normal()
    dynamic_scale = math.exp(dynamic_sigma * dynamic_z)
    leakage_scale = math.exp(leakage_sigma * leakage_z)
    idle = min(
        device.idle_power_w * leakage_scale, device.max_power_w * 0.9
    )
    return replace(
        device,
        energy_per_flop=device.energy_per_flop * dynamic_scale,
        energy_per_byte=device.energy_per_byte * dynamic_scale,
        idle_power_w=idle,
    )


def thermal_derating(
    device: DeviceModel,
    ambient_c: float = 25.0,
    sustained_load_fraction: float = 0.5,
    thermal_resistance_c_per_w: float = 0.18,
) -> DeviceModel:
    """``device`` at a steady-state operating temperature.

    Junction temperature is ambient plus thermal resistance times the
    sustained dissipation; leakage (idle power) scales exponentially with
    the temperature rise above the nominal point.
    """
    if not (0.0 <= sustained_load_fraction <= 1.0):
        raise ValueError("load fraction must be in [0, 1]")
    if thermal_resistance_c_per_w < 0:
        raise ValueError("thermal resistance must be non-negative")
    dissipation = (
        device.idle_power_w
        + sustained_load_fraction * device.dynamic_range_w
    )
    junction_c = ambient_c + thermal_resistance_c_per_w * dissipation
    rise = junction_c - _NOMINAL_TEMPERATURE_C
    leakage_scale = 2.0 ** (rise / _LEAKAGE_DOUBLING_C)
    idle = min(device.idle_power_w * leakage_scale, device.max_power_w * 0.9)
    return replace(device, idle_power_w=idle)


def aged_device(
    device: DeviceModel,
    operating_hours: float,
    reference_hours: float = 30_000.0,
    max_energy_penalty: float = 0.12,
    max_throughput_penalty: float = 0.05,
) -> DeviceModel:
    """``device`` after ``operating_hours`` of use (BTI-style drift).

    Degradation follows the classic sub-linear power law
    ``penalty(t) = max_penalty * (t / t_ref)^0.2``: energy per operation
    and leakage creep up, peak throughput creeps down.
    """
    if operating_hours < 0:
        raise ValueError("operating hours must be non-negative")
    if reference_hours <= 0:
        raise ValueError("reference hours must be positive")
    fraction = (operating_hours / reference_hours) ** 0.2
    energy_scale = 1.0 + max_energy_penalty * fraction
    throughput_scale = 1.0 - max_throughput_penalty * fraction
    if throughput_scale <= 0:
        raise ValueError("throughput penalty too large")
    idle = min(
        device.idle_power_w * energy_scale, device.max_power_w * 0.9
    )
    return replace(
        device,
        energy_per_flop=device.energy_per_flop * energy_scale,
        energy_per_byte=device.energy_per_byte * energy_scale,
        idle_power_w=idle,
        peak_flops=device.peak_flops * throughput_scale,
    )
