"""GPU hardware substrate: device models, power/memory simulation, sensors."""

from .device import DeviceModel
from .devices import DEVICES, GTX_1070, TEGRA_TX1, get_device
from .memory import (
    activation_blob_bytes,
    im2col_workspace_bytes,
    inference_memory,
    weights_bytes,
)
from .nvml import PowerMeter, PowerTrace, UnsupportedQueryError
from .power import (
    InferenceTiming,
    LayerTiming,
    inference_latency,
    inference_power,
    inference_timing,
    layer_timings,
)
from .profiler import HardwareMeasurement, HardwareProfiler
from .variations import aged_device, sample_process_variation, thermal_derating

__all__ = [
    "DeviceModel",
    "GTX_1070",
    "TEGRA_TX1",
    "DEVICES",
    "get_device",
    "inference_power",
    "inference_latency",
    "inference_timing",
    "InferenceTiming",
    "LayerTiming",
    "layer_timings",
    "inference_memory",
    "weights_bytes",
    "activation_blob_bytes",
    "im2col_workspace_bytes",
    "PowerMeter",
    "PowerTrace",
    "UnsupportedQueryError",
    "HardwareProfiler",
    "HardwareMeasurement",
    "sample_process_variation",
    "thermal_derating",
    "aged_device",
]
