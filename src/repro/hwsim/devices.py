"""The two platforms evaluated in the paper (Section 4).

Constants are taken from public specifications where available (peak FLOP/s,
bandwidth, TDP, VRAM) and otherwise set to representative values for the
platform class:

* **NVIDIA GTX 1070** — the server GPU: 6.5 TFLOP/s FP32, 256 GB/s GDDR5,
  150 W TDP, 8 GB VRAM.  Idle-with-context is around 38 W; CUDA context
  plus cuDNN plus framework buffers claim on the order of 0.8 GB.
* **NVIDIA Tegra TX1** — the embedded board: ~0.51 TFLOP/s FP32 (1 TFLOP
  FP16), 25.6 GB/s LPDDR4, ~15 W module power, 4 GB shared memory.
  ``tegrastats`` exposes no memory-consumption counter, so
  ``supports_memory_query`` is ``False`` (paper footnote 1: "for
  representative comparison, we do not consider memory on Tegra").

Energy coefficients are calibrated so that uniformly sampled networks from
the paper's two design spaces land in the power ranges Figure 5 shows
(roughly 60-130 W on the GTX 1070, 5-15 W on the TX1) and so that the
paper's budgets (85/90 W GTX, 10/12 W TX1) cut the distributions at the
depths its Tables 2-4 imply.
"""

from __future__ import annotations

from .device import DeviceModel

__all__ = ["GTX_1070", "TEGRA_TX1", "DEVICES", "get_device"]

GTX_1070 = DeviceModel(
    name="GTX 1070",
    peak_flops=6.5e12,
    mem_bandwidth=256e9,
    launch_overhead_s=6e-6,
    mem_latency_bytes=7.25e4,
    compute_latency_flops=1.73e8,
    idle_power_w=38.0,
    max_power_w=150.0,
    energy_per_flop=1.923e-11,
    energy_per_byte=2.886e-11,
    utilization_boost=0.0,
    power_gamma=0.639,
    vram_bytes=8.0 * 2**30,
    runtime_overhead_bytes=1000.0 * 2**20,
    allocator_slack=1.04,
    profile_batch=256,
    power_noise_rel=0.015,
    power_variation_rel=0.035,
    memory_variation_rel=0.04,
    supports_memory_query=True,
)

TEGRA_TX1 = DeviceModel(
    name="Tegra TX1",
    peak_flops=0.512e12,
    mem_bandwidth=25.6e9,
    launch_overhead_s=25e-6,
    mem_latency_bytes=2.31e4,
    compute_latency_flops=5.29e5,
    idle_power_w=3.4,
    max_power_w=15.0,
    energy_per_flop=1.289e-11,
    energy_per_byte=8.41e-12,
    utilization_boost=7.69,
    power_gamma=0.98,
    vram_bytes=4.0 * 2**30,
    runtime_overhead_bytes=340.0 * 2**20,
    allocator_slack=1.04,
    profile_batch=32,
    power_noise_rel=0.02,
    power_variation_rel=0.027,
    memory_variation_rel=0.04,
    supports_memory_query=False,
)

#: Registry of the paper's platforms by canonical key.
DEVICES = {
    "gtx1070": GTX_1070,
    "tx1": TEGRA_TX1,
}


def get_device(key: str) -> DeviceModel:
    """Look up a platform by key (``'gtx1070'`` or ``'tx1'``)."""
    try:
        return DEVICES[key.lower()]
    except KeyError:
        raise ValueError(
            f"unknown device {key!r}; expected one of {sorted(DEVICES)}"
        ) from None
