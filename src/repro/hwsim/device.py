"""GPU device models.

A :class:`DeviceModel` captures the handful of platform constants the
simulator needs to turn a network's analytic cost profile
(:class:`~repro.nn.metrics.NetworkProfile`) into inference latency, power
and memory numbers:

* a roofline (peak FLOP/s and DRAM bandwidth) plus a per-kernel launch
  overhead, which together determine achieved compute/memory rates;
* an energy model (idle watts, joules per FLOP, joules per DRAM byte, and a
  saturation ceiling), which maps achieved rates to power draw;
* memory constants (runtime/framework overhead, VRAM size, allocator
  slack) for the memory footprint model;
* measurement characteristics (power-sensor noise, whether a memory query
  API exists at all — the Tegra TX1 does not, paper footnote 1).

All values are plain floats with SI units (seconds, watts, bytes, FLOP/s).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceModel"]


@dataclass(frozen=True)
class DeviceModel:
    """Constants describing one GPU platform."""

    #: Human-readable platform name (e.g. ``"GTX 1070"``).
    name: str

    #: Peak single-precision throughput actually reachable by dense layers,
    #: FLOP/s.  This is the roofline's flat roof.
    peak_flops: float

    #: Sustained DRAM bandwidth, bytes/s.  The roofline's slanted roof.
    mem_bandwidth: float

    #: Fixed cost of dispatching one kernel (driver + launch latency), s.
    #: Small layers are dominated by this, which is what makes tiny networks
    #: draw close to idle power.
    launch_overhead_s: float

    #: Per-kernel DRAM latency expressed in equivalent bytes: a layer moving
    #: ``b`` bytes takes ``(b + mem_latency_bytes) / mem_bandwidth`` seconds,
    #: so small transfers achieve only a fraction of peak bandwidth.  This is
    #: the knob that makes power grow with layer width.
    mem_latency_bytes: float

    #: Per-kernel pipeline ramp-up expressed in equivalent FLOPs: a layer of
    #: ``f`` FLOPs takes ``(f + compute_latency_flops) / peak_flops`` seconds
    #: of compute time, so small kernels achieve only a fraction of peak.
    compute_latency_flops: float

    #: Power drawn with the GPU context up but no kernels running, W.
    idle_power_w: float

    #: Hard ceiling on sustained board power (TDP / SoC power limit), W.
    max_power_w: float

    #: Dynamic energy per floating-point operation, J.
    energy_per_flop: float

    #: Dynamic energy per DRAM byte moved, J.
    energy_per_byte: float

    #: DVFS superlinearity: dynamic power is scaled by
    #: ``1 + utilization_boost * (achieved FLOP/s / peak)``.  Sustained high
    #: occupancy drives clocks and voltage up, so energy per operation grows
    #: with utilization; 0 disables the effect.
    utilization_boost: float

    #: Concave occupancy-efficiency exponent: the linear dynamic power ``d``
    #: is mapped through ``R * (d / R) ** gamma`` (with ``R`` the device's
    #: dynamic range) before the board ceiling applies.  ``gamma < 1``
    #: models the efficiency gain of high occupancy (fixed clock/scheduling
    #: overheads amortise), which counteracts the convexity of the raw
    #: workload terms and keeps measured power near-affine in the structural
    #: hyper-parameters — the property the paper's linear models rely on.
    #: ``1.0`` disables the effect.
    power_gamma: float

    #: Total device memory, bytes.
    vram_bytes: float

    #: Memory claimed by the CUDA context, cuDNN and the framework before
    #: any network buffer is allocated, bytes.
    runtime_overhead_bytes: float

    #: Multiplicative allocator slack (fragmentation, rounding), >= 1.
    allocator_slack: float

    #: Inference batch size used when profiling on this platform.
    profile_batch: int

    #: Relative standard deviation of one power-sensor sample (NVML-style).
    power_noise_rel: float

    #: Relative std of the *systematic* per-network power variation
    #: (cuDNN algorithm selection, clock residency quirks).  Deterministic
    #: per topology — re-measuring the same network reproduces it — which
    #: is what keeps the paper's linear models at 4-7% RMSPE rather than
    #: at the sensor-noise floor.
    power_variation_rel: float

    #: Relative std of the systematic per-network memory variation
    #: (workspace-algorithm selection, allocator pooling).  Deterministic
    #: per topology, like ``power_variation_rel``.
    memory_variation_rel: float = 0.0

    #: Whether the platform exposes a memory-usage query.  ``False`` for the
    #: Tegra TX1, whose ``tegrastats`` reports utilization, not consumption.
    supports_memory_query: bool = True

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bandwidth <= 0:
            raise ValueError(f"{self.name}: roofline constants must be positive")
        if self.launch_overhead_s < 0:
            raise ValueError(f"{self.name}: negative launch overhead")
        if self.mem_latency_bytes < 0 or self.compute_latency_flops < 0:
            raise ValueError(f"{self.name}: negative per-kernel latency")
        if not (0 < self.idle_power_w < self.max_power_w):
            raise ValueError(
                f"{self.name}: need 0 < idle ({self.idle_power_w}) "
                f"< max ({self.max_power_w})"
            )
        if self.energy_per_flop < 0 or self.energy_per_byte < 0:
            raise ValueError(f"{self.name}: negative energy coefficient")
        if self.utilization_boost < 0:
            raise ValueError(f"{self.name}: negative utilization boost")
        if not (0.0 < self.power_gamma <= 1.0):
            raise ValueError(f"{self.name}: power_gamma must be in (0, 1]")
        if self.vram_bytes <= self.runtime_overhead_bytes:
            raise ValueError(f"{self.name}: overhead exceeds VRAM")
        if self.allocator_slack < 1.0:
            raise ValueError(f"{self.name}: allocator slack must be >= 1")
        if self.profile_batch < 1:
            raise ValueError(f"{self.name}: batch must be >= 1")
        if not (0 <= self.power_noise_rel < 0.5):
            raise ValueError(f"{self.name}: implausible power noise")
        if not (0 <= self.power_variation_rel < 0.5):
            raise ValueError(f"{self.name}: implausible power variation")

    @property
    def dynamic_range_w(self) -> float:
        """Watts between idle and the saturation ceiling."""
        return self.max_power_w - self.idle_power_w

    @property
    def ridge_intensity(self) -> float:
        """Roofline ridge point, FLOP/byte: layers below it are memory-bound."""
        return self.peak_flops / self.mem_bandwidth
