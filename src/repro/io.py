"""JSON serialization of runs, studies and crash-safe run journals.

Optimization runs are the expensive artifact of this package; these
helpers persist them (and reload them) so tables and figures can be
re-rendered — or re-analysed — without re-running anything.  The format is
plain JSON: one object per :class:`~repro.core.result.RunResult` with its
trials inlined, NaNs encoded as ``null``.

The journal half (:class:`RunJournal` / :class:`JournalReplay`) protects
runs *while they execute*: every completed round of trials is appended to
a JSONL file and fsynced before the next round starts, so a killed
process loses at most the round in flight.  Resuming replays the journal
through the driver — proposals, RNG streams and clock charges recompute
identically while the journaled evaluation results substitute for the
trainings — and the run continues bit-identically to an uninterrupted one.
The per-line durability and torn-tail recovery come from
:mod:`repro.telemetry.jsonl`, the same machinery behind span-trace export.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .core.objective import EvaluationOutcome
from .core.result import RunResult, Trial, TrialStatus
from .hwsim.nvml import PowerTrace
from .hwsim.profiler import HardwareMeasurement
from .telemetry.jsonl import JsonlWriter, scan_jsonl

__all__ = [
    "trial_to_dict",
    "trial_from_dict",
    "measurement_to_dict",
    "measurement_from_dict",
    "outcome_to_dict",
    "outcome_from_dict",
    "run_to_dict",
    "run_from_dict",
    "save_runs",
    "load_runs",
    "JOURNAL_FORMAT",
    "RunJournal",
    "JournalReplay",
    "ReplayEval",
]


def _none_if_nan(value):
    if value is None:
        return None
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def trial_to_dict(trial: Trial) -> dict:
    """JSON-ready dictionary for one trial.

    The ``rung`` key appears only on multi-fidelity trials, so classic
    runs serialise byte-identically to the pre-rung format.
    """
    data = {
        "index": trial.index,
        "config": trial.config,
        "status": trial.status.value,
        "timestamp_s": trial.timestamp_s,
        "cost_s": trial.cost_s,
        "error": _none_if_nan(trial.error),
        "epochs_run": trial.epochs_run,
        "diverged": trial.diverged,
        "power_pred_w": _none_if_nan(trial.power_pred_w),
        "memory_pred_bytes": _none_if_nan(trial.memory_pred_bytes),
        "power_meas_w": _none_if_nan(trial.power_meas_w),
        "memory_meas_bytes": _none_if_nan(trial.memory_meas_bytes),
        "latency_meas_s": _none_if_nan(trial.latency_meas_s),
        "feasible_pred": trial.feasible_pred,
        "feasible_meas": trial.feasible_meas,
        "attempts": trial.attempts,
        "faults": list(trial.faults),
        "failure_kind": trial.failure_kind,
        "retry_s": trial.retry_s,
        "measurement_degraded": trial.measurement_degraded,
    }
    if trial.rung is not None:
        data["rung"] = trial.rung
    return data


def trial_from_dict(data: dict) -> Trial:
    """Inverse of :func:`trial_to_dict`."""
    error = data.get("error")
    rung = data.get("rung")
    return Trial(
        index=int(data["index"]),
        config=dict(data["config"]),
        status=TrialStatus(data["status"]),
        timestamp_s=float(data["timestamp_s"]),
        cost_s=float(data["cost_s"]),
        error=math.nan if error is None else float(error),
        epochs_run=int(data.get("epochs_run", 0)),
        diverged=data.get("diverged"),
        power_pred_w=data.get("power_pred_w"),
        memory_pred_bytes=data.get("memory_pred_bytes"),
        power_meas_w=data.get("power_meas_w"),
        memory_meas_bytes=data.get("memory_meas_bytes"),
        latency_meas_s=data.get("latency_meas_s"),
        feasible_pred=data.get("feasible_pred"),
        feasible_meas=data.get("feasible_meas"),
        attempts=int(data.get("attempts", 0)),
        faults=tuple(data.get("faults", ())),
        failure_kind=data.get("failure_kind"),
        retry_s=float(data.get("retry_s", 0.0)),
        measurement_degraded=bool(data.get("measurement_degraded", False)),
        rung=None if rung is None else int(rung),
    )


def measurement_to_dict(measurement: HardwareMeasurement) -> dict:
    """JSON-ready dictionary for one hardware measurement.

    The raw power-sensor trace is included in full, so a journaled
    outcome reconstructs bit-identically (floats round-trip exactly
    through JSON's shortest-repr encoding).
    """
    return {
        "device_name": measurement.device_name,
        "power_w": measurement.power_w,
        "memory_bytes": measurement.memory_bytes,
        "latency_s": measurement.latency_s,
        "duration_s": measurement.duration_s,
        "samples_w": [float(s) for s in measurement.power_trace.samples_w],
        "sample_hz": measurement.power_trace.sample_hz,
    }


def measurement_from_dict(data: dict) -> HardwareMeasurement:
    """Inverse of :func:`measurement_to_dict`."""
    return HardwareMeasurement(
        device_name=data["device_name"],
        power_w=float(data["power_w"]),
        memory_bytes=data.get("memory_bytes"),
        latency_s=float(data["latency_s"]),
        duration_s=float(data["duration_s"]),
        power_trace=PowerTrace(
            samples_w=np.asarray(data["samples_w"], dtype=float),
            sample_hz=float(data["sample_hz"]),
        ),
    )


def outcome_to_dict(outcome: EvaluationOutcome) -> dict:
    """JSON-ready dictionary for one evaluation outcome."""
    return {
        "error": outcome.error,
        "final_error": outcome.final_error,
        "epochs_run": outcome.epochs_run,
        "stopped_early": outcome.stopped_early,
        "diverged": outcome.diverged,
        "measurement": (
            None
            if outcome.measurement is None
            else measurement_to_dict(outcome.measurement)
        ),
        "feasible_meas": outcome.feasible_meas,
        "cost_s": outcome.cost_s,
        "measurement_failed": outcome.measurement_failed,
    }


def outcome_from_dict(data: dict) -> EvaluationOutcome:
    """Inverse of :func:`outcome_to_dict`."""
    measurement = data.get("measurement")
    return EvaluationOutcome(
        error=float(data["error"]),
        final_error=float(data["final_error"]),
        epochs_run=int(data["epochs_run"]),
        stopped_early=bool(data["stopped_early"]),
        diverged=bool(data["diverged"]),
        measurement=(
            None if measurement is None else measurement_from_dict(measurement)
        ),
        feasible_meas=data.get("feasible_meas"),
        cost_s=float(data["cost_s"]),
        measurement_failed=bool(data.get("measurement_failed", False)),
    )


def run_to_dict(run: RunResult) -> dict:
    """JSON-ready dictionary for one run."""
    return {
        "method": run.method,
        "variant": run.variant,
        "dataset": run.dataset,
        "device": run.device,
        "wall_time_s": run.wall_time_s,
        "chance_error": run.chance_error,
        "cache_hits": run.cache_hits,
        "cache_misses": run.cache_misses,
        "trials": [trial_to_dict(t) for t in run.trials],
    }


def run_from_dict(data: dict) -> RunResult:
    """Inverse of :func:`run_to_dict`."""
    run = RunResult(
        method=data["method"],
        variant=data["variant"],
        dataset=data["dataset"],
        device=data["device"],
        wall_time_s=float(data.get("wall_time_s", 0.0)),
        chance_error=float(data.get("chance_error", 0.9)),
        cache_hits=int(data.get("cache_hits", 0)),
        cache_misses=int(data.get("cache_misses", 0)),
    )
    run.trials = [trial_from_dict(t) for t in data.get("trials", [])]
    return run


def save_runs(runs: list[RunResult], path: str | Path) -> Path:
    """Write runs to a JSON file; returns the path."""
    path = Path(path)
    payload = {"format": "repro-runs/1", "runs": [run_to_dict(r) for r in runs]}
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return path


def load_runs(path: str | Path) -> list[RunResult]:
    """Load runs written by :func:`save_runs`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-runs/1":
        raise ValueError(f"{path}: not a repro runs file")
    return [run_from_dict(r) for r in payload["runs"]]


# -- crash-safe run journaling ------------------------------------------------

#: Format tag of the journal header line.
JOURNAL_FORMAT = "repro-journal/1"


def _scan_journal(path: Path) -> tuple[dict, list[dict], dict | None, int]:
    """Parse a journal file, tolerating a corrupt tail.

    Returns ``(header, rounds, end, keep_bytes)`` where ``keep_bytes`` is
    the byte length of the valid *round* prefix — the offset a resuming
    writer truncates to (the end marker, if any, is dropped too: the run
    is about to continue past it).  A torn or corrupt line (the crash
    landed mid-write) invalidates itself and everything after it
    (:func:`~repro.telemetry.jsonl.scan_jsonl` handles that layer; this
    function adds the journal's header/round-ordering rules).
    """
    header: dict | None = None
    rounds: list[dict] = []
    end: dict | None = None
    keep = 0
    for record, line_end in scan_jsonl(path.read_bytes()):
        if header is None:
            if record.get("format") != JOURNAL_FORMAT:
                raise ValueError(f"{path}: not a repro journal file")
            header = record
            keep = line_end
        elif "round" in record:
            if end is not None or int(record["round"]) != len(rounds):
                break  # out-of-order round: corrupt
            rounds.append(record)
            keep = line_end
        elif "end" in record:
            end = record
        else:
            break
    if header is None:
        raise ValueError(f"{path}: not a repro journal file")
    return header, rounds, end, keep


def _eval_entry(pool_outcome) -> dict:
    """Journal entry for one fresh (dispatched) pool evaluation.

    Rung segments add ``start_epoch``/``epochs`` keys; the classic paths
    (where ``epochs`` is None) keep the pre-rung entry format exactly.
    """
    entry = {
        "seed": pool_outcome.seed,
        "attempts": pool_outcome.attempts,
        "faults": list(pool_outcome.faults),
        "failure_kind": pool_outcome.failure_kind,
        "retry_s": pool_outcome.retry_s,
        "backoff_s": getattr(pool_outcome, "backoff_s", 0.0),
        "outcome": (
            None
            if pool_outcome.outcome is None
            else outcome_to_dict(pool_outcome.outcome)
        ),
    }
    if getattr(pool_outcome, "epochs", None) is not None:
        entry["start_epoch"] = pool_outcome.start_epoch
        entry["epochs"] = pool_outcome.epochs
    return entry


class RunJournal:
    """Append-only JSONL journal of a run in progress.

    Line 1 is a header (``{"format": "repro-journal/1", "meta": ...}``);
    each subsequent line records one completed driver round — the trials
    it produced plus, on the pool path, the fresh evaluation results
    needed to replay the round without re-training.  Every line is
    flushed and fsynced before :meth:`append_round` returns, so a crash
    loses at most the round in flight; :func:`JournalReplay.load`
    tolerates (and a resuming :meth:`reopen` truncates) a torn tail.
    """

    def __init__(self, path: str | Path, meta: dict | None = None, *,
                 chaos=None):
        self.path = Path(path)
        self.meta = {} if meta is None else dict(meta)
        #: Whether the driver should *not* re-append rounds it is
        #: replaying from this very file (set by :meth:`reopen`).
        self.skip_replay = False
        self.finished = False
        self._round = 0
        self._writer = JsonlWriter(self.path, chaos=chaos)
        self._write_line({"format": JOURNAL_FORMAT, "meta": self.meta})

    @classmethod
    def reopen(cls, path: str | Path, *, chaos=None) -> "RunJournal":
        """Reopen an interrupted journal for a resumed run.

        Recovers the valid round prefix (truncating any torn tail and any
        end marker), then appends the resumed run's new rounds after it.
        The returned journal has ``skip_replay=True``: the replayed
        rounds are already on disk.
        """
        path = Path(path)
        header, rounds, _, keep = _scan_journal(path)
        journal = cls.__new__(cls)
        journal.path = path
        journal.meta = dict(header.get("meta", {}))
        journal.skip_replay = True
        journal.finished = False
        journal._round = len(rounds)
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        journal._writer = JsonlWriter(path, append=True, chaos=chaos)
        return journal

    def _write_line(self, record: dict) -> None:
        if self._writer is None:
            raise ValueError("journal is closed")
        self._writer.write(record)

    def append_round(self, trials, pool_outcomes=None) -> None:
        """Record one completed driver round, durably.

        ``pool_outcomes`` is the round's full :class:`~repro.core.
        parallel.PoolOutcome` list (``None`` on the sequential path);
        only the fresh dispatches — the slots a replay must substitute —
        are journaled, since cache hits and within-batch duplicates
        reconstruct themselves from the earlier rounds' outcomes.
        """
        record = {
            "round": self._round,
            "trials": [trial_to_dict(t) for t in trials],
            "evals": (
                None
                if pool_outcomes is None
                else [
                    _eval_entry(po)
                    for po in pool_outcomes
                    if not po.cached and po.seed is not None
                ]
            ),
        }
        self._write_line(record)
        self._round += 1

    def finish(self, result: RunResult) -> None:
        """Mark the run complete (a resumed run without an end marker
        replays every round, then keeps running until its budget)."""
        self._write_line(
            {
                "end": True,
                "wall_time_s": result.wall_time_s,
                "n_samples": result.n_samples,
                "n_failed": result.n_failed,
            }
        )
        self.finished = True
        self.close()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class ReplayEval:
    """One journaled fresh evaluation, ready for pool substitution."""

    seed: int
    outcome: EvaluationOutcome | None
    attempts: int
    faults: tuple[str, ...]
    failure_kind: str | None
    retry_s: float
    backoff_s: float = 0.0
    #: Rung-segment window (None/0 on classic full-fidelity entries).
    start_epoch: int = 0
    epochs: int | None = None


class JournalReplay:
    """A recovered journal, in the shape the driver's replay hooks need."""

    def __init__(self, meta: dict, rounds: list[dict], finished: bool):
        self.meta = meta
        self._rounds = rounds
        #: Whether the journal carries the run's end marker — nothing was
        #: lost, the resumed run will replay to completion and stop.
        self.finished = finished
        self._evals = [
            None
            if r["evals"] is None
            else [
                ReplayEval(
                    seed=int(e["seed"]),
                    outcome=(
                        None
                        if e["outcome"] is None
                        else outcome_from_dict(e["outcome"])
                    ),
                    attempts=int(e["attempts"]),
                    faults=tuple(e["faults"]),
                    failure_kind=e["failure_kind"],
                    retry_s=float(e["retry_s"]),
                    backoff_s=float(e.get("backoff_s", 0.0)),
                    start_epoch=int(e.get("start_epoch", 0)),
                    epochs=(
                        None
                        if e.get("epochs") is None
                        else int(e["epochs"])
                    ),
                )
                for e in r["evals"]
            ]
            for r in rounds
        ]

    @classmethod
    def load(cls, path: str | Path) -> "JournalReplay":
        """Recover a journal from disk, dropping any torn tail."""
        header, rounds, end, _ = _scan_journal(Path(path))
        return cls(
            meta=dict(header.get("meta", {})),
            rounds=rounds,
            finished=end is not None,
        )

    @property
    def n_rounds(self) -> int:
        """Journaled (replayable) rounds."""
        return len(self._rounds)

    def pool_evals(self, round_index: int):
        """The fresh-evaluation substitutions for one round (``None`` on
        sequential-path rounds, which re-execute deterministically)."""
        return self._evals[round_index]

    def verify_round(self, round_index: int, trials) -> None:
        """Check a recomputed round against the journal, field by field.

        The resume contract is bit-identity: every recomputed trial must
        serialise exactly as the original run journaled it.  A mismatch
        means the run was resumed under different parameters (or the
        journal belongs to a different run) and continuing would silently
        fork history.
        """
        recorded = self._rounds[round_index]["trials"]
        recomputed = [trial_to_dict(t) for t in trials]
        if recomputed != recorded:
            raise ValueError(
                f"journal replay mismatch in round {round_index}: the "
                "recomputed trials differ from the journaled ones (was the "
                "run resumed with different parameters?)"
            )
