"""JSON serialization of runs and studies.

Optimization runs are the expensive artifact of this package; these
helpers persist them (and reload them) so tables and figures can be
re-rendered — or re-analysed — without re-running anything.  The format is
plain JSON: one object per :class:`~repro.core.result.RunResult` with its
trials inlined, NaNs encoded as ``null``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from .core.result import RunResult, Trial, TrialStatus

__all__ = [
    "trial_to_dict",
    "trial_from_dict",
    "run_to_dict",
    "run_from_dict",
    "save_runs",
    "load_runs",
]


def _none_if_nan(value):
    if value is None:
        return None
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def trial_to_dict(trial: Trial) -> dict:
    """JSON-ready dictionary for one trial."""
    return {
        "index": trial.index,
        "config": trial.config,
        "status": trial.status.value,
        "timestamp_s": trial.timestamp_s,
        "cost_s": trial.cost_s,
        "error": _none_if_nan(trial.error),
        "epochs_run": trial.epochs_run,
        "diverged": trial.diverged,
        "power_pred_w": _none_if_nan(trial.power_pred_w),
        "memory_pred_bytes": _none_if_nan(trial.memory_pred_bytes),
        "power_meas_w": _none_if_nan(trial.power_meas_w),
        "memory_meas_bytes": _none_if_nan(trial.memory_meas_bytes),
        "latency_meas_s": _none_if_nan(trial.latency_meas_s),
        "feasible_pred": trial.feasible_pred,
        "feasible_meas": trial.feasible_meas,
    }


def trial_from_dict(data: dict) -> Trial:
    """Inverse of :func:`trial_to_dict`."""
    error = data.get("error")
    return Trial(
        index=int(data["index"]),
        config=dict(data["config"]),
        status=TrialStatus(data["status"]),
        timestamp_s=float(data["timestamp_s"]),
        cost_s=float(data["cost_s"]),
        error=math.nan if error is None else float(error),
        epochs_run=int(data.get("epochs_run", 0)),
        diverged=data.get("diverged"),
        power_pred_w=data.get("power_pred_w"),
        memory_pred_bytes=data.get("memory_pred_bytes"),
        power_meas_w=data.get("power_meas_w"),
        memory_meas_bytes=data.get("memory_meas_bytes"),
        latency_meas_s=data.get("latency_meas_s"),
        feasible_pred=data.get("feasible_pred"),
        feasible_meas=data.get("feasible_meas"),
    )


def run_to_dict(run: RunResult) -> dict:
    """JSON-ready dictionary for one run."""
    return {
        "method": run.method,
        "variant": run.variant,
        "dataset": run.dataset,
        "device": run.device,
        "wall_time_s": run.wall_time_s,
        "chance_error": run.chance_error,
        "cache_hits": run.cache_hits,
        "cache_misses": run.cache_misses,
        "trials": [trial_to_dict(t) for t in run.trials],
    }


def run_from_dict(data: dict) -> RunResult:
    """Inverse of :func:`run_to_dict`."""
    run = RunResult(
        method=data["method"],
        variant=data["variant"],
        dataset=data["dataset"],
        device=data["device"],
        wall_time_s=float(data.get("wall_time_s", 0.0)),
        chance_error=float(data.get("chance_error", 0.9)),
        cache_hits=int(data.get("cache_hits", 0)),
        cache_misses=int(data.get("cache_misses", 0)),
    )
    run.trials = [trial_from_dict(t) for t in data.get("trials", [])]
    return run


def save_runs(runs: list[RunResult], path: str | Path) -> Path:
    """Write runs to a JSON file; returns the path."""
    path = Path(path)
    payload = {"format": "repro-runs/1", "runs": [run_to_dict(r) for r in runs]}
    path.write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return path


def load_runs(path: str | Path) -> list[RunResult]:
    """Load runs written by :func:`save_runs`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("format") != "repro-runs/1":
        raise ValueError(f"{path}: not a repro runs file")
    return [run_from_dict(r) for r in payload["runs"]]
