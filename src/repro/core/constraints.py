"""Constraint specifications and checkers (paper Sections 3.3-3.5).

Three ways of answering "does configuration x satisfy the power/memory
budgets?" coexist in the framework:

* :class:`ModelConstraintChecker` — HyperPower's way: evaluate the linear
  predictive models (a-priori, milliseconds).  Drives the HW-IECI indicator
  and, with the models' residual uncertainty, the HW-CWEI probability.
* :class:`GPConstraintModel` — the *default* (constraint-unaware-a-priori)
  Bayesian treatment of prior art [6, 17]: constraints are latent functions
  learned by GPs from hardware measurements of already-evaluated points, so
  early iterations fly blind.
* measured feasibility — ground truth from the target platform, recorded on
  every deployed sample and used to count violations (Figure 4 center).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

from ..gp.gp import GaussianProcess
from ..gp.sparse import DEFAULT_FEATURES, DEFAULT_SWITCH_AT, make_surrogate
from ..models.hw_models import MemoryModel, PowerModel
from ..space.space import SearchSpace

__all__ = [
    "ConstraintSpec",
    "ModelConstraintChecker",
    "GPConstraintModel",
]

#: GiB in bytes, for convenient budget definitions.
GIB = float(2**30)


@dataclass(frozen=True)
class ConstraintSpec:
    """The budgets the ML practitioner provides (Figure 2)."""

    #: Power budget ``PB``, W — ``None`` disables the power constraint.
    power_budget_w: float | None = None
    #: Memory budget ``MB``, bytes — ``None`` disables it (always the case
    #: on the Tegra TX1, which cannot measure memory).
    memory_budget_bytes: float | None = None
    #: Batch-inference latency budget, s — ``None`` disables it.  Not one
    #: of the paper's budgets, but the runtime constraint its related
    #: work [14] optimizes under; supported by the same a-priori recipe.
    latency_budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.power_budget_w is not None and self.power_budget_w <= 0:
            raise ValueError("power budget must be positive")
        if self.memory_budget_bytes is not None and self.memory_budget_bytes <= 0:
            raise ValueError("memory budget must be positive")
        if self.latency_budget_s is not None and self.latency_budget_s <= 0:
            raise ValueError("latency budget must be positive")

    @property
    def is_unconstrained(self) -> bool:
        """Whether no budget is active."""
        return (
            self.power_budget_w is None
            and self.memory_budget_bytes is None
            and self.latency_budget_s is None
        )

    def measured_feasible(
        self,
        power_w: float | None,
        memory_bytes: float | None,
        latency_s: float | None = None,
    ) -> bool:
        """Ground-truth feasibility from hardware measurements.

        A budget with no corresponding measurement (TX1 memory) is treated
        as satisfied, matching the paper's "no memory constraints on Tegra".
        """
        if (
            self.power_budget_w is not None
            and power_w is not None
            and power_w > self.power_budget_w
        ):
            return False
        if (
            self.memory_budget_bytes is not None
            and memory_bytes is not None
            and memory_bytes > self.memory_budget_bytes
        ):
            return False
        if (
            self.latency_budget_s is not None
            and latency_s is not None
            and latency_s > self.latency_budget_s
        ):
            return False
        return True


class ModelConstraintChecker:
    """A-priori constraint evaluation through the predictive models.

    This is the object HyperPower puts inside its acquisition function:
    ``I[P(z) <= PB] * I[M(z) <= MB]`` for HW-IECI and
    ``Pr(P(z) <= PB) * Pr(M(z) <= MB)`` for HW-CWEI.
    """

    def __init__(
        self,
        spec: ConstraintSpec,
        power_model: PowerModel | None,
        memory_model: MemoryModel | None,
        margin_sigmas: float = 1.0,
        latency_model=None,
    ):
        """``margin_sigmas`` backs the indicator off the budget by that many
        out-of-fold residual standard deviations.  The EI maximiser is drawn
        to the best networks, which sit right at the power boundary; without
        a confidence margin roughly half of the boundary picks would violate
        on real hardware, while the paper observes *zero* violations under
        HW-IECI (Figure 4 center)."""
        if spec.power_budget_w is not None and power_model is None:
            raise ValueError("power budget set but no power model given")
        if spec.memory_budget_bytes is not None and memory_model is None:
            raise ValueError("memory budget set but no memory model given")
        if spec.latency_budget_s is not None and latency_model is None:
            raise ValueError("latency budget set but no latency model given")
        if margin_sigmas < 0:
            raise ValueError("margin_sigmas must be non-negative")
        self.spec = spec
        self.power_model = power_model
        self.memory_model = memory_model
        self.latency_model = latency_model
        self.margin_sigmas = margin_sigmas

    @property
    def space(self) -> SearchSpace | None:
        """The design space the predictive models were fitted on."""
        for model in (self.power_model, self.memory_model, self.latency_model):
            if model is not None:
                return model.space
        return None

    def predictions(
        self, config: Mapping
    ) -> tuple[float | None, float | None]:
        """Model predictions ``(power_w, memory_bytes)`` for ``config``."""
        power = (
            self.power_model.predict_config(config)
            if self.power_model is not None
            else None
        )
        memory = (
            self.memory_model.predict_config(config)
            if self.memory_model is not None
            else None
        )
        return power, memory

    def _margin(self, model) -> float:
        if self.margin_sigmas == 0 or model.residual_std_ is None:
            return 0.0
        return self.margin_sigmas * model.residual_std_

    def predict_latency(self, config: Mapping) -> float | None:
        """Predicted batch latency, s — ``None`` without a latency model."""
        if self.latency_model is None:
            return None
        return self.latency_model.predict_config(config)

    def indicator(self, config: Mapping) -> bool:
        """HW-IECI's hard indicator: every budget predicted satisfied,
        with a residual-uncertainty back-off from each boundary."""
        power, memory = self.predictions(config)
        spec = self.spec
        if spec.power_budget_w is not None and (
            power > spec.power_budget_w - self._margin(self.power_model)
        ):
            return False
        if spec.memory_budget_bytes is not None and (
            memory > spec.memory_budget_bytes - self._margin(self.memory_model)
        ):
            return False
        if spec.latency_budget_s is not None:
            latency = self.predict_latency(config)
            if latency > spec.latency_budget_s - self._margin(self.latency_model):
                return False
        return True

    def satisfaction_probability(self, config: Mapping) -> float:
        """HW-CWEI's soft probability under Gaussian residual models."""
        spec = self.spec
        probability = 1.0
        if spec.power_budget_w is not None:
            z = self.power_model.space.structural_vector(config)
            probability *= self.power_model.satisfaction_probability(
                z, spec.power_budget_w
            )
        if spec.memory_budget_bytes is not None:
            z = self.memory_model.space.structural_vector(config)
            probability *= self.memory_model.satisfaction_probability(
                z, spec.memory_budget_bytes
            )
        if spec.latency_budget_s is not None:
            z = self.latency_model.space.structural_vector(config)
            probability *= self.latency_model.satisfaction_probability(
                z, spec.latency_budget_s
            )
        return probability

    # -- batch evaluation (the vectorised screening path) ----------------------

    def _structural_batch(
        self, configs: Sequence[Mapping], validate: bool
    ) -> np.ndarray:
        space = self.space
        if space is None:
            raise RuntimeError("batch screening needs at least one model")
        return space.structural_matrix(configs, validate=validate)

    def predictions_batch(
        self, configs: Sequence[Mapping], validate: bool = True
    ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Vectorised :meth:`predictions` over a candidate set.

        Returns ``(power_w, memory_bytes)`` arrays of length ``len(configs)``
        (``None`` where the corresponding model is absent).  The structural
        matrix is extracted once and each model evaluated in a single
        NumPy call — this is what makes constraint checks "~free" at batch
        scale, per the paper's economics.
        """
        if self.space is None:
            return None, None
        Z = self._structural_batch(configs, validate)
        power = (
            self.power_model.predict_batch(Z)
            if self.power_model is not None
            else None
        )
        memory = (
            self.memory_model.predict_batch(Z)
            if self.memory_model is not None
            else None
        )
        return power, memory

    def screen_batch(
        self, configs: Sequence[Mapping], validate: bool = False
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        """Vectorised screening: ``(accept, power_pred, memory_pred)``.

        ``accept`` is a boolean array with the decisions :meth:`indicator`
        would make config by config: the same margin-backed-off thresholds
        and strict inequalities, applied to predictions that agree with the
        per-config path to the last floating-point ulp (the batch and
        per-row BLAS kernels may round differently, many orders of
        magnitude below the residual margins).
        """
        n = len(configs)
        # No models implies no budgets (the constructor enforces the
        # pairing), so a model-free checker accepts everything — the
        # service builds such checkers for studies it cannot profile.
        if self.space is None:
            return np.ones(n, dtype=bool), None, None
        Z = self._structural_batch(configs, validate)
        spec = self.spec
        accept = np.ones(n, dtype=bool)
        power = memory = None
        if self.power_model is not None:
            power = self.power_model.predict_batch(Z)
        if self.memory_model is not None:
            memory = self.memory_model.predict_batch(Z)
        if spec.power_budget_w is not None:
            threshold = spec.power_budget_w - self._margin(self.power_model)
            accept &= ~(power > threshold)
        if spec.memory_budget_bytes is not None:
            threshold = spec.memory_budget_bytes - self._margin(self.memory_model)
            accept &= ~(memory > threshold)
        if spec.latency_budget_s is not None:
            latency = self.latency_model.predict_batch(Z)
            threshold = spec.latency_budget_s - self._margin(self.latency_model)
            accept &= ~(latency > threshold)
        return accept, power, memory

    def indicator_batch(
        self, configs: Sequence[Mapping], validate: bool = False
    ) -> np.ndarray:
        """Vectorised :meth:`indicator` over a candidate set."""
        accept, _, _ = self.screen_batch(configs, validate=validate)
        return accept

    def satisfaction_probability_batch(
        self, configs: Sequence[Mapping], validate: bool = False
    ) -> np.ndarray:
        """Vectorised :meth:`satisfaction_probability` over a candidate set."""
        n = len(configs)
        if self.space is None:
            return np.ones(n, dtype=float)
        Z = self._structural_batch(configs, validate)
        spec = self.spec
        probability = np.ones(n, dtype=float)
        if spec.power_budget_w is not None:
            probability *= self.power_model.satisfaction_probability_batch(
                Z, spec.power_budget_w
            )
        if spec.memory_budget_bytes is not None:
            probability *= self.memory_model.satisfaction_probability_batch(
                Z, spec.memory_budget_bytes
            )
        if spec.latency_budget_s is not None:
            probability *= self.latency_model.satisfaction_probability_batch(
                Z, spec.latency_budget_s
            )
        return probability


class GPConstraintModel:
    """Constraints as Gaussian processes learned from observations [6, 17].

    The default (non-HyperPower) HW-CWEI/HW-IECI variants use this: each
    constraint gets a GP over the unit-cube encoding, trained on hardware
    measurements of the points evaluated so far.  Until enough points are
    observed the model is uninformative (probability 1 everywhere), which
    is exactly why the default variants waste early full trainings on
    infeasible samples.
    """

    #: Observations needed before the GPs say anything.
    MIN_OBSERVATIONS = 3

    def __init__(
        self,
        space: SearchSpace,
        spec: ConstraintSpec,
        surrogate: str = "exact",
        surrogate_features: int = DEFAULT_FEATURES,
        surrogate_switch_at: int = DEFAULT_SWITCH_AT,
    ):
        self.space = space
        self.spec = spec
        #: Surrogate tier of the constraint GPs (same knobs as the
        #: objective surrogate; ``exact`` reproduces the seed path).
        self.surrogate = surrogate
        self.surrogate_features = surrogate_features
        self.surrogate_switch_at = surrogate_switch_at
        self._X: list[np.ndarray] = []
        self._power: list[float] = []
        self._memory: list[float] = []
        self._latency: list[float] = []
        self._power_gp: GaussianProcess | None = None
        self._memory_gp: GaussianProcess | None = None
        self._latency_gp: GaussianProcess | None = None

    @property
    def n_observations(self) -> int:
        """Constraint observations recorded so far."""
        return len(self._X)

    def observe(
        self,
        config: Mapping,
        power_w: float | None,
        memory_bytes: float | None,
        latency_s: float | None = None,
    ) -> None:
        """Record the hardware measurement of an evaluated point."""
        self._X.append(self.space.encode(config))
        self._power.append(np.nan if power_w is None else float(power_w))
        self._memory.append(
            np.nan if memory_bytes is None else float(memory_bytes)
        )
        self._latency.append(
            np.nan if latency_s is None else float(latency_s)
        )

    def refit(self, rng: np.random.Generator | None = None) -> None:
        """Refit the constraint GPs on everything observed so far."""
        rng = rng or np.random.default_rng(0)
        X = np.asarray(self._X)
        self._power_gp = self._fit_one(
            X, np.asarray(self._power), self.spec.power_budget_w, rng
        )
        self._memory_gp = self._fit_one(
            X, np.asarray(self._memory), self.spec.memory_budget_bytes, rng
        )
        self._latency_gp = self._fit_one(
            X, np.asarray(self._latency), self.spec.latency_budget_s, rng
        )

    def _fit_one(
        self,
        X: np.ndarray,
        values: np.ndarray,
        budget: float | None,
        rng: np.random.Generator,
    ) -> GaussianProcess | None:
        if budget is None:
            return None
        mask = ~np.isnan(values)
        if mask.sum() < self.MIN_OBSERVATIONS:
            return None
        gp = make_surrogate(
            self.surrogate,
            self.space.dimension,
            n_features=self.surrogate_features,
            switch_at=self.surrogate_switch_at,
        )
        gp.fit(X[mask], values[mask], restarts=1, rng=rng)
        return gp

    def _probability_one(
        self,
        gp: GaussianProcess | None,
        budget: float | None,
        x: np.ndarray,
    ) -> float:
        if budget is None:
            return 1.0
        if gp is None:
            # Uninformative until enough observations exist.
            return 1.0
        mean, var = gp.predict_noisy(x[None, :])
        sigma = max(float(np.sqrt(var[0])), 1e-9)
        return float(norm.cdf((budget - float(mean[0])) / sigma))

    def satisfaction_probability(self, config: Mapping) -> float:
        """``Pr(constraints satisfied at config)`` under the learned GPs."""
        x = self.space.encode(config)
        probability = self._probability_one(
            self._power_gp, self.spec.power_budget_w, x
        )
        probability *= self._probability_one(
            self._memory_gp, self.spec.memory_budget_bytes, x
        )
        probability *= self._probability_one(
            self._latency_gp, self.spec.latency_budget_s, x
        )
        return probability

    def indicator(self, config: Mapping, threshold: float = 0.5) -> bool:
        """Probabilistic indicator: satisfied with probability > threshold."""
        return self.satisfaction_probability(config) > threshold

    # -- batch evaluation ------------------------------------------------------

    def satisfaction_probability_batch(
        self, configs: Sequence[Mapping]
    ) -> np.ndarray:
        """:meth:`satisfaction_probability` over a candidate set.

        One GP posterior solve per *constraint* instead of one per config:
        the candidate encodings are stacked and pushed through
        ``predict_noisy`` in a single call, and the Gaussian tail
        probabilities multiply across constraints as vectors.  The
        linear-algebra kernels agree with the per-point path to the last
        ulp (same triangular solves, batched over columns), so callers may
        mix scalar and batch scoring freely.
        """
        n = len(configs)
        probability = np.ones(n, dtype=float)
        if n == 0:
            return probability
        X = self.space.encode_many(configs)
        for gp, budget in (
            (self._power_gp, self.spec.power_budget_w),
            (self._memory_gp, self.spec.memory_budget_bytes),
            (self._latency_gp, self.spec.latency_budget_s),
        ):
            if budget is None or gp is None:
                # Inactive or not-yet-informative constraint: factor 1.
                continue
            mean, var = gp.predict_noisy(X)
            sigma = np.maximum(np.sqrt(var), 1e-9)
            probability *= norm.cdf((budget - mean) / sigma)
        return probability

    def indicator_batch(
        self, configs: Sequence[Mapping], threshold: float = 0.5
    ) -> np.ndarray:
        """:meth:`indicator` over a candidate set."""
        return self.satisfaction_probability_batch(configs) > threshold
