"""Early termination of diverging training runs (paper Section 3.2).

"Candidate architectures that diverge during training can be quickly
identified only after a few training epochs ... Instead of predicting for
converging cases, we identify diverging cases, allowing the optimization
process to discard low-performance samples."

:class:`EarlyTermination` is the paper's detector — deliberately
conservative: it only fires when, after a handful of epochs, the error has
not moved a minimum fraction below chance level (the signature of Figure 3
right).  Slowly converging runs pass, so the policy never "predicts the
final test error".

:class:`CurveExtrapolationTermination` is the alternative the paper
contrasts against (Domhan et al. [18]): extrapolate the learning curve and
kill runs whose *predicted final error* misses a target.  The paper warns
this "could suffer from overestimation issues, introducing artifacts to
the probabilistic model" — implementing both lets the ablation bench
measure that trade-off (the extrapolator falsely kills slow convergers the
divergence detector spares).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EarlyTermination", "CurveExtrapolationTermination"]


@dataclass(frozen=True)
class EarlyTermination:
    """Divergence-detection policy pluggable into the training simulator."""

    #: Error level a diverged run hovers at (the dataset's chance error).
    chance_error: float
    #: Epoch at which the check first runs.  The default suits benchmarks
    #: that leave the chance plateau within a couple of epochs (MNIST,
    #: CIFAR-10); scale it up for slow-converging workloads — an ImageNet
    #: run with a 10-40-epoch time constant needs ``check_epoch`` around 10
    #: or every healthy run looks stuck at chance.
    check_epoch: int = 3
    #: Minimum fractional improvement below chance required to keep going.
    min_improvement: float = 0.15

    def __post_init__(self) -> None:
        # All checks are positive assertions so NaN (which fails every
        # comparison) is rejected rather than slipping through a `< N`.
        if not (0.0 < self.chance_error <= 1.0):
            raise ValueError("chance_error must be in (0, 1]")
        if not (self.check_epoch >= 1):
            raise ValueError("check_epoch must be >= 1")
        if not (0.0 < self.min_improvement < 1.0):
            raise ValueError("min_improvement must be in (0, 1)")

    @property
    def threshold(self) -> float:
        """Error above which a run is declared diverging at the check."""
        return self.chance_error * (1.0 - self.min_improvement)

    def should_stop(self, epoch: int, curve: np.ndarray) -> bool:
        """Stop-callback for :meth:`repro.trainsim.TrainingSimulator.train`.

        Returns ``True`` when, at or after the check epoch, the best error
        seen so far has not dropped below the divergence threshold.

        Defers (returns ``False``) on empty or all-NaN curves: rung
        scheduling can poll the detector at segment boundaries with
        shorter windows than the full loop would, and a window without a
        usable observation must never kill — or crash — the run.  NaN
        entries are masked, so a diverger is still caught from its finite
        observations.
        """
        if epoch < self.check_epoch:
            return False
        curve = np.asarray(curve, dtype=float)
        finite = curve[np.isfinite(curve)]
        if finite.size == 0:
            return False
        return float(np.min(finite)) > self.threshold


@dataclass(frozen=True)
class CurveExtrapolationTermination:
    """Kill runs whose *extrapolated* final error misses a target [18].

    After ``check_epoch`` observations, fit the exponential-decay family
    ``y(e) = c + (y1 - c) * exp(-(e - 1) / tau)`` to the curve seen so far
    (grid over the asymptote ``c``, closed-form ``tau`` per candidate) and
    terminate when the predicted error at ``horizon_epochs`` exceeds
    ``target_error``.

    This is the "predict the final test error" strategy the paper avoids:
    with only a few noisy epochs the asymptote is badly identified, so
    slow-but-good runs get over-estimated and killed.
    """

    #: Error level the run must be predicted to beat.
    target_error: float
    #: Full schedule length the prediction extrapolates to.
    horizon_epochs: int
    #: Observations required before extrapolating.
    check_epoch: int = 5
    #: Asymptote candidates examined per fit.
    grid_size: int = 24

    def __post_init__(self) -> None:
        # Positive assertions, for the same NaN-rejection reason as above.
        if not (0.0 < self.target_error < 1.0):
            raise ValueError("target_error must be in (0, 1)")
        if not (self.horizon_epochs >= 2):
            raise ValueError("horizon must be >= 2 epochs")
        if not (self.check_epoch >= 3):
            raise ValueError("need at least 3 observations to fit")
        if not (self.grid_size >= 2):
            raise ValueError("grid_size must be >= 2")

    def predict_final_error(self, curve: np.ndarray) -> float:
        """Extrapolated error at the horizon from the partial curve.

        NaN/inf observations are masked out of the fit (their epoch
        positions are kept, so the decay time constant stays calibrated);
        when fewer than three finite observations remain the prediction
        is undecidable and ``nan`` is returned — :meth:`should_stop`
        treats that as "defer".  Fewer than three observations *total* is
        a caller error and still raises.
        """
        curve = np.asarray(curve, dtype=float)
        if curve.size < 3:
            raise ValueError("need at least 3 observations")
        epochs = np.arange(1, curve.size + 1, dtype=float)
        finite = np.isfinite(curve)
        if int(finite.sum()) < 3:
            return float("nan")
        curve = curve[finite]
        epochs = epochs[finite]
        y1 = curve[0]
        t0 = epochs[0]
        best_sse = np.inf
        best_prediction = float(curve[-1])
        floor = max(1e-4, float(np.min(curve)) * 0.2)
        for c in np.geomspace(floor, max(floor * 1.01, y1 * 0.999), self.grid_size):
            gap = curve - c
            start_gap = y1 - c
            if start_gap <= 0 or np.any(gap <= 0):
                continue
            # Closed-form least squares for 1/tau on the log-linear form.
            z = np.log(gap / start_gap)
            t = epochs - t0
            denominator = float(t @ t)
            if denominator == 0:
                continue
            rate = -float(t @ z) / denominator
            if rate <= 0:
                continue
            fitted = c + start_gap * np.exp(-rate * t)
            sse = float(np.sum((fitted - curve) ** 2))
            if sse < best_sse:
                best_sse = sse
                best_prediction = c + start_gap * np.exp(
                    -rate * (self.horizon_epochs - t0)
                )
        return float(best_prediction)

    def should_stop(self, epoch: int, curve: np.ndarray) -> bool:
        """Stop-callback: kill when the extrapolated error misses target.

        Defers on windows the extrapolator cannot fit — fewer than three
        observations (rung boundaries can poll short prefixes) or a
        non-finite prediction (all-NaN windows) — rather than raising.
        """
        if epoch < self.check_epoch:
            return False
        curve = np.asarray(curve, dtype=float)
        if curve.size < 3:
            return False
        prediction = self.predict_final_error(curve)
        if not np.isfinite(prediction):
            return False
        return prediction > self.target_error
