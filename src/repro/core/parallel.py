"""The batch-parallel evaluation engine.

HyperPower's economics (paper Section 3, Figure 2) put constraint checks
at milliseconds and trainings at minutes; once screening is vectorised the
remaining bottleneck is the trainings themselves.  This module parallelises
them without giving up the framework's determinism guarantees:

* :class:`EvaluationPool` dispatches accepted proposals to a configurable
  worker backend — ``serial`` (in-process loop), ``thread``
  (:class:`~concurrent.futures.ThreadPoolExecutor`) or ``process``
  (:class:`~concurrent.futures.ProcessPoolExecutor`).  Every trial gets a
  deterministic seed derived from the pool seed and a submission counter,
  and is evaluated through :meth:`~repro.core.objective.NNObjective.
  evaluate_seeded`, so all three backends produce bit-identical outcomes
  in submission order.
* :class:`TrialCache` memoises outcomes under a canonical configuration
  hash, so duplicate proposals — common under Rand-Walk (which hovers
  around its incumbent) and grid search (which revisits coarse grids) —
  cost a hash probe instead of a training.
* Simulated-clock accounting models *q-parallel wall time*: a batch of
  fresh trainings advances the clock by the ``max`` of their costs (they
  run concurrently), not the sum; cache hits advance it by the near-zero
  lookup cost.  The driver (:class:`~repro.core.hyperpower.HyperPower`)
  applies this via :meth:`EvaluationPool.batch_wall_time_s`.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from .objective import EvaluationOutcome, NNObjective

__all__ = [
    "BACKENDS",
    "canonical_config_key",
    "TrialCache",
    "PoolOutcome",
    "EvaluationPool",
]

#: Supported worker backends, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")


def _canonical_value(value):
    """Normalise a configuration value for hashing (NumPy scalars included)."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, str):
        return value
    raise TypeError(
        f"unhashable configuration value {value!r} of type {type(value).__name__}"
    )


def canonical_config_key(config: Mapping) -> str:
    """A canonical hash of a configuration.

    Stable under dict ordering (keys are sorted) and NumPy scalar types
    (values are normalised to native Python numbers before serialisation);
    floats serialise via their shortest round-trip repr, so two configs
    hash equal exactly when they are value-equal.
    """
    payload = json.dumps(
        {str(k): _canonical_value(v) for k, v in config.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TrialCache:
    """Memoised evaluation outcomes keyed by canonical configuration hash."""

    def __init__(self, max_size: int | None = None):
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 (or None for unbounded)")
        self.max_size = max_size
        self._store: dict[str, EvaluationOutcome] = {}
        #: Lookup counters, surfaced in run results and reports.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 before any lookup."""
        return 0.0 if self.lookups == 0 else self.hits / self.lookups

    @staticmethod
    def key(config: Mapping) -> str:
        """The canonical hash this cache keys on."""
        return canonical_config_key(config)

    def get(self, key: str) -> EvaluationOutcome | None:
        """Look a key up, counting the hit or miss."""
        outcome = self._store.get(key)
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def lookup(self, config: Mapping) -> EvaluationOutcome | None:
        """Look a configuration up, counting the hit or miss."""
        return self.get(self.key(config))

    def put(self, key: str, outcome: EvaluationOutcome) -> None:
        """Store an outcome, evicting the oldest entry when full (FIFO)."""
        if self.max_size is not None and key not in self._store:
            while len(self._store) >= self.max_size:
                self._store.pop(next(iter(self._store)))
        self._store[key] = outcome

    def store(self, config: Mapping, outcome: EvaluationOutcome) -> None:
        """Store a configuration's outcome."""
        self.put(self.key(config), outcome)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._store.clear()
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class PoolOutcome:
    """One batch slot's result: the outcome plus its provenance."""

    #: The evaluation outcome (fresh or replayed from the cache).
    outcome: EvaluationOutcome
    #: Whether the result came from the trial cache.
    cached: bool
    #: The deterministic seed the trial ran under (None for cache hits).
    seed: int | None


def _evaluate_task(
    objective: NNObjective, config: Mapping, seed: int, early_term: bool
) -> EvaluationOutcome:
    """Module-level task body so the process backend can pickle it."""
    return objective.evaluate_seeded(config, seed, early_term=early_term)


class EvaluationPool:
    """Dispatch accepted proposals to a worker backend, deterministically.

    Parameters
    ----------
    objective:
        The objective whose :meth:`~repro.core.objective.NNObjective.
        evaluate_seeded` evaluates each trial.  For the ``process`` backend
        it must be picklable (all simulator components are).
    backend:
        ``'serial'``, ``'thread'`` or ``'process'``.
    workers:
        ``q``, the number of concurrent trainings — both the executor's
        worker count and the batch size the driver proposes per round.
    cache:
        Optional :class:`TrialCache`; ``None`` disables caching.
    seed:
        Root of the per-trial seed stream.  Trial ``i`` (in submission
        order, cache hits excluded from the numbering's RNG use but not
        its count) runs under ``SeedSequence([seed, i])``, so results are
        independent of the backend and of worker scheduling.
    """

    def __init__(
        self,
        objective: NNObjective,
        backend: str = "serial",
        workers: int = 1,
        cache: TrialCache | None = None,
        seed: int = 0,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.objective = objective
        self.backend = backend
        self.workers = int(workers)
        self.cache = cache
        self.seed = int(seed)
        #: This pool's own lookup counters.  They track the same events as
        #: the cache's, but only for lookups issued *through this pool* —
        #: the distinction matters when one cache is shared across runs.
        self.hits = 0
        self.misses = 0
        self._counter = 0
        self._executor: Executor | None = None

    # -- lifecycle -------------------------------------------------------------

    def _get_executor(self) -> Executor:
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut the executor down (no-op for the serial backend)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "EvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation ------------------------------------------------------------

    def _next_seed(self) -> int:
        """The next trial's deterministic seed (submission-order counter)."""
        seed = int(
            np.random.SeedSequence([self.seed, self._counter]).generate_state(1)[0]
        )
        self._counter += 1
        return seed

    def evaluate_batch(
        self, configs: Sequence[Mapping], early_term: bool = False
    ) -> list[PoolOutcome]:
        """Evaluate a batch of accepted proposals; results in input order.

        Cache hits are resolved without dispatching; duplicate configs
        *within* the batch share one evaluation (the later slots count as
        cache hits).  Fresh evaluations get deterministic per-trial seeds
        and run on the configured backend.
        """
        n = len(configs)
        outcomes: list[PoolOutcome | None] = [None] * n
        # (slot, config, seed) of fresh work, plus the key each slot fills.
        fresh: list[tuple[int, Mapping, int]] = []
        pending: dict[str, list[int]] = {}  # key -> duplicate slots
        keys: list[str | None] = [None] * n

        for i, config in enumerate(configs):
            if self.cache is None:
                fresh.append((i, config, self._next_seed()))
                continue
            key = self.cache.key(config)
            keys[i] = key
            if key in pending:
                # Duplicate within this batch: reuse the in-flight result.
                self.cache.hits += 1
                self.hits += 1
                pending[key].append(i)
                continue
            cached = self.cache.get(key)
            if cached is not None:
                self.hits += 1
                outcomes[i] = PoolOutcome(cached, cached=True, seed=None)
            else:
                self.misses += 1
                pending[key] = []
                fresh.append((i, config, self._next_seed()))

        results = self._run_fresh(fresh, early_term)
        for (slot, config, seed), outcome in zip(fresh, results):
            outcomes[slot] = PoolOutcome(outcome, cached=False, seed=seed)
            if self.cache is not None:
                key = keys[slot]
                self.cache.put(key, outcome)
                for duplicate in pending.get(key, ()):
                    outcomes[duplicate] = PoolOutcome(
                        outcome, cached=True, seed=None
                    )
        return outcomes  # type: ignore[return-value]

    def _run_fresh(
        self, tasks: list[tuple[int, Mapping, int]], early_term: bool
    ) -> list[EvaluationOutcome]:
        if not tasks:
            return []
        if self.backend == "serial":
            return [
                _evaluate_task(self.objective, config, seed, early_term)
                for _, config, seed in tasks
            ]
        executor = self._get_executor()
        futures = [
            executor.submit(_evaluate_task, self.objective, config, seed, early_term)
            for _, config, seed in tasks
        ]
        return [f.result() for f in futures]

    # -- q-parallel time accounting --------------------------------------------

    @staticmethod
    def batch_wall_time_s(
        outcomes: Sequence[PoolOutcome], cache_lookup_s: float
    ) -> float:
        """Simulated wall time of one batch under q-parallel execution.

        Fresh trainings run concurrently on the workers, so they cost the
        ``max`` of their individual costs — not the sum the sequential
        driver would charge.  Cache hits are serial hash probes at
        ``cache_lookup_s`` each.
        """
        fresh = [po.outcome.cost_s for po in outcomes if not po.cached]
        n_cached = sum(1 for po in outcomes if po.cached)
        return n_cached * cache_lookup_s + (max(fresh) if fresh else 0.0)
