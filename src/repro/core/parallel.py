"""The batch-parallel evaluation engine.

HyperPower's economics (paper Section 3, Figure 2) put constraint checks
at milliseconds and trainings at minutes; once screening is vectorised the
remaining bottleneck is the trainings themselves.  This module parallelises
them without giving up the framework's determinism guarantees:

* :class:`EvaluationPool` dispatches accepted proposals to a configurable
  worker backend — ``serial`` (in-process loop), ``thread``
  (:class:`~concurrent.futures.ThreadPoolExecutor`) or ``process``
  (:class:`~concurrent.futures.ProcessPoolExecutor`).  Every trial gets a
  deterministic seed derived from the pool seed and a submission counter,
  and is evaluated through :meth:`~repro.core.objective.NNObjective.
  evaluate_seeded`, so all three backends produce bit-identical outcomes
  in submission order.
* :class:`TrialCache` memoises outcomes under a canonical configuration
  hash, so duplicate proposals — common under Rand-Walk (which hovers
  around its incumbent) and grid search (which revisits coarse grids) —
  cost a hash probe instead of a training.
* Simulated-clock accounting models *q-parallel wall time*: a batch of
  fresh trainings advances the clock by the ``max`` of their costs (they
  run concurrently), not the sum; cache hits advance it by the near-zero
  lookup cost.  The driver (:class:`~repro.core.hyperpower.HyperPower`)
  applies this via :meth:`EvaluationPool.batch_wall_time_s`.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import math
from collections.abc import Mapping, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..telemetry.metrics import NOOP_METRICS
from .faults import (
    HANG,
    TIMEOUT,
    FaultEvent,
    FaultInjector,
    RetryPolicy,
    TrialFault,
    retry_seed,
)
from .fidelity import segment_seed
from .objective import EvaluationOutcome, NNObjective

__all__ = [
    "BACKENDS",
    "canonical_config_key",
    "TrialCache",
    "PoolOutcome",
    "AsyncCompletion",
    "EvaluationPool",
]

#: Supported worker backends, in increasing isolation order.
BACKENDS = ("serial", "thread", "process")


def _canonical_value(value):
    """Normalise a configuration value for hashing (NumPy scalars included)."""
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, str):
        return value
    raise TypeError(
        f"unhashable configuration value {value!r} of type {type(value).__name__}"
    )


def canonical_config_key(config: Mapping) -> str:
    """A canonical hash of a configuration.

    Stable under dict ordering (keys are sorted) and NumPy scalar types
    (values are normalised to native Python numbers before serialisation);
    floats serialise via their shortest round-trip repr, so two configs
    hash equal exactly when they are value-equal.
    """
    payload = json.dumps(
        {str(k): _canonical_value(v) for k, v in config.items()},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TrialCache:
    """Memoised evaluation outcomes keyed by canonical configuration hash."""

    def __init__(self, max_size: int | None = None):
        if max_size is not None and max_size < 1:
            raise ValueError("max_size must be >= 1 (or None for unbounded)")
        self.max_size = max_size
        self._store: dict[str, EvaluationOutcome] = {}
        #: Effective curve seed per key (rung scheduling resumes a cached
        #: partial result by regenerating its curve from this seed).
        self._seeds: dict[str, int] = {}
        #: Lookup counters, surfaced in run results and reports.
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit; 0.0 before any lookup."""
        return 0.0 if self.lookups == 0 else self.hits / self.lookups

    @staticmethod
    def key(config: Mapping, epochs: int | None = None) -> str:
        """The canonical hash this cache keys on.

        ``epochs`` tags the key with a fidelity (the cumulative epoch
        budget a rung segment trained to), so partial results never
        masquerade as full-schedule outcomes — or vice versa.
        """
        base = canonical_config_key(config)
        return base if epochs is None else f"{base}#e{int(epochs)}"

    def get(self, key: str) -> EvaluationOutcome | None:
        """Look a key up, counting the hit or miss."""
        outcome = self._store.get(key)
        if outcome is None:
            self.misses += 1
        else:
            self.hits += 1
        return outcome

    def lookup(self, config: Mapping) -> EvaluationOutcome | None:
        """Look a configuration up, counting the hit or miss."""
        return self.get(self.key(config))

    def put(self, key: str, outcome: EvaluationOutcome) -> None:
        """Store an outcome, evicting the oldest entry when full (FIFO).

        Raises
        ------
        ValueError
            When the outcome's error is non-finite or its measurement is
            missing.  A NaN/inf error (or a degraded, measurement-less
            outcome) must never enter the cache: warm-cache runs would
            replay the poisoned observation forever.
        """
        if not math.isfinite(outcome.error):
            raise ValueError(
                f"refusing to cache non-finite error {outcome.error!r}"
            )
        if outcome.measurement is None or outcome.measurement_failed:
            raise ValueError(
                "refusing to cache a degraded outcome (failed measurement)"
            )
        if self.max_size is not None and key not in self._store:
            while len(self._store) >= self.max_size:
                evicted = next(iter(self._store))
                self._store.pop(evicted)
                self._seeds.pop(evicted, None)
        self._store[key] = outcome

    def store(self, config: Mapping, outcome: EvaluationOutcome) -> None:
        """Store a configuration's outcome."""
        self.put(self.key(config), outcome)

    def note_seed(self, key: str, seed: int) -> None:
        """Record the effective curve seed a cached outcome ran under.

        A rung scheduler resuming a *cached* partial result must regenerate
        the same curve; the seed travels with the cache entry rather than
        the outcome so classic entries stay untouched.
        """
        self._seeds[key] = int(seed)

    def seed_for(self, key: str) -> int | None:
        """The noted effective curve seed for ``key`` (None if unknown)."""
        return self._seeds.get(key)

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._store.clear()
        self._seeds.clear()
        self.hits = 0
        self.misses = 0


@dataclass(frozen=True)
class PoolOutcome:
    """One batch slot's result: the outcome plus its provenance."""

    #: The evaluation outcome (fresh or replayed from the cache); ``None``
    #: when the trial exhausted its retry budget and FAILED.
    outcome: EvaluationOutcome | None
    #: Whether the result came from the trial cache.
    cached: bool
    #: The deterministic seed the trial ran under (None for cache hits and
    #: for within-batch duplicates of a failed evaluation).
    seed: int | None
    #: Evaluation attempts consumed (0 for cache hits and duplicates).
    attempts: int = 1
    #: Fault kinds hit across the attempts, in order.
    faults: tuple[str, ...] = ()
    #: Fault kind that exhausted the retry budget (None unless FAILED).
    failure_kind: str | None = None
    #: Simulated time charged to failed attempts plus backoff waits, s.
    retry_s: float = 0.0
    #: The backoff-wait portion of ``retry_s`` — simulated seconds the
    #: worker slot sat *idle* between attempts, not doing real work.
    backoff_s: float = 0.0
    #: Cumulative epoch budget this slot trained to (None on the classic
    #: full-fidelity paths, which leave the journal format untouched).
    epochs: int | None = None
    #: Epoch a rung continuation resumed from (0 = trained from scratch).
    start_epoch: int = 0
    #: Rung stage the trial terminated at (None off the rung path).
    rung: int | None = None
    #: Whether rank-based rung scheduling culled this trial.
    culled: bool = False

    @property
    def failed(self) -> bool:
        """Whether this slot is a FAILED trial (retry budget exhausted)."""
        return self.outcome is None and not self.cached

    @property
    def total_cost_s(self) -> float:
        """Full simulated cost of this slot: final attempt + retries, s."""
        base = 0.0 if self.outcome is None else self.outcome.cost_s
        return base + self.retry_s


@dataclass
class _FreshResult:
    """Internal per-task accounting of the retry loop."""

    outcome: EvaluationOutcome | None = None
    attempts: int = 0
    faults: list[str] = field(default_factory=list)
    failure_kind: str | None = None
    retry_s: float = 0.0
    backoff_s: float = 0.0


@dataclass(frozen=True)
class AsyncCompletion:
    """One finished asynchronous trial, popped in completion order."""

    #: Submission-order ticket returned by :meth:`EvaluationPool.submit`.
    ticket: int
    #: Simulated time at which the trial finished and freed its worker.
    finish_s: float
    #: The trial's result, in the same shape the batch path produces.
    outcome: PoolOutcome
    #: Worker-busy simulated seconds (backoff waits excluded), for
    #: occupancy accounting.
    busy_s: float


@dataclass
class _Inflight:
    """Bookkeeping for a fresh asynchronous dispatch until it is popped."""

    result: _FreshResult
    key: str | None
    finish_s: float
    #: Effective curve seed to note on the cache entry at pop time (rung
    #: segments only; the classic paths never set it).
    seed: int | None = None


def _evaluate_task(
    objective: NNObjective,
    config: Mapping,
    seed: int,
    early_term: bool,
    fault=None,
) -> EvaluationOutcome | FaultEvent:
    """Module-level task body so the process backend can pickle it.

    Injected faults raised by the objective are converted into plain
    :class:`~repro.core.faults.FaultEvent` records here, *inside* the
    worker, so no exception ever has to pickle across an executor
    boundary.
    """
    try:
        return objective.evaluate_seeded(
            config, seed, early_term=early_term, fault=fault
        )
    except TrialFault as exc:
        return FaultEvent(kind=exc.kind, cost_s=exc.cost_s)


def _evaluate_segment_task(
    objective: NNObjective,
    config: Mapping,
    seed: int,
    start_epoch: int,
    epochs: int,
    early_term: bool,
    fault=None,
) -> EvaluationOutcome | FaultEvent:
    """Picklable rung-segment counterpart of :func:`_evaluate_task`."""
    try:
        return objective.evaluate_segment(
            config,
            seed,
            start_epoch=start_epoch,
            epochs=epochs,
            early_term=early_term,
            fault=fault,
        )
    except TrialFault as exc:
        return FaultEvent(kind=exc.kind, cost_s=exc.cost_s)


class EvaluationPool:
    """Dispatch accepted proposals to a worker backend, deterministically.

    Parameters
    ----------
    objective:
        The objective whose :meth:`~repro.core.objective.NNObjective.
        evaluate_seeded` evaluates each trial.  For the ``process`` backend
        it must be picklable (all simulator components are).
    backend:
        ``'serial'``, ``'thread'`` or ``'process'``.
    workers:
        ``q``, the number of concurrent trainings — both the executor's
        worker count and the batch size the driver proposes per round.
    cache:
        Optional :class:`TrialCache`; ``None`` disables caching.
    seed:
        Root of the per-trial seed stream.  Trial ``i`` (in submission
        order, cache hits excluded from the numbering's RNG use but not
        its count) runs under ``SeedSequence([seed, i])``, so results are
        independent of the backend and of worker scheduling.
    injector:
        Optional deterministic :class:`~repro.core.faults.FaultInjector`.
        ``None`` (or an injector with all rates zero) leaves every code
        path and random stream byte-identical to a fault-free pool.
    retry:
        The :class:`~repro.core.faults.RetryPolicy` governing per-trial
        timeouts, retry budgets and backoff charges; defaults to
        ``RetryPolicy()``.
    """

    def __init__(
        self,
        objective: NNObjective,
        backend: str = "serial",
        workers: int = 1,
        cache: TrialCache | None = None,
        seed: int = 0,
        injector: FaultInjector | None = None,
        retry: RetryPolicy | None = None,
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.objective = objective
        self.backend = backend
        self.workers = int(workers)
        self.cache = cache
        self.seed = int(seed)
        self.injector = injector
        self.retry = RetryPolicy() if retry is None else retry
        #: This pool's own lookup counters.  They track the same events as
        #: the cache's, but only for lookups issued *through this pool* —
        #: the distinction matters when one cache is shared across runs.
        self.hits = 0
        self.misses = 0
        self._counter = 0
        self._executor: Executor | None = None
        #: Asynchronous-mode state: a completion-ordered event heap keyed
        #: ``(finish_s, ticket)`` plus the in-flight fresh dispatches by
        #: canonical key (for duplicate sharing and deferred cache puts).
        self._events: list = []
        self._inflight_by_key: dict[str, _Inflight] = {}
        self._ticket = 0
        self.bind_metrics(NOOP_METRICS)

    def bind_metrics(self, metrics) -> None:
        """Attach a metrics registry (the driver calls this).

        Pool metrics record only deterministic quantities — lookup counts,
        dispatch waves, occupancy fractions — so snapshots are identical
        across the serial/thread/process backends.  The ``pool.
        retry_wait_s`` backoff counter is created lazily on the first
        backoff charge, so fault-free runs snapshot exactly the metrics
        they always did.
        """
        self._metrics = metrics
        self._m_cache_hits = metrics.counter("cache.hits")
        self._m_cache_misses = metrics.counter("cache.misses")
        self._m_waves = metrics.counter("pool.waves")
        self._m_dispatched = metrics.counter("pool.dispatched")
        self._m_occupancy = metrics.histogram(
            "pool.occupancy", bounds=(0.25, 0.5, 0.75, 1.0)
        )
        self._m_retry_wait = None

    def _charge_retry_wait(self, seconds: float) -> None:
        """Count backoff sleeps separately from real work.

        Backoff is *waiting*, not computing: charging it to the occupancy
        accounting would make a stalling pool look busy.  It lands on its
        own ``pool.retry_wait_s`` counter instead, registered on first use
        so it only appears in runs that actually backed off.
        """
        if seconds <= 0:
            return
        if self._m_retry_wait is None:
            self._m_retry_wait = self._metrics.counter("pool.retry_wait_s")
        self._m_retry_wait.inc(seconds)

    # -- lifecycle -------------------------------------------------------------

    def _get_executor(self) -> Executor:
        if self._executor is None:
            if self.backend == "thread":
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut the executor down (no-op for the serial backend)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def __enter__(self) -> "EvaluationPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation ------------------------------------------------------------

    def _next_seed(self) -> int:
        """The next trial's deterministic seed (submission-order counter)."""
        seed = int(
            np.random.SeedSequence([self.seed, self._counter]).generate_state(1)[0]
        )
        self._counter += 1
        return seed

    def evaluate_batch(
        self,
        configs: Sequence[Mapping],
        early_term: bool = False,
        replay: Sequence | None = None,
    ) -> list[PoolOutcome]:
        """Evaluate a batch of accepted proposals; results in input order.

        Cache hits are resolved without dispatching; duplicate configs
        *within* the batch share one evaluation (the later slots count as
        cache hits).  Fresh evaluations get deterministic per-trial seeds
        and run on the configured backend, each under the retry policy:
        a faulted attempt is charged to ``retry_s`` (plus exponential
        backoff) and redispatched under a derived seed until it succeeds
        or the budget is exhausted, at which point the slot comes back as
        a FAILED :class:`PoolOutcome` instead of raising.

        ``replay`` substitutes journal-recorded results for the fresh
        dispatches (crash-safe resume): entries must expose ``seed``,
        ``outcome``, ``attempts``, ``faults``, ``failure_kind`` and
        ``retry_s``, in submission order.  All cache bookkeeping and the
        seed stream advance exactly as a live batch would, so the run
        continues bit-identically afterwards.
        """
        n = len(configs)
        outcomes: list[PoolOutcome | None] = [None] * n
        # (slot, config, seed) of fresh work, plus the key each slot fills.
        fresh: list[tuple[int, Mapping, int]] = []
        pending: dict[str, list[int]] = {}  # key -> duplicate slots
        keys: list[str | None] = [None] * n

        for i, config in enumerate(configs):
            if self.cache is None:
                fresh.append((i, config, self._next_seed()))
                continue
            key = self.cache.key(config)
            keys[i] = key
            if key in pending:
                # Duplicate within this batch: reuse the in-flight result.
                self.cache.hits += 1
                self.hits += 1
                self._m_cache_hits.inc()
                pending[key].append(i)
                continue
            cached = self.cache.get(key)
            if cached is not None:
                self.hits += 1
                self._m_cache_hits.inc()
                outcomes[i] = PoolOutcome(
                    cached, cached=True, seed=None, attempts=0
                )
            else:
                self.misses += 1
                self._m_cache_misses.inc()
                pending[key] = []
                fresh.append((i, config, self._next_seed()))

        if replay is None:
            results = self._run_fresh(fresh, early_term)
        else:
            results = self._replay_fresh(fresh, replay)
        for (slot, config, seed), res in zip(fresh, results):
            key = keys[slot]
            if res.outcome is None:
                outcomes[slot] = PoolOutcome(
                    None,
                    cached=False,
                    seed=seed,
                    attempts=res.attempts,
                    faults=tuple(res.faults),
                    failure_kind=res.failure_kind,
                    retry_s=res.retry_s,
                    backoff_s=res.backoff_s,
                )
                # Within-batch duplicates of a failed evaluation share the
                # failure but carry no charge of their own (the original
                # slot already paid for every attempt).
                for duplicate in pending.get(key, ()) if key else ():
                    outcomes[duplicate] = PoolOutcome(
                        None,
                        cached=False,
                        seed=None,
                        attempts=0,
                        faults=tuple(res.faults),
                        failure_kind=res.failure_kind,
                        retry_s=0.0,
                    )
                continue
            outcomes[slot] = PoolOutcome(
                res.outcome,
                cached=False,
                seed=seed,
                attempts=res.attempts,
                faults=tuple(res.faults),
                retry_s=res.retry_s,
                backoff_s=res.backoff_s,
            )
            if self.cache is not None:
                # Degraded (measurement-less) outcomes are never admitted:
                # a warm-cache run must not replay a sensor failure.
                if not res.outcome.measurement_failed and math.isfinite(
                    res.outcome.error
                ):
                    self.cache.put(key, res.outcome)
                for duplicate in pending.get(key, ()):
                    outcomes[duplicate] = PoolOutcome(
                        res.outcome, cached=True, seed=None, attempts=0
                    )
        return outcomes  # type: ignore[return-value]

    # -- fresh dispatch under the retry policy ---------------------------------

    def _hang_charge_s(self) -> float:
        """Simulated time a hung attempt wastes before being reaped, s."""
        if self.retry.timeout_s is not None:
            return self.retry.timeout_s
        if self.injector is not None:
            return self.injector.hang_s
        # Hangs only arise from an injector; unreachable without one.
        return 1800.0  # pragma: no cover

    def _run_fresh(
        self,
        tasks: list[tuple[int, Mapping, int]],
        early_term: bool,
        wave_metrics: bool = True,
    ) -> list[_FreshResult]:
        """Run fresh tasks with deterministic fault injection and retries.

        Returns one :class:`_FreshResult` per task, aligned with input
        order.  Attempt ``a`` of the task seeded ``s`` runs under
        ``retry_seed(s, a)`` with the fault plan ``injector.draw(s, a)``
        — both pure functions of seeds — so the outcome (including every
        failure) is identical on all three backends.

        ``wave_metrics=False`` (the asynchronous path, where "waves" are
        single-trial retries rather than batch rounds) skips the per-wave
        wave/occupancy observations; dispatch counts are always recorded.
        """
        if not tasks:
            return []
        n = len(tasks)
        states = [_FreshResult() for _ in range(n)]
        active = list(range(n))
        while active:
            dispatch = []
            for i in active:
                attempt = states[i].attempts
                _, config, trial_seed = tasks[i]
                fault = (
                    self.injector.draw(trial_seed, attempt)
                    if self.injector is not None
                    else None
                )
                dispatch.append(
                    (i, config, retry_seed(trial_seed, attempt), fault)
                )
            if wave_metrics:
                self._m_waves.inc()
                self._m_occupancy.observe(len(dispatch) / self.workers)
            self._m_dispatched.inc(len(dispatch))
            raw = self._dispatch(dispatch, early_term)
            still_active = []
            for (i, _, _, _), res in zip(dispatch, raw):
                state = states[i]
                state.attempts += 1
                event = None
                if isinstance(res, FaultEvent):
                    charge = (
                        self._hang_charge_s()
                        if res.kind == HANG
                        else res.cost_s
                    )
                    event = (res.kind, charge)
                elif (
                    self.retry.timeout_s is not None
                    and res.cost_s > self.retry.timeout_s
                ):
                    # Natural timeout: the evaluation would have outlived
                    # the per-trial deadline; the pool reaps it there.
                    event = (TIMEOUT, self.retry.timeout_s)
                if event is None:
                    state.outcome = res
                    continue
                kind, charge = event
                state.faults.append(kind)
                if state.attempts >= self.retry.max_attempts:
                    state.failure_kind = kind
                    state.retry_s += charge
                else:
                    backoff = self.retry.backoff_s(state.attempts)
                    state.retry_s += charge + backoff
                    state.backoff_s += backoff
                    self._charge_retry_wait(backoff)
                    still_active.append(i)
            active = still_active
        return states

    def _dispatch(
        self, dispatch: list[tuple[int, Mapping, int, object]], early_term: bool
    ) -> list[EvaluationOutcome | FaultEvent]:
        """One wave of task executions on the configured backend."""
        if self.backend == "serial":
            return [
                _evaluate_task(self.objective, config, seed, early_term, fault)
                for _, config, seed, fault in dispatch
            ]
        executor = self._get_executor()
        futures = [
            executor.submit(
                _evaluate_task, self.objective, config, seed, early_term, fault
            )
            for _, config, seed, fault in dispatch
        ]
        return [f.result() for f in futures]

    def _replay_fresh(
        self, tasks: list[tuple[int, Mapping, int]], replay: Sequence
    ) -> list[_FreshResult]:
        """Reconstruct fresh results from journal entries (no dispatch)."""
        if len(replay) != len(tasks):
            raise ValueError(
                f"journal replay mismatch: round has {len(tasks)} fresh "
                f"evaluations but the journal recorded {len(replay)}"
            )
        results = []
        for (_, _, seed), entry in zip(tasks, replay):
            if int(entry.seed) != int(seed):
                raise ValueError(
                    "journal replay mismatch: recorded trial seed "
                    f"{entry.seed} != recomputed seed {seed} (was the run "
                    "resumed with different parameters?)"
                )
            results.append(
                _FreshResult(
                    outcome=entry.outcome,
                    attempts=int(entry.attempts),
                    faults=list(entry.faults),
                    failure_kind=entry.failure_kind,
                    retry_s=float(entry.retry_s),
                    backoff_s=float(getattr(entry, "backoff_s", 0.0)),
                )
            )
        return results

    # -- asynchronous (event-driven) dispatch ----------------------------------

    @property
    def n_inflight(self) -> int:
        """Trials submitted but not yet popped via :meth:`next_completion`."""
        return len(self._events)

    def submit(
        self,
        config: Mapping,
        now_s: float,
        early_term: bool = False,
        cache_lookup_s: float = 0.0,
        replay=None,
    ) -> int:
        """Dispatch one trial onto a worker slot at simulated time ``now_s``.

        The asynchronous counterpart of :meth:`evaluate_batch`: the trial's
        result (including its full retry/backoff history) is computed
        eagerly — it is a pure function of the submission-order seed — and
        an event is queued at the simulated time the trial will *finish*.
        :meth:`next_completion` pops events in completion order, freeing
        the slot the moment its trial ends instead of at a round barrier.

        Cache hits finish after one ``cache_lookup_s``; a duplicate of an
        *in-flight* config waits for the original dispatch and then reads
        its result at lookup cost (counted as a cache hit, exactly like a
        within-batch duplicate on the batch path).  The cache itself is
        only populated when the original completion is popped, so a
        submission never observes a result from its simulated future.

        ``replay`` is a ``{trial_seed: ReplayEval}`` mapping from a
        recovered journal; a fresh dispatch whose recomputed seed is in it
        substitutes the journaled result instead of re-executing (async
        completions journal out of submission order, so the lookup is by
        seed, not position).  Returns the trial's submission-order ticket.
        """
        if self.n_inflight >= self.workers:
            raise RuntimeError(
                f"all {self.workers} workers are busy; pop a completion "
                "before submitting more work"
            )
        ticket = self._ticket
        self._ticket += 1
        key = None if self.cache is None else self.cache.key(config)

        if key is not None and key in self._inflight_by_key:
            # Duplicate of an in-flight config: wait for it, then share.
            origin = self._inflight_by_key[key]
            self.cache.hits += 1
            self.hits += 1
            self._m_cache_hits.inc()
            res = origin.result
            if res.outcome is None:
                outcome = PoolOutcome(
                    None,
                    cached=False,
                    seed=None,
                    attempts=0,
                    faults=tuple(res.faults),
                    failure_kind=res.failure_kind,
                    retry_s=0.0,
                )
            else:
                outcome = PoolOutcome(
                    res.outcome, cached=True, seed=None, attempts=0
                )
            finish_s = max(origin.finish_s, now_s) + cache_lookup_s
            self._push_event(
                ticket, finish_s, outcome, busy_s=cache_lookup_s
            )
            return ticket

        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.hits += 1
                self._m_cache_hits.inc()
                outcome = PoolOutcome(
                    cached, cached=True, seed=None, attempts=0
                )
                self._push_event(
                    ticket,
                    now_s + cache_lookup_s,
                    outcome,
                    busy_s=cache_lookup_s,
                )
                return ticket
            self.misses += 1
            self._m_cache_misses.inc()

        seed = self._next_seed()
        replay_eval = None if replay is None else replay.get(int(seed))
        if replay_eval is not None:
            res = _FreshResult(
                outcome=replay_eval.outcome,
                attempts=int(replay_eval.attempts),
                faults=list(replay_eval.faults),
                failure_kind=replay_eval.failure_kind,
                retry_s=float(replay_eval.retry_s),
                backoff_s=float(getattr(replay_eval, "backoff_s", 0.0)),
            )
        else:
            res = self._run_fresh(
                [(0, config, seed)], early_term, wave_metrics=False
            )[0]
        outcome = PoolOutcome(
            res.outcome,
            cached=False,
            seed=seed,
            attempts=res.attempts,
            faults=tuple(res.faults),
            failure_kind=res.failure_kind,
            retry_s=res.retry_s,
            backoff_s=res.backoff_s,
        )
        finish_s = now_s + outcome.total_cost_s
        entry = _Inflight(result=res, key=key, finish_s=finish_s)
        if key is not None:
            self._inflight_by_key[key] = entry
        self._push_event(
            ticket,
            finish_s,
            outcome,
            busy_s=outcome.total_cost_s - res.backoff_s,
            entry=entry,
        )
        return ticket

    def submit_segment(
        self,
        config: Mapping,
        now_s: float,
        *,
        epochs: int,
        start_epoch: int = 0,
        seed: int | None = None,
        early_term: bool = False,
        cache_lookup_s: float = 0.0,
        replay=None,
    ) -> int:
        """Dispatch one rung segment onto a worker slot at ``now_s``.

        The multi-fidelity counterpart of :meth:`submit`: the trial trains
        from ``start_epoch`` to the cumulative budget ``epochs`` via
        :meth:`~repro.core.objective.NNObjective.evaluate_segment`.

        Rung-0 segments (``start_epoch == 0``) behave like classic
        submissions — deterministic seed from the submission counter,
        fidelity-keyed cache lookups and in-flight duplicate sharing,
        retries under derived seeds — except the cache key carries the
        epoch budget so a partial result never masquerades as a final.
        Continuations (``start_epoch > 0``) must pass the trial's pinned
        curve ``seed``: retries re-roll only the fault stream (via
        :func:`~repro.core.fidelity.segment_seed`) while the curve replays
        the checkpoint bit-exactly, and their results are never cached or
        shared (they are checkpoint-specific).

        ``replay`` maps ``(trial_seed, start_epoch)`` to journal entries —
        a trial appears once per rung segment, so the seed alone is not a
        unique key on this path.  Returns the submission-order ticket.
        """
        if self.n_inflight >= self.workers:
            raise RuntimeError(
                f"all {self.workers} workers are busy; pop a completion "
                "before submitting more work"
            )
        if start_epoch > 0 and seed is None:
            raise ValueError("continuations require the pinned trial seed")
        ticket = self._ticket
        self._ticket += 1
        key = None
        if self.cache is not None and start_epoch == 0:
            key = self.cache.key(config, epochs=epochs)

        if key is not None and key in self._inflight_by_key:
            origin = self._inflight_by_key[key]
            self.cache.hits += 1
            self.hits += 1
            self._m_cache_hits.inc()
            res = origin.result
            if res.outcome is None:
                outcome = PoolOutcome(
                    None,
                    cached=False,
                    seed=None,
                    attempts=0,
                    faults=tuple(res.faults),
                    failure_kind=res.failure_kind,
                    retry_s=0.0,
                    epochs=int(epochs),
                )
            else:
                outcome = PoolOutcome(
                    res.outcome,
                    cached=True,
                    seed=None,
                    attempts=0,
                    epochs=int(epochs),
                )
            finish_s = max(origin.finish_s, now_s) + cache_lookup_s
            self._push_event(ticket, finish_s, outcome, busy_s=cache_lookup_s)
            return ticket

        if key is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self.hits += 1
                self._m_cache_hits.inc()
                outcome = PoolOutcome(
                    cached, cached=True, seed=None, attempts=0,
                    epochs=int(epochs),
                )
                self._push_event(
                    ticket,
                    now_s + cache_lookup_s,
                    outcome,
                    busy_s=cache_lookup_s,
                )
                return ticket
            self.misses += 1
            self._m_cache_misses.inc()

        if seed is None:
            seed = self._next_seed()
        seed = int(seed)
        replay_eval = (
            None if replay is None else replay.get((seed, int(start_epoch)))
        )
        if replay_eval is not None:
            res = _FreshResult(
                outcome=replay_eval.outcome,
                attempts=int(replay_eval.attempts),
                faults=list(replay_eval.faults),
                failure_kind=replay_eval.failure_kind,
                retry_s=float(replay_eval.retry_s),
                backoff_s=float(getattr(replay_eval, "backoff_s", 0.0)),
            )
        else:
            res = self._run_segment(
                config, seed, int(start_epoch), int(epochs), early_term
            )
        outcome = PoolOutcome(
            res.outcome,
            cached=False,
            seed=seed,
            attempts=res.attempts,
            faults=tuple(res.faults),
            failure_kind=res.failure_kind,
            retry_s=res.retry_s,
            backoff_s=res.backoff_s,
            epochs=int(epochs),
            start_epoch=int(start_epoch),
        )
        finish_s = now_s + outcome.total_cost_s
        entry = _Inflight(result=res, key=key, finish_s=finish_s)
        if key is not None:
            # The successful attempt's derived seed is what a resumed
            # continuation must regenerate the curve from.
            if res.outcome is not None:
                entry.seed = retry_seed(seed, res.attempts - 1)
            self._inflight_by_key[key] = entry
        self._push_event(
            ticket,
            finish_s,
            outcome,
            busy_s=outcome.total_cost_s - res.backoff_s,
            entry=entry,
        )
        return ticket

    def _run_segment(
        self,
        config: Mapping,
        seed: int,
        start_epoch: int,
        epochs: int,
        early_term: bool,
    ) -> _FreshResult:
        """Run one rung segment under the retry policy.

        Rung-0 segments follow the classic ladder — attempt ``a`` runs
        under ``retry_seed(seed, a)`` with faults from
        ``injector.draw(seed, a)``, byte-identical fault luck to a full
        dispatch of the same trial seed.  Continuations keep the curve
        seed *fixed* across attempts (the checkpoint must replay exactly)
        and draw fault luck from the segment-tagged stream instead.
        """
        state = _FreshResult()
        fault_stream = (
            segment_seed(seed, start_epoch) if start_epoch > 0 else seed
        )
        while True:
            attempt = state.attempts
            fault = (
                self.injector.draw(fault_stream, attempt)
                if self.injector is not None
                else None
            )
            eval_seed = (
                seed if start_epoch > 0 else retry_seed(seed, attempt)
            )
            self._m_dispatched.inc()
            if self.backend == "serial":
                raw = _evaluate_segment_task(
                    self.objective, config, eval_seed,
                    start_epoch, epochs, early_term, fault,
                )
            else:
                raw = (
                    self._get_executor()
                    .submit(
                        _evaluate_segment_task, self.objective, config,
                        eval_seed, start_epoch, epochs, early_term, fault,
                    )
                    .result()
                )
            state.attempts += 1
            event = None
            if isinstance(raw, FaultEvent):
                charge = (
                    self._hang_charge_s() if raw.kind == HANG else raw.cost_s
                )
                event = (raw.kind, charge)
            elif (
                self.retry.timeout_s is not None
                and raw.cost_s > self.retry.timeout_s
            ):
                event = (TIMEOUT, self.retry.timeout_s)
            if event is None:
                state.outcome = raw
                return state
            kind, charge = event
            state.faults.append(kind)
            if state.attempts >= self.retry.max_attempts:
                state.failure_kind = kind
                state.retry_s += charge
                return state
            backoff = self.retry.backoff_s(state.attempts)
            state.retry_s += charge + backoff
            state.backoff_s += backoff
            self._charge_retry_wait(backoff)

    def _push_event(
        self, ticket, finish_s, outcome, busy_s, entry=None
    ) -> None:
        # (finish_s, ticket) is a unique sort key, so equal finish times
        # break deterministically by submission order (= trial id order)
        # and the payload is never compared.
        completion = AsyncCompletion(
            ticket=ticket, finish_s=finish_s, outcome=outcome, busy_s=busy_s
        )
        heapq.heappush(self._events, (finish_s, ticket, completion, entry))

    def next_completion(self) -> AsyncCompletion:
        """Pop the earliest in-flight completion, freeing its worker.

        Completions come back in nondecreasing ``finish_s`` order (ties by
        ticket).  Popping a fresh dispatch is the moment its result
        becomes observable: only then does its outcome enter the trial
        cache.
        """
        if not self._events:
            raise RuntimeError("no trials in flight")
        _, _, completion, entry = heapq.heappop(self._events)
        if entry is not None:
            if (
                entry.key is not None
                and self._inflight_by_key.get(entry.key) is entry
            ):
                del self._inflight_by_key[entry.key]
            res = entry.result
            if (
                self.cache is not None
                and entry.key is not None
                and res.outcome is not None
                and not res.outcome.measurement_failed
                and math.isfinite(res.outcome.error)
            ):
                self.cache.put(entry.key, res.outcome)
                if entry.seed is not None:
                    self.cache.note_seed(entry.key, entry.seed)
        return completion

    # -- q-parallel time accounting --------------------------------------------

    @staticmethod
    def batch_wall_time_s(
        outcomes: Sequence[PoolOutcome], cache_lookup_s: float
    ) -> float:
        """Simulated wall time of one batch under q-parallel execution.

        Fresh trainings run concurrently on the workers, so they cost the
        ``max`` of their individual costs — not the sum the sequential
        driver would charge.  A trial's individual cost includes its
        failed attempts and backoff waits (retries occupy the same worker
        slot serially); FAILED trials cost exactly their retry charges.
        Cache hits are serial hash probes at ``cache_lookup_s`` each.
        """
        fresh = [
            po.total_cost_s
            for po in outcomes
            if not po.cached and po.seed is not None
        ]
        n_cached = sum(1 for po in outcomes if po.cached)
        return n_cached * cache_lookup_s + (max(fresh) if fresh else 0.0)
