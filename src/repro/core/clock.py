"""Simulated wall clock and the framework's cost model.

The paper's fixed-runtime experiments (Tables 3-5, Figure 6) are about
*time accounting*: how long each method spends training, profiling,
model-fitting and proposing.  We run them against a simulated clock that
each component advances by its modeled cost, making multi-"hour"
experiments deterministic and laptop-fast while preserving the cost
hierarchy the paper exploits:

``full training (minutes) >> early-terminated training (tens of seconds)
>> hardware profiling (seconds) >> GP refit (seconds)
>> wrapper + predictive-model constraint check (~a second)``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["SimClock", "CostModel", "DEFAULT_COST_MODEL"]


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self, start_s: float = 0.0):
        if start_s < 0:
            raise ValueError("clock cannot start negative")
        self._now = float(start_s)

    @property
    def now_s(self) -> float:
        """Current simulated time, s."""
        return self._now

    @property
    def now_hours(self) -> float:
        """Current simulated time, hours."""
        return self._now / 3600.0

    def advance(self, seconds: float) -> float:
        """Advance the clock; returns the new time, s."""
        seconds = float(seconds)
        if math.isnan(seconds):
            raise ValueError("cannot advance the clock by NaN seconds")
        if math.isinf(seconds):
            raise ValueError("cannot advance the clock by an infinite amount")
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        self._now += seconds
        return self._now

    def exceeded(self, budget_s: float | None) -> bool:
        """Whether the clock has passed ``budget_s`` (never, when None)."""
        if budget_s is None:
            return False
        return self._now >= budget_s

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.1f}s)"


@dataclass(frozen=True)
class CostModel:
    """Wall-clock costs of the framework's non-training actions."""

    #: Screening one candidate through the wrapper: generating its network
    #: definition and evaluating the linear power/memory models, s.  The
    #: models themselves cost microseconds; the wrapper bookkeeping around
    #: each queried sample dominates, consistent with the paper's observed
    #: per-sample rates (~800 samples in two hours for HyperPower random
    #: search, most of them rejections).
    model_check_s: float = 1.0

    #: Drawing one random/random-walk proposal, s.
    proposal_s: float = 0.5

    #: Evaluating the linear models for one candidate *inside* a batched
    #: scoring pass (BO's candidate pool / init screening), s.  Unlike a
    #: recorded sample, no per-sample wrapper work happens here — it is a
    #: vectorised dot product, the "low-cost" evaluation the paper builds
    #: on ("computed on each sampled grid point of the hyper-parameter
    #: space").
    pool_check_s: float = 0.02

    #: Looking one accepted proposal up in the trial cache, s.  Near-zero:
    #: a hash-table probe on the canonical configuration hash, replacing a
    #: minutes-long training when it hits.
    cache_lookup_s: float = 0.01

    #: Fixed part of one GP refit + acquisition maximisation, s.
    gp_fit_base_s: float = 2.0

    #: Quadratic-in-observations part of one GP refit, s per observation^2.
    gp_fit_per_obs2_s: float = 5e-4

    #: Fixed part of one rank-1 posterior append (no hyper-opt), s.
    gp_append_base_s: float = 0.02

    #: Linear-in-observations part of one rank-1 append, s per observation.
    #: The update itself is O(n^2) but with a constant so small that a
    #: linear model with a tiny slope captures it at the n this framework
    #: reaches; what matters for the clock is that appends stay orders of
    #: magnitude below a full refit.
    gp_append_per_obs_s: float = 1e-4

    def gp_fit_s(self, n_observations: int) -> float:
        """Cost of refitting the surrogate on ``n_observations`` points, s."""
        return self.gp_fit_base_s + self.gp_fit_per_obs2_s * n_observations**2

    def gp_append_s(self, n_observations: int) -> float:
        """Cost of one rank-1 posterior append at ``n_observations``, s."""
        return self.gp_append_base_s + self.gp_append_per_obs_s * n_observations


#: Costs used by all experiments unless overridden.
DEFAULT_COST_MODEL = CostModel()
