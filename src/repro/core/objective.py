"""The expensive objective: train a candidate network, measure the target.

:class:`NNObjective` is step (2) of the Bayesian-optimization loop in
Figure 2 — "the candidate NN design x_{n+1} is trained and tested" — plus
the deployment/measurement step on the target platform.  It owns the
simulated clock accounting for those actions:

* a full training run costs minutes (dataset- and size-dependent);
* an early-terminated run costs only the epochs before the divergence
  detector fired;
* deploying and profiling on the target costs seconds.

Both costs are what separate the paper's HyperPower and default variants;
nothing here depends on which search method asked for the evaluation.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..hwsim.profiler import HardwareMeasurement, HardwareProfiler
from ..nn.builder import build_network
from ..space.space import SearchSpace
from ..telemetry.tracer import NOOP_TRACER
from ..trainsim.trainer import TrainingSimulator
from .clock import SimClock
from .constraints import ConstraintSpec
from .early_term import EarlyTermination
from .faults import CRASH, HANG, NAN_LOSS, NVML, OOM, FaultPlan, TrialFault

__all__ = ["EvaluationOutcome", "NNObjective"]


@dataclass(frozen=True)
class EvaluationOutcome:
    """Everything observed from one objective evaluation."""

    #: Best test error observed during the run.
    error: float
    #: Error at the last trained epoch.
    final_error: float
    #: Epochs actually trained.
    epochs_run: int
    #: Whether the early-termination policy truncated the run.
    stopped_early: bool
    #: Ground truth: did the run diverge?
    diverged: bool
    #: Hardware measurement on the target platform — ``None`` when the
    #: measurement failed (transient NVML read error) and the trial
    #: degraded to model predictions.
    measurement: HardwareMeasurement | None
    #: Ground-truth feasibility of the measured power/memory (``None``
    #: when the measurement failed and no ground truth was observed).
    feasible_meas: bool | None
    #: Total wall-clock cost charged to the clock, s.
    cost_s: float
    #: Whether the hardware measurement failed and the trial must degrade
    #: to the predictive models' power/memory estimates.
    measurement_failed: bool = False


class NNObjective:
    """Train-and-measure evaluation of candidate configurations."""

    def __init__(
        self,
        space: SearchSpace,
        trainer: TrainingSimulator,
        profiler: HardwareProfiler,
        spec: ConstraintSpec,
        clock: SimClock,
        rng: np.random.Generator,
        early_termination: EarlyTermination | None = None,
    ):
        self.space = space
        self.trainer = trainer
        self.profiler = profiler
        self.spec = spec
        self.clock = clock
        self._rng = rng
        #: Bound by the driver when telemetry is on; tracing only reads
        #: the clock, so traced evaluations stay byte-identical.
        self.tracer = NOOP_TRACER
        if early_termination is None:
            early_termination = EarlyTermination(
                chance_error=trainer.dataset.chance_error
            )
        self.early_termination = early_termination

    @property
    def dataset_name(self) -> str:
        """Benchmark this objective trains on."""
        return self.trainer.dataset.name

    @property
    def device_name(self) -> str:
        """Target platform this objective measures on."""
        return self.profiler.device.name

    def evaluate(
        self, config: Mapping, early_term: bool = False
    ) -> EvaluationOutcome:
        """Train ``config`` (optionally with early termination), then deploy
        and measure it on the target platform.  Advances the clock."""
        self.space.validate(config)
        stop_callback = (
            self.early_termination.should_stop if early_term else None
        )
        run_rng = np.random.default_rng(self._rng.integers(2**63))
        result = self.trainer.train(config, run_rng, stop_callback=stop_callback)

        network = build_network(self.dataset_name, config)
        measurement = self.profiler.profile(network)
        feasible = self.spec.measured_feasible(
            measurement.power_w, measurement.memory_bytes, measurement.latency_s
        )

        cost = result.wall_time_s + measurement.duration_s
        t0 = self.clock.now_s
        self.clock.advance(cost)
        self.tracer.record(
            "train",
            t0,
            t0 + result.wall_time_s,
            epochs=result.epochs_run,
            stopped_early=result.stopped_early,
        )
        self.tracer.record("measure", t0 + result.wall_time_s, t0 + cost)
        return EvaluationOutcome(
            error=result.best_error,
            final_error=result.final_error,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early,
            diverged=result.diverged,
            measurement=measurement,
            feasible_meas=feasible,
            cost_s=cost,
        )

    def evaluate_seeded(
        self,
        config: Mapping,
        seed: int,
        early_term: bool = False,
        fault: FaultPlan | None = None,
    ) -> EvaluationOutcome:
        """Side-effect-free evaluation for the batch-parallel engine.

        Unlike :meth:`evaluate`, this neither advances the clock nor
        consumes the objective's shared RNG stream: every noise source
        (training luck, sensor sampling) derives from ``seed``, so the same
        ``(config, seed)`` pair yields a bit-identical outcome on any
        worker — serial, thread, or a forked process.  The caller (the
        :class:`~repro.core.parallel.EvaluationPool` driver) owns the
        clock accounting.

        ``fault`` injects one simulated failure into this attempt (see
        :mod:`~repro.core.faults`).  Crashes, hangs, NaN losses and OOMs
        raise :class:`~repro.core.faults.TrialFault` carrying the
        simulated time the doomed attempt consumed; a transient NVML read
        failure returns a degraded outcome (``measurement=None``,
        ``measurement_failed=True``) — training succeeded, only the
        hardware numbers are missing.
        """
        self.space.validate(config)
        stop_callback = (
            self.early_termination.should_stop if early_term else None
        )
        run_seq, profile_seq = np.random.SeedSequence(int(seed)).spawn(2)
        result = self.trainer.train(
            config, np.random.default_rng(run_seq), stop_callback=stop_callback
        )

        if fault is not None and fault.kind == NAN_LOSS:
            # The schedule ran but the loss went non-finite; nothing is
            # deployed, the full training time is wasted.
            raise TrialFault(NAN_LOSS, cost_s=result.wall_time_s)

        network = build_network(self.dataset_name, config)
        # A per-trial profiler: the shared one's sensor-noise stream is
        # order-dependent, which parallel evaluation must not be.
        profiler = HardwareProfiler(
            self.profiler.device,
            np.random.default_rng(profile_seq),
            batch=self.profiler.batch,
            duration_s=self.profiler.duration_s,
            sample_hz=self.profiler.sample_hz,
        )
        measurement = profiler.profile(network)
        nominal_cost = result.wall_time_s + measurement.duration_s

        if fault is not None:
            if fault.kind in (CRASH, OOM):
                # The worker died partway through: a deterministic
                # fraction of the nominal cost was consumed.
                raise TrialFault(
                    fault.kind, cost_s=fault.fraction * nominal_cost
                )
            if fault.kind == HANG:
                # Nominal cost travels with the event; the pool replaces
                # it with the timeout charge it reaps the worker at.
                raise TrialFault(HANG, cost_s=nominal_cost)
            if fault.kind == NVML:
                # Training and the measurement window completed, but the
                # sensor reads are garbage: degrade, don't fail.
                return EvaluationOutcome(
                    error=result.best_error,
                    final_error=result.final_error,
                    epochs_run=result.epochs_run,
                    stopped_early=result.stopped_early,
                    diverged=result.diverged,
                    measurement=None,
                    feasible_meas=None,
                    cost_s=nominal_cost,
                    measurement_failed=True,
                )
            raise ValueError(f"unknown fault kind {fault.kind!r}")

        feasible = self.spec.measured_feasible(
            measurement.power_w, measurement.memory_bytes, measurement.latency_s
        )
        return EvaluationOutcome(
            error=result.best_error,
            final_error=result.final_error,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early,
            diverged=result.diverged,
            measurement=measurement,
            feasible_meas=feasible,
            cost_s=nominal_cost,
        )

    def evaluate_segment(
        self,
        config: Mapping,
        seed: int,
        start_epoch: int = 0,
        epochs: int | None = None,
        early_term: bool = False,
        fault: FaultPlan | None = None,
    ) -> EvaluationOutcome:
        """Seed-pure *partial* evaluation for rung scheduling.

        Trains ``config`` from ``start_epoch`` to the cumulative budget
        ``epochs`` under the same two-way seed split as
        :meth:`evaluate_seeded` — the learning curve always regenerates at
        the dataset's full schedule length and slices its window, so a
        trial promoted rung by rung reproduces the uninterrupted full-
        fidelity curve bit-exactly, and ``cost_s`` charges only the
        incremental epochs.

        Segment 0 deploys and profiles exactly like
        :meth:`evaluate_seeded` (same fault ladder, same degraded-NVML
        semantics); continuations skip profiling (the driver carries the
        rung-0 measurement forward), so their outcomes have
        ``measurement=None`` *without* being flagged degraded, and an
        injected NVML fault is a clean no-op for them.
        """
        self.space.validate(config)
        stop_callback = (
            self.early_termination.should_stop if early_term else None
        )
        schedule = self.trainer.dataset.default_epochs
        if epochs is None:
            epochs = schedule
        run_seq, profile_seq = np.random.SeedSequence(int(seed)).spawn(2)
        result = self.trainer.train(
            config,
            np.random.default_rng(run_seq),
            epochs=epochs,
            stop_callback=stop_callback,
            start_epoch=start_epoch,
            schedule_epochs=max(int(epochs), schedule),
        )

        if fault is not None and fault.kind == NAN_LOSS:
            raise TrialFault(NAN_LOSS, cost_s=result.wall_time_s)

        if start_epoch > 0:
            # Continuation: no deployment, no profiling — the rung-0
            # measurement already covers this configuration.
            nominal_cost = result.wall_time_s
            if fault is not None:
                if fault.kind in (CRASH, OOM):
                    raise TrialFault(
                        fault.kind, cost_s=fault.fraction * nominal_cost
                    )
                if fault.kind == HANG:
                    raise TrialFault(HANG, cost_s=nominal_cost)
                if fault.kind != NVML:
                    raise ValueError(f"unknown fault kind {fault.kind!r}")
            return EvaluationOutcome(
                error=result.best_error,
                final_error=result.final_error,
                epochs_run=result.epochs_run,
                stopped_early=result.stopped_early,
                diverged=result.diverged,
                measurement=None,
                feasible_meas=None,
                cost_s=nominal_cost,
            )

        network = build_network(self.dataset_name, config)
        profiler = HardwareProfiler(
            self.profiler.device,
            np.random.default_rng(profile_seq),
            batch=self.profiler.batch,
            duration_s=self.profiler.duration_s,
            sample_hz=self.profiler.sample_hz,
        )
        measurement = profiler.profile(network)
        nominal_cost = result.wall_time_s + measurement.duration_s

        if fault is not None:
            if fault.kind in (CRASH, OOM):
                raise TrialFault(
                    fault.kind, cost_s=fault.fraction * nominal_cost
                )
            if fault.kind == HANG:
                raise TrialFault(HANG, cost_s=nominal_cost)
            if fault.kind == NVML:
                return EvaluationOutcome(
                    error=result.best_error,
                    final_error=result.final_error,
                    epochs_run=result.epochs_run,
                    stopped_early=result.stopped_early,
                    diverged=result.diverged,
                    measurement=None,
                    feasible_meas=None,
                    cost_s=nominal_cost,
                    measurement_failed=True,
                )
            raise ValueError(f"unknown fault kind {fault.kind!r}")

        feasible = self.spec.measured_feasible(
            measurement.power_w, measurement.memory_bytes, measurement.latency_s
        )
        return EvaluationOutcome(
            error=result.best_error,
            final_error=result.final_error,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early,
            diverged=result.diverged,
            measurement=measurement,
            feasible_meas=feasible,
            cost_s=nominal_cost,
        )
