"""The expensive objective: train a candidate network, measure the target.

:class:`NNObjective` is step (2) of the Bayesian-optimization loop in
Figure 2 — "the candidate NN design x_{n+1} is trained and tested" — plus
the deployment/measurement step on the target platform.  It owns the
simulated clock accounting for those actions:

* a full training run costs minutes (dataset- and size-dependent);
* an early-terminated run costs only the epochs before the divergence
  detector fired;
* deploying and profiling on the target costs seconds.

Both costs are what separate the paper's HyperPower and default variants;
nothing here depends on which search method asked for the evaluation.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..hwsim.profiler import HardwareMeasurement, HardwareProfiler
from ..nn.builder import build_network
from ..space.space import SearchSpace
from ..trainsim.trainer import TrainingSimulator
from .clock import SimClock
from .constraints import ConstraintSpec
from .early_term import EarlyTermination

__all__ = ["EvaluationOutcome", "NNObjective"]


@dataclass(frozen=True)
class EvaluationOutcome:
    """Everything observed from one objective evaluation."""

    #: Best test error observed during the run.
    error: float
    #: Error at the last trained epoch.
    final_error: float
    #: Epochs actually trained.
    epochs_run: int
    #: Whether the early-termination policy truncated the run.
    stopped_early: bool
    #: Ground truth: did the run diverge?
    diverged: bool
    #: Hardware measurement on the target platform.
    measurement: HardwareMeasurement
    #: Ground-truth feasibility of the measured power/memory.
    feasible_meas: bool
    #: Total wall-clock cost charged to the clock, s.
    cost_s: float


class NNObjective:
    """Train-and-measure evaluation of candidate configurations."""

    def __init__(
        self,
        space: SearchSpace,
        trainer: TrainingSimulator,
        profiler: HardwareProfiler,
        spec: ConstraintSpec,
        clock: SimClock,
        rng: np.random.Generator,
        early_termination: EarlyTermination | None = None,
    ):
        self.space = space
        self.trainer = trainer
        self.profiler = profiler
        self.spec = spec
        self.clock = clock
        self._rng = rng
        if early_termination is None:
            early_termination = EarlyTermination(
                chance_error=trainer.dataset.chance_error
            )
        self.early_termination = early_termination

    @property
    def dataset_name(self) -> str:
        """Benchmark this objective trains on."""
        return self.trainer.dataset.name

    @property
    def device_name(self) -> str:
        """Target platform this objective measures on."""
        return self.profiler.device.name

    def evaluate(
        self, config: Mapping, early_term: bool = False
    ) -> EvaluationOutcome:
        """Train ``config`` (optionally with early termination), then deploy
        and measure it on the target platform.  Advances the clock."""
        self.space.validate(config)
        stop_callback = (
            self.early_termination.should_stop if early_term else None
        )
        run_rng = np.random.default_rng(self._rng.integers(2**63))
        result = self.trainer.train(config, run_rng, stop_callback=stop_callback)

        network = build_network(self.dataset_name, config)
        measurement = self.profiler.profile(network)
        feasible = self.spec.measured_feasible(
            measurement.power_w, measurement.memory_bytes, measurement.latency_s
        )

        cost = result.wall_time_s + measurement.duration_s
        self.clock.advance(cost)
        return EvaluationOutcome(
            error=result.best_error,
            final_error=result.final_error,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early,
            diverged=result.diverged,
            measurement=measurement,
            feasible_meas=feasible,
            cost_s=cost,
        )

    def evaluate_seeded(
        self, config: Mapping, seed: int, early_term: bool = False
    ) -> EvaluationOutcome:
        """Side-effect-free evaluation for the batch-parallel engine.

        Unlike :meth:`evaluate`, this neither advances the clock nor
        consumes the objective's shared RNG stream: every noise source
        (training luck, sensor sampling) derives from ``seed``, so the same
        ``(config, seed)`` pair yields a bit-identical outcome on any
        worker — serial, thread, or a forked process.  The caller (the
        :class:`~repro.core.parallel.EvaluationPool` driver) owns the
        clock accounting.
        """
        self.space.validate(config)
        stop_callback = (
            self.early_termination.should_stop if early_term else None
        )
        run_seq, profile_seq = np.random.SeedSequence(int(seed)).spawn(2)
        result = self.trainer.train(
            config, np.random.default_rng(run_seq), stop_callback=stop_callback
        )

        network = build_network(self.dataset_name, config)
        # A per-trial profiler: the shared one's sensor-noise stream is
        # order-dependent, which parallel evaluation must not be.
        profiler = HardwareProfiler(
            self.profiler.device,
            np.random.default_rng(profile_seq),
            batch=self.profiler.batch,
            duration_s=self.profiler.duration_s,
            sample_hz=self.profiler.sample_hz,
        )
        measurement = profiler.profile(network)
        feasible = self.spec.measured_feasible(
            measurement.power_w, measurement.memory_bytes, measurement.latency_s
        )
        return EvaluationOutcome(
            error=result.best_error,
            final_error=result.final_error,
            epochs_run=result.epochs_run,
            stopped_early=result.stopped_early,
            diverged=result.diverged,
            measurement=measurement,
            feasible_meas=feasible,
            cost_s=result.wall_time_s + measurement.duration_s,
        )
