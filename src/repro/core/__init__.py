"""The HyperPower framework core (paper Section 3)."""

from .acquisition import (
    HWCWEI,
    HWIECI,
    Acquisition,
    ExpectedImprovement,
    expected_improvement,
)
from .clock import DEFAULT_COST_MODEL, CostModel, SimClock
from .constraints import (
    GIB,
    ConstraintSpec,
    GPConstraintModel,
    ModelConstraintChecker,
)
from .early_term import CurveExtrapolationTermination, EarlyTermination
from .faults import (
    CRASH,
    FAULT_KINDS,
    HANG,
    NAN_LOSS,
    NVML,
    OOM,
    TIMEOUT,
    FaultInjector,
    FaultRates,
    RetryPolicy,
    TrialFault,
    retry_seed,
)
from .hyperpower import SOLVERS, VARIANTS, HyperPower, build_method
from .methods import (
    BayesianOptimizer,
    GridSearch,
    Proposal,
    RandomSearch,
    RandomWalk,
    RejectedProposal,
    SearchMethod,
    SearchState,
)
from .objective import EvaluationOutcome, NNObjective
from .parallel import (
    BACKENDS,
    EvaluationPool,
    PoolOutcome,
    TrialCache,
    canonical_config_key,
)
from .result import RunResult, Trial, TrialStatus

__all__ = [
    "SimClock",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Trial",
    "TrialStatus",
    "RunResult",
    "ConstraintSpec",
    "ModelConstraintChecker",
    "GPConstraintModel",
    "GIB",
    "EarlyTermination",
    "CurveExtrapolationTermination",
    "expected_improvement",
    "Acquisition",
    "ExpectedImprovement",
    "HWIECI",
    "HWCWEI",
    "NNObjective",
    "EvaluationOutcome",
    "SearchState",
    "SearchMethod",
    "Proposal",
    "RejectedProposal",
    "RandomSearch",
    "RandomWalk",
    "GridSearch",
    "BayesianOptimizer",
    "HyperPower",
    "build_method",
    "SOLVERS",
    "VARIANTS",
    "BACKENDS",
    "EvaluationPool",
    "PoolOutcome",
    "TrialCache",
    "canonical_config_key",
    "FAULT_KINDS",
    "CRASH",
    "HANG",
    "NAN_LOSS",
    "OOM",
    "NVML",
    "TIMEOUT",
    "TrialFault",
    "FaultRates",
    "FaultInjector",
    "RetryPolicy",
    "retry_seed",
]
