"""The HyperPower framework facade (paper Figure 2).

"The ML designer only provides the NN design space, the target platform,
the power/memory budget values, and the number of iterations N_max" — this
module is that entry point.  It wires a solver (Rand, Rand-Walk, HW-CWEI,
HW-IECI) in either variant:

* ``variant='hyperpower'`` — the paper's contribution: a-priori constraint
  screening through the predictive power/memory models plus early
  termination of diverging trainings;
* ``variant='default'`` — the published constraint-unaware counterpart of
  the same solver [5, 8, 6, 17]: no predictive models (BO variants learn
  constraints from hardware measurements of evaluated points), no early
  termination.

and runs the sequential loop of Figure 2 against the simulated clock,
recording every queried sample as a :class:`~repro.core.result.Trial`.
"""

from __future__ import annotations

import math

import numpy as np

from ..models.hw_models import MemoryModel, PowerModel
from ..space.space import SearchSpace
from ..telemetry.metrics import NOOP_METRICS
from ..telemetry.tracer import NOOP_TRACER
from .acquisition import HWCWEI, HWIECI
from .clock import DEFAULT_COST_MODEL, CostModel
from .constraints import ConstraintSpec, GPConstraintModel, ModelConstraintChecker
from .methods import (
    BayesianOptimizer,
    Proposal,
    RandomSearch,
    RandomWalk,
    SearchMethod,
    SearchState,
)
from .objective import NNObjective
from .parallel import EvaluationPool, PoolOutcome
from .result import RunResult, Trial, TrialStatus

__all__ = ["SOLVERS", "VARIANTS", "build_method", "HyperPower"]

#: The four solvers of Section 3.5.
SOLVERS = ("Rand", "Rand-Walk", "HW-CWEI", "HW-IECI")
#: The two implementations compared throughout Section 5.
VARIANTS = ("default", "hyperpower")

#: Default random-walk neighbourhood size (unit-cube units).  The paper
#: highlights how sensitive Rand-Walk is to this choice; this value lets
#: the default variant succeed on the easy MNIST/TX1 pair while still
#: failing on the tightly constrained CIFAR-10 pairs, as observed there.
_DEFAULT_SIGMA = 0.15


def build_method(
    solver: str,
    variant: str,
    space: SearchSpace,
    spec: ConstraintSpec,
    power_model: PowerModel | None = None,
    memory_model: MemoryModel | None = None,
    latency_model=None,
    sigma: float = _DEFAULT_SIGMA,
    n_init: int = 5,
    pool_size: int = 1000,
    gp_restarts: int = 2,
    gp_refit_every: int = 1,
    gp_warm_start: bool = False,
    gp_burn_in: int = 15,
    fantasy: str = "cl-min",
) -> SearchMethod:
    """Construct one of the eight method variants.

    HyperPower variants need the fitted predictive models matching the
    active budgets; default variants must not receive them.  The ``gp_*``
    knobs configure the BO solvers' surrogate hot path (restart count,
    hyper-refit cadence, warm starting — see
    :class:`~repro.core.methods.BayesianOptimizer`) and are ignored by the
    model-free solvers, as is ``fantasy`` (the BO solvers' constant-liar
    strategy for in-flight trials under the asynchronous scheduler).
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown solver {solver!r}; expected one of {SOLVERS}")
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {VARIANTS}"
        )

    if variant == "hyperpower":
        checker = ModelConstraintChecker(
            spec, power_model, memory_model, latency_model=latency_model
        )
        if solver == "Rand":
            return RandomSearch(space, checker)
        if solver == "Rand-Walk":
            return RandomWalk(space, sigma, checker, feasible_incumbent=True)
        acquisition = (
            HWCWEI(checker) if solver == "HW-CWEI" else HWIECI(checker)
        )
        return BayesianOptimizer(
            space,
            acquisition,
            model_checker=checker,
            n_init=n_init,
            pool_size=pool_size,
            gp_restarts=gp_restarts,
            refit_every=gp_refit_every,
            warm_start=gp_warm_start,
            burn_in=gp_burn_in,
            fantasy=fantasy,
        )

    # Default (constraint-unaware-a-priori) variants.
    if solver == "Rand":
        return RandomSearch(space, checker=None)
    if solver == "Rand-Walk":
        return RandomWalk(space, sigma, checker=None, feasible_incumbent=False)
    learned = GPConstraintModel(space, spec)
    acquisition = HWCWEI(learned) if solver == "HW-CWEI" else HWIECI(learned)
    return BayesianOptimizer(
        space,
        acquisition,
        learned_constraints=learned,
        n_init=n_init,
        pool_size=pool_size,
        gp_restarts=gp_restarts,
        refit_every=gp_refit_every,
        warm_start=gp_warm_start,
        burn_in=gp_burn_in,
        fantasy=fantasy,
    )


class HyperPower:
    """The sequential optimization driver of Figure 2."""

    #: Hard cap on queried samples, protecting against runaway rejection
    #: loops under very tight budgets.
    MAX_SAMPLES = 500_000

    def __init__(
        self,
        objective: NNObjective,
        method: SearchMethod,
        variant: str,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        early_term: bool | None = None,
        pool: EvaluationPool | None = None,
        telemetry=None,
    ):
        """``early_term`` overrides the variant's default (HyperPower on,
        default off) — used by the ablation benches to isolate the two
        enhancements of Section 3.2.

        ``pool`` switches the driver to the batch-parallel engine: each
        round proposes up to ``pool.workers`` configurations from the same
        state, evaluates them through the pool (with deterministic
        per-trial seeding and optional trial caching) and charges the
        clock q-parallel wall time — the ``max`` over the concurrent
        trainings, not their sum.  ``pool=None`` keeps the paper's
        sequential Figure 2 loop, bit-for-bit.

        ``telemetry`` (a :class:`~repro.telemetry.Telemetry` bundle)
        switches on span tracing and metrics: the driver binds the
        tracer to the objective's simulated clock and threads it through
        the method, objective and pool.  Tracing only *reads* the clock
        and RNG state, never consumes either, so traced and untraced
        runs are byte-identical; the default is the shared no-op pair.
        """
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        if pool is not None and pool.objective is not objective:
            raise ValueError(
                "pool must be bound to the driver's objective (same clock, "
                "same simulated world)"
            )
        self.objective = objective
        self.method = method
        self.variant = variant
        self.cost_model = cost_model
        self.pool = pool
        #: Early termination is one of the two HyperPower enhancements.
        if early_term is None:
            early_term = variant == "hyperpower"
        self.early_term = early_term

        # -- telemetry threading ------------------------------------------
        # The driver is the one component that sees every layer of a run,
        # so it owns handing the tracer/registry to its collaborators.
        self.telemetry = telemetry
        if telemetry is None:
            self.tracer = NOOP_TRACER
            self.metrics = NOOP_METRICS
        else:
            self.tracer = telemetry.tracer
            self.metrics = telemetry.metrics
            if self.tracer.clock is None:
                self.tracer.clock = objective.clock
        objective.tracer = self.tracer
        method.tracer = self.tracer
        if pool is not None:
            pool.bind_metrics(self.metrics)
        metrics = self.metrics
        self._m_trials = {
            status: metrics.counter(f"trials.{status.value}")
            for status in TrialStatus
        }
        self._m_rejections = metrics.counter("screen.rejections")
        self._m_silent_checks = metrics.counter("screen.silent_checks")
        self._m_gp_fits = metrics.counter("gp.refits")
        self._m_gp_appends = metrics.counter("gp.appends")
        self._m_attempts = metrics.counter("eval.attempts")
        self._m_faults = metrics.counter("retry.faults")
        self._m_retry_s = metrics.counter("retry.time_s")
        # Async-only instruments are created lazily so synchronous runs
        # (whose metric snapshots are pinned by the golden suite) never
        # register them.
        self._m_gp_fantasies = None
        self._m_occupancy_gauge = None

    # -- trial recording -----------------------------------------------------------

    def _record_rejection(
        self, state: SearchState, result: RunResult, rejected
    ) -> None:
        clock = self.objective.clock
        cost = self.cost_model.proposal_s + self.cost_model.model_check_s
        clock.advance(cost)
        trial = Trial(
            index=len(state.trials),
            config=dict(rejected.config),
            status=TrialStatus.REJECTED_MODEL,
            timestamp_s=clock.now_s,
            cost_s=cost,
            power_pred_w=rejected.power_pred_w,
            memory_pred_bytes=rejected.memory_pred_bytes,
            feasible_pred=False,
        )
        state.trials.append(trial)
        result.trials.append(trial)
        self._m_trials[TrialStatus.REJECTED_MODEL].inc()
        self._m_rejections.inc()

    def _record_evaluation(
        self, state: SearchState, result: RunResult, proposal: Proposal
    ) -> None:
        clock = self.objective.clock
        clock.advance(self.cost_model.proposal_s)
        with self.tracer.span("trial", index=len(state.trials)) as span:
            # The objective emits the nested train/measure spans.
            outcome = self.objective.evaluate(
                proposal.config, early_term=self.early_term
            )
            status = (
                TrialStatus.EARLY_TERMINATED
                if outcome.stopped_early
                else TrialStatus.COMPLETED
            )
            span.set(status=status.value, feasible_meas=outcome.feasible_meas)
            if not math.isnan(outcome.error):
                span.set(error=outcome.error)
        trial = Trial(
            index=len(state.trials),
            config=dict(proposal.config),
            status=status,
            timestamp_s=clock.now_s,
            cost_s=outcome.cost_s,
            error=outcome.error,
            epochs_run=outcome.epochs_run,
            diverged=outcome.diverged,
            power_pred_w=proposal.power_pred_w,
            memory_pred_bytes=proposal.memory_pred_bytes,
            power_meas_w=outcome.measurement.power_w,
            memory_meas_bytes=outcome.measurement.memory_bytes,
            latency_meas_s=outcome.measurement.latency_s,
            feasible_pred=proposal.feasible_pred,
            feasible_meas=outcome.feasible_meas,
            attempts=1,
        )
        state.trials.append(trial)
        result.trials.append(trial)
        state.trained_configs.append(dict(proposal.config))
        state.trained_errors.append(outcome.error)
        state.trained_feasible.append(outcome.feasible_meas)
        self._m_trials[status].inc()
        self._m_attempts.inc()

    def _record_batch(
        self,
        state: SearchState,
        result: RunResult,
        proposals: list[Proposal],
        pool_outcomes: list[PoolOutcome],
        batch_t0: float,
    ) -> None:
        """Record one q-parallel round of pool evaluations.

        The clock was already advanced by the round's wall time, so every
        trial in the round shares the round-end timestamp; each trial's
        ``cost_s`` still records its individual cost (lookup cost for
        cache hits, retry and backoff charges included for faulted
        evaluations).

        ``batch_t0`` is the simulated time at which the round's
        evaluations started (before the wall-time charge).  Workers run
        in other processes and cannot share the tracer, so the driver
        synthesizes the per-trial ``trial > {retry, train, measure}``
        spans here from each outcome's recorded costs — identical across
        the serial/thread/process backends by construction.

        Failure semantics: a slot that exhausted its retry budget becomes
        a ``FAILED`` trial — no observation, nothing appended to the
        trained lists, the run continues.  A slot whose hardware
        measurement failed (transient NVML error) *degrades*: the trial
        keeps its training outcome but records the model-predicted
        power/memory (when the method has models) with
        ``measurement_degraded=True``.
        """
        clock = self.objective.clock
        tracer = self.tracer
        for proposal, pool_outcome in zip(proposals, pool_outcomes):
            outcome = pool_outcome.outcome
            self._m_attempts.inc(pool_outcome.attempts)
            self._m_faults.inc(len(pool_outcome.faults))
            self._m_retry_s.inc(pool_outcome.retry_s)
            if pool_outcome.failed:
                sid = tracer.record(
                    "trial",
                    batch_t0,
                    batch_t0 + pool_outcome.retry_s,
                    index=len(state.trials),
                    status=TrialStatus.FAILED.value,
                    failure_kind=pool_outcome.failure_kind,
                )
                if pool_outcome.retry_s > 0:
                    tracer.record(
                        "retry",
                        batch_t0,
                        batch_t0 + pool_outcome.retry_s,
                        parent=sid,
                        attempts=pool_outcome.attempts,
                        faults=list(pool_outcome.faults),
                    )
                self._m_trials[TrialStatus.FAILED].inc()
                trial = Trial(
                    index=len(state.trials),
                    config=dict(proposal.config),
                    status=TrialStatus.FAILED,
                    timestamp_s=clock.now_s,
                    cost_s=pool_outcome.retry_s,
                    power_pred_w=proposal.power_pred_w,
                    memory_pred_bytes=proposal.memory_pred_bytes,
                    feasible_pred=proposal.feasible_pred,
                    attempts=pool_outcome.attempts,
                    faults=pool_outcome.faults,
                    failure_kind=pool_outcome.failure_kind,
                    retry_s=pool_outcome.retry_s,
                )
                state.trials.append(trial)
                result.trials.append(trial)
                continue
            if pool_outcome.cached:
                status = TrialStatus.CACHED
                cost = self.cost_model.cache_lookup_s
                epochs_run = 0
            else:
                status = (
                    TrialStatus.EARLY_TERMINATED
                    if outcome.stopped_early
                    else TrialStatus.COMPLETED
                )
                cost = outcome.cost_s + pool_outcome.retry_s
                epochs_run = outcome.epochs_run
            if outcome.measurement is None:
                # Degradation ladder: measured -> model-predicted ->
                # unknown.  The predictions come from the proposal, so
                # model-free (default-variant) methods degrade to unknown.
                power_meas = proposal.power_pred_w
                memory_meas = proposal.memory_pred_bytes
                latency_meas = None
                if power_meas is None and memory_meas is None:
                    feasible_meas = None
                else:
                    feasible_meas = self.objective.spec.measured_feasible(
                        power_meas, memory_meas, None
                    )
                degraded = True
            else:
                power_meas = outcome.measurement.power_w
                memory_meas = outcome.measurement.memory_bytes
                latency_meas = outcome.measurement.latency_s
                feasible_meas = outcome.feasible_meas
                degraded = False
            attrs = {
                "index": len(state.trials),
                "status": status.value,
                "feasible_meas": feasible_meas,
            }
            if not math.isnan(outcome.error):
                attrs["error"] = outcome.error
            sid = tracer.record("trial", batch_t0, batch_t0 + cost, **attrs)
            if status is not TrialStatus.CACHED:
                train_t0 = batch_t0
                if pool_outcome.retry_s > 0:
                    tracer.record(
                        "retry",
                        batch_t0,
                        batch_t0 + pool_outcome.retry_s,
                        parent=sid,
                        attempts=pool_outcome.attempts,
                        faults=list(pool_outcome.faults),
                    )
                    train_t0 = batch_t0 + pool_outcome.retry_s
                trial_t1 = batch_t0 + cost
                measure_s = (
                    outcome.measurement.duration_s
                    if outcome.measurement is not None
                    else 0.0
                )
                tracer.record(
                    "train",
                    train_t0,
                    trial_t1 - measure_s,
                    parent=sid,
                    epochs=epochs_run,
                    stopped_early=outcome.stopped_early,
                )
                if outcome.measurement is not None:
                    tracer.record("measure", trial_t1 - measure_s, trial_t1, parent=sid)
            self._m_trials[status].inc()
            trial = Trial(
                index=len(state.trials),
                config=dict(proposal.config),
                status=status,
                timestamp_s=clock.now_s,
                cost_s=cost,
                error=outcome.error,
                epochs_run=epochs_run,
                diverged=outcome.diverged,
                power_pred_w=proposal.power_pred_w,
                memory_pred_bytes=proposal.memory_pred_bytes,
                power_meas_w=power_meas,
                memory_meas_bytes=memory_meas,
                latency_meas_s=latency_meas,
                feasible_pred=proposal.feasible_pred,
                feasible_meas=feasible_meas,
                attempts=pool_outcome.attempts,
                faults=pool_outcome.faults,
                retry_s=pool_outcome.retry_s,
                measurement_degraded=degraded,
            )
            state.trials.append(trial)
            result.trials.append(trial)
            state.trained_configs.append(dict(proposal.config))
            state.trained_errors.append(outcome.error)
            state.trained_feasible.append(feasible_meas)

    # -- proposing ------------------------------------------------------------------

    def _propose_one(
        self,
        state: SearchState,
        result: RunResult,
        rng: np.random.Generator,
        pending=None,
    ) -> Proposal:
        """One proposal: method call, clock charges, screening records.

        This is the propose block shared by both schedulers.  ``pending``
        (async only) is the list of in-flight configurations forwarded to
        pending-aware methods; the synchronous path leaves it ``None`` and
        calls ``propose(state, rng)`` with two arguments, so duck-typed
        two-argument methods keep working there.
        """
        clock = self.objective.clock
        with self.tracer.span("propose") as propose_span:
            if pending:
                proposal = self.method.propose(state, rng, list(pending))
            else:
                proposal = self.method.propose(state, rng)
            if proposal.silent_model_checks:
                clock.advance(
                    self.cost_model.pool_check_s
                    * proposal.silent_model_checks
                )
            if proposal.gp_fits:
                clock.advance(
                    proposal.gp_fits
                    * self.cost_model.gp_fit_s(state.n_trained)
                )
            if proposal.gp_appends:
                clock.advance(
                    proposal.gp_appends
                    * self.cost_model.gp_append_s(state.n_trained)
                )
            fantasies = getattr(proposal, "gp_fantasies", 0)
            if fantasies:
                # Constant-liar conditioning is rank-1 appends on a copy
                # of the surrogate — same unit cost as a real append.
                clock.advance(
                    fantasies * self.cost_model.gp_append_s(state.n_trained)
                )
                propose_span.set(gp_fantasies=fantasies)
                if self._m_gp_fantasies is None:
                    self._m_gp_fantasies = self.metrics.counter(
                        "gp.fantasies"
                    )
                self._m_gp_fantasies.inc(fantasies)
            propose_span.set(
                silent_checks=proposal.silent_model_checks,
                gp_fits=proposal.gp_fits,
                gp_appends=proposal.gp_appends,
                rejections=len(proposal.rejected),
            )
            self._m_silent_checks.inc(proposal.silent_model_checks)
            self._m_gp_fits.inc(proposal.gp_fits)
            self._m_gp_appends.inc(proposal.gp_appends)
            if proposal.rejected:
                with self.tracer.span(
                    "screen", rejections=len(proposal.rejected)
                ):
                    for rejected in proposal.rejected:
                        self._record_rejection(state, result, rejected)
                        if len(state.trials) >= self.MAX_SAMPLES:
                            break
        return proposal

    # -- main loop ------------------------------------------------------------------

    def run(
        self,
        rng: np.random.Generator,
        max_evaluations: int | None = None,
        max_time_s: float | None = None,
        journal=None,
        replay=None,
        scheduler: str = "sync",
    ) -> RunResult:
        """Run the optimization until a budget is exhausted.

        Parameters
        ----------
        rng:
            Randomness for proposals (objective noise has its own stream).
        max_evaluations:
            ``N_max`` — budget on *trained* evaluations (the fixed-
            function-evaluations protocol of Figure 4).
        max_time_s:
            Simulated wall-clock budget (the fixed-runtime protocol of
            Tables 2-5).  Following the paper, a sample started before the
            deadline is allowed to complete, so final run times land
            slightly above the budget.
        journal:
            Optional crash-safe run journal (:class:`~repro.io.RunJournal`
            or any object exposing ``append_round``/``finish`` and a
            ``skip_replay`` flag).  Every completed round of trials is
            flushed to it before the next round starts, so a killed
            process loses at most the round in flight.
        replay:
            Optional :class:`~repro.io.JournalReplay` from an interrupted
            run.  The driver re-runs its loop (all proposal RNG streams
            and clock charges recompute identically) but substitutes the
            journaled evaluation results instead of dispatching trainings,
            verifying each recomputed round against the journal; once the
            journal is drained the run continues live, bit-identically to
            an uninterrupted one.  Requires the pool path (``pool=None``
            replays by deterministic re-execution, which verifies the
            journal but re-spends the evaluation compute).
        scheduler:
            ``"sync"`` (the default) runs the round-barrier loop —
            byte-identical to every release before the scheduler existed.
            ``"async"`` runs the event-driven scheduler: workers are
            refilled the moment a trial completes, proposals condition on
            the in-flight set (constant-liar fantasies for the BO
            solvers), and one journal round is written per completion
            event.  Requires the pool path.
        """
        if max_evaluations is None and max_time_s is None:
            raise ValueError("need max_evaluations and/or max_time_s")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        if scheduler not in ("sync", "async"):
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected 'sync' or 'async'"
            )
        if scheduler == "async" and self.pool is None:
            raise ValueError(
                "the asynchronous scheduler requires an evaluation pool"
            )

        clock = self.objective.clock
        state = SearchState()
        result = RunResult(
            method=self.method.name,
            variant=self.variant,
            dataset=self.objective.dataset_name,
            device=self.objective.device_name,
            chance_error=self.objective.trainer.dataset.chance_error,
        )

        run_span = self.tracer.span(
            "run",
            method=self.method.name,
            variant=self.variant,
            dataset=result.dataset,
            device=result.device,
        )
        run_span.__enter__()
        if scheduler == "async":
            rounds = self._run_async(
                state, result, rng, max_evaluations, max_time_s, journal, replay
            )
        else:
            rounds = self._run_sync(
                state, result, rng, max_evaluations, max_time_s, journal, replay
            )

        run_span.set(rounds=rounds, samples=len(result.trials))
        run_span.__exit__(None, None, None)
        result.wall_time_s = clock.now_s
        profile = getattr(self.method, "surrogate_profile", None)
        if profile is not None:
            result.surrogate_timings = profile.as_dict()
        if self.pool is not None and self.pool.cache is not None:
            # The pool's own counters, not the cache's lifetime totals:
            # a shared (warm) cache carries counts from earlier runs.
            result.cache_hits = self.pool.hits
            result.cache_misses = self.pool.misses
        if self.telemetry is not None:
            result.telemetry = self.telemetry.snapshot()
        if journal is not None:
            journal.finish(result)
        return result

    def _run_sync(
        self,
        state: SearchState,
        result: RunResult,
        rng: np.random.Generator,
        max_evaluations: int | None,
        max_time_s: float | None,
        journal,
        replay,
    ) -> int:
        """The round-barrier loop of Figure 2; returns rounds run."""
        clock = self.objective.clock
        round_index = 0
        while True:
            if clock.exceeded(max_time_s):
                break
            if (
                max_evaluations is not None
                and state.n_trained >= max_evaluations
            ):
                break
            if len(state.trials) >= self.MAX_SAMPLES:
                break

            replaying = replay is not None and round_index < replay.n_rounds

            round_size = 1
            if self.pool is not None:
                round_size = self.pool.workers
                if max_evaluations is not None:
                    round_size = min(
                        round_size, max_evaluations - state.n_trained
                    )

            round_span = self.tracer.span("round", index=round_index)
            round_span.__enter__()
            trials_before = len(result.trials)
            proposals: list[Proposal] = []
            for _ in range(round_size):
                proposals.append(self._propose_one(state, result, rng))
                if len(state.trials) >= self.MAX_SAMPLES:
                    break

            pool_outcomes = None
            if self.pool is None:
                # Sequential (paper) path: replay verifies by determinism
                # — the evaluation re-executes and must reproduce the
                # journal byte for byte.
                self._record_evaluation(state, result, proposals[0])
            else:
                clock.advance(self.cost_model.proposal_s * len(proposals))
                pool_outcomes = self.pool.evaluate_batch(
                    [p.config for p in proposals],
                    early_term=self.early_term,
                    replay=(
                        replay.pool_evals(round_index) if replaying else None
                    ),
                )
                batch_t0 = clock.now_s
                clock.advance(
                    self.pool.batch_wall_time_s(
                        pool_outcomes, self.cost_model.cache_lookup_s
                    )
                )
                self._record_batch(
                    state, result, proposals, pool_outcomes, batch_t0
                )

            if replaying:
                replay.verify_round(
                    round_index, result.trials[trials_before:]
                )
            if journal is not None and not (
                replaying and journal.skip_replay
            ):
                journal.append_round(
                    result.trials[trials_before:], pool_outcomes
                )
            round_span.set(trials=len(result.trials) - trials_before)
            round_span.__exit__(None, None, None)
            round_index += 1
        return round_index

    def _run_async(
        self,
        state: SearchState,
        result: RunResult,
        rng: np.random.Generator,
        max_evaluations: int | None,
        max_time_s: float | None,
        journal,
        replay,
    ) -> int:
        """The event-driven scheduler; returns completion events run.

        No round barrier: whenever a worker slot is free (and budget
        remains) the driver proposes against the current state *plus* the
        in-flight set and dispatches immediately; otherwise it advances
        the simulated clock to the earliest in-flight completion and
        records that trial.  With one worker the dispatch→complete
        alternation reproduces the synchronous loop trial for trial.

        Each completion event is journaled as its own round (the trials
        recorded since the previous event — model-rejections from the
        proposals in between plus the completed trial — and the fresh
        evaluation result, if any).  Journal evals land in *completion*
        order while a resumed run re-consumes them in *submission* order,
        so replay substitution is keyed by the recomputed trial seed.
        """
        clock = self.objective.clock
        pool = self.pool
        replay_map = None
        n_replay_rounds = 0
        if replay is not None:
            n_replay_rounds = replay.n_rounds
            replay_map = {}
            for i in range(n_replay_rounds):
                for e in replay.pool_evals(i) or ():
                    replay_map[int(e.seed)] = e
        inflight: dict[int, tuple[Proposal, float]] = {}
        event_index = 0
        busy_s = 0.0
        t0 = clock.now_s
        journal_mark = len(result.trials)
        sched_span = self.tracer.span("schedule", workers=pool.workers)
        sched_span.__enter__()
        while True:
            can_dispatch = (
                pool.n_inflight < pool.workers
                and not clock.exceeded(max_time_s)
                and (
                    max_evaluations is None
                    or state.n_trained + len(inflight) < max_evaluations
                )
                and len(state.trials) < self.MAX_SAMPLES
            )
            if can_dispatch:
                pending = [inflight[t][0].config for t in sorted(inflight)]
                proposal = self._propose_one(
                    state, result, rng, pending=pending
                )
                clock.advance(self.cost_model.proposal_s)
                ticket = pool.submit(
                    proposal.config,
                    clock.now_s,
                    early_term=self.early_term,
                    cache_lookup_s=self.cost_model.cache_lookup_s,
                    replay=replay_map,
                )
                inflight[ticket] = (proposal, clock.now_s)
                self.tracer.record(
                    "dispatch",
                    clock.now_s,
                    clock.now_s,
                    ticket=ticket,
                    inflight=len(inflight),
                )
                continue
            if not inflight:
                break
            completion = pool.next_completion()
            proposal, dispatch_t0 = inflight.pop(completion.ticket)
            clock.advance(max(0.0, completion.finish_s - clock.now_s))
            busy_s += completion.busy_s
            self.tracer.record(
                "complete",
                completion.finish_s,
                completion.finish_s,
                ticket=completion.ticket,
                inflight=len(inflight),
            )
            self._record_batch(
                state,
                result,
                [proposal],
                [completion.outcome],
                batch_t0=dispatch_t0,
            )
            replaying = replay is not None and event_index < n_replay_rounds
            if replaying:
                replay.verify_round(event_index, result.trials[journal_mark:])
            if journal is not None and not (
                replaying and journal.skip_replay
            ):
                journal.append_round(
                    result.trials[journal_mark:], [completion.outcome]
                )
            journal_mark = len(result.trials)
            event_index += 1
        makespan = clock.now_s - t0
        occupancy = busy_s / (pool.workers * makespan) if makespan > 0 else 0.0
        if self._m_occupancy_gauge is None:
            self._m_occupancy_gauge = self.metrics.gauge("schedule.occupancy")
        self._m_occupancy_gauge.set(occupancy)
        sched_span.set(events=event_index, occupancy=occupancy)
        sched_span.__exit__(None, None, None)
        return event_index

    # -- the headline answer --------------------------------------------------------

    def best_configuration(self, result: RunResult) -> dict | None:
        """``x*``: the feasible configuration with the best test error."""
        best_trial = None
        for trial in result.trials:
            if not trial.was_trained or math.isnan(trial.error):
                continue
            if trial.feasible_meas is False:
                continue
            if best_trial is None or trial.error < best_trial.error:
                best_trial = trial
        return None if best_trial is None else dict(best_trial.config)
