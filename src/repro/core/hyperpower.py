"""The HyperPower framework facade (paper Figure 2).

"The ML designer only provides the NN design space, the target platform,
the power/memory budget values, and the number of iterations N_max" — this
module is that entry point.  It wires a solver (Rand, Rand-Walk, HW-CWEI,
HW-IECI) in either variant:

* ``variant='hyperpower'`` — the paper's contribution: a-priori constraint
  screening through the predictive power/memory models plus early
  termination of diverging trainings;
* ``variant='default'`` — the published constraint-unaware counterpart of
  the same solver [5, 8, 6, 17]: no predictive models (BO variants learn
  constraints from hardware measurements of evaluated points), no early
  termination.

and runs the sequential loop of Figure 2 against the simulated clock,
recording every queried sample as a :class:`~repro.core.result.Trial`.

The proposing/recording core lives in :class:`~repro.core.study.Study`
(the open ask/tell API); this module owns the *closed-loop* drivers — the
synchronous round-barrier scheduler and the event-driven asynchronous
scheduler — which are thin loops over ``suggest``/``observe``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..models.hw_models import MemoryModel, PowerModel
from ..space.space import SearchSpace
from ..telemetry.metrics import NOOP_METRICS
from ..telemetry.tracer import NOOP_TRACER
from .acquisition import HWCWEI, HWIECI
from .clock import DEFAULT_COST_MODEL, CostModel
from .constraints import ConstraintSpec, GPConstraintModel, ModelConstraintChecker
from .faults import retry_seed
from .fidelity import FidelitySchedule, RungScheduler
from .methods import (
    BayesianOptimizer,
    RandomSearch,
    RandomWalk,
    SearchMethod,
)
from .objective import EvaluationOutcome, NNObjective
from .parallel import EvaluationPool, PoolOutcome
from .result import RunResult
from .study import VARIANTS, Study, Suggestion, register_run_metrics

__all__ = ["SOLVERS", "VARIANTS", "build_method", "HyperPower"]

#: The four solvers of Section 3.5.
SOLVERS = ("Rand", "Rand-Walk", "HW-CWEI", "HW-IECI")

#: Default random-walk neighbourhood size (unit-cube units).  The paper
#: highlights how sensitive Rand-Walk is to this choice; this value lets
#: the default variant succeed on the easy MNIST/TX1 pair while still
#: failing on the tightly constrained CIFAR-10 pairs, as observed there.
_DEFAULT_SIGMA = 0.15


def build_method(
    solver: str,
    variant: str,
    space: SearchSpace,
    spec: ConstraintSpec,
    power_model: PowerModel | None = None,
    memory_model: MemoryModel | None = None,
    latency_model=None,
    sigma: float = _DEFAULT_SIGMA,
    n_init: int = 5,
    pool_size: int = 1000,
    gp_restarts: int = 2,
    gp_refit_every: int = 1,
    gp_warm_start: bool = False,
    gp_burn_in: int = 15,
    fantasy: str = "cl-min",
    surrogate: str = "exact",
    surrogate_features: int = 256,
    surrogate_switch_at: int = 1000,
    scatter_init: int = 0,
) -> SearchMethod:
    """Construct one of the eight method variants.

    HyperPower variants need the fitted predictive models matching the
    active budgets; default variants must not receive them.  The ``gp_*``
    knobs configure the BO solvers' surrogate hot path (restart count,
    hyper-refit cadence, warm starting — see
    :class:`~repro.core.methods.BayesianOptimizer`) and are ignored by the
    model-free solvers, as is ``fantasy`` (the BO solvers' constant-liar
    strategy for in-flight trials under the asynchronous scheduler).

    ``surrogate`` selects the surrogate tier (``exact|rff|nystrom|auto``)
    for both the objective GP and — in default constrained variants — the
    learned constraint GPs; ``surrogate_features`` sizes the sparse basis
    and ``surrogate_switch_at`` sets the ``auto`` tier's threshold.  The
    default ``exact`` reproduces the seed path byte-for-byte.
    """
    if solver not in SOLVERS:
        raise ValueError(f"unknown solver {solver!r}; expected one of {SOLVERS}")
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; expected one of {VARIANTS}"
        )

    if variant == "hyperpower":
        checker = ModelConstraintChecker(
            spec, power_model, memory_model, latency_model=latency_model
        )
        if solver == "Rand":
            return RandomSearch(space, checker)
        if solver == "Rand-Walk":
            return RandomWalk(space, sigma, checker, feasible_incumbent=True)
        acquisition = (
            HWCWEI(checker) if solver == "HW-CWEI" else HWIECI(checker)
        )
        return BayesianOptimizer(
            space,
            acquisition,
            model_checker=checker,
            n_init=n_init,
            pool_size=pool_size,
            gp_restarts=gp_restarts,
            refit_every=gp_refit_every,
            warm_start=gp_warm_start,
            burn_in=gp_burn_in,
            fantasy=fantasy,
            surrogate=surrogate,
            surrogate_features=surrogate_features,
            surrogate_switch_at=surrogate_switch_at,
            scatter_init=scatter_init,
        )

    # Default (constraint-unaware-a-priori) variants.
    if solver == "Rand":
        return RandomSearch(space, checker=None)
    if solver == "Rand-Walk":
        return RandomWalk(space, sigma, checker=None, feasible_incumbent=False)
    learned = GPConstraintModel(
        space,
        spec,
        surrogate=surrogate,
        surrogate_features=surrogate_features,
        surrogate_switch_at=surrogate_switch_at,
    )
    acquisition = HWCWEI(learned) if solver == "HW-CWEI" else HWIECI(learned)
    return BayesianOptimizer(
        space,
        acquisition,
        learned_constraints=learned,
        n_init=n_init,
        pool_size=pool_size,
        gp_restarts=gp_restarts,
        refit_every=gp_refit_every,
        warm_start=gp_warm_start,
        burn_in=gp_burn_in,
        fantasy=fantasy,
        surrogate=surrogate,
        surrogate_features=surrogate_features,
        surrogate_switch_at=surrogate_switch_at,
        scatter_init=scatter_init,
    )


@dataclass
class _RungTrial:
    """Driver-side lifetime record of one logical trial on the rung path.

    One suggestion, many segments: the accumulators merge every segment's
    provenance into the single :class:`~repro.core.parallel.PoolOutcome`
    the study observes when the trial finally resolves.
    """

    suggestion: Suggestion
    bracket: int
    #: Last *completed* stage (-1 until the first segment returns).
    stage: int = -1
    #: Original rung-0 submission seed (None when rung 0 was a cache hit).
    seed0: int | None = None
    #: Effective curve seed — what continuations regenerate the curve from.
    seed: int | None = None
    first_dispatch_s: float = 0.0
    eval_cost_s: float = 0.0
    attempts: int = 0
    faults: list = field(default_factory=list)
    retry_s: float = 0.0
    backoff_s: float = 0.0
    all_cached: bool = True
    #: Latest segment outcome (cumulative curve, so also the best so far).
    last: EvaluationOutcome | None = None
    #: Rung-0 deployment results, carried through every later segment.
    measurement: object = None
    feasible_meas: bool | None = None
    measurement_failed: bool = False
    #: Tracer span id of the latest ``rung`` record (promote/cull parent).
    last_sid: int | None = None


class HyperPower:
    """The sequential optimization driver of Figure 2."""

    #: Hard cap on queried samples, protecting against runaway rejection
    #: loops under very tight budgets.
    MAX_SAMPLES = Study.MAX_SAMPLES

    def __init__(
        self,
        objective: NNObjective,
        method: SearchMethod,
        variant: str,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        early_term: bool | None = None,
        pool: EvaluationPool | None = None,
        telemetry=None,
    ):
        """``early_term`` overrides the variant's default (HyperPower on,
        default off) — used by the ablation benches to isolate the two
        enhancements of Section 3.2.

        ``pool`` switches the driver to the batch-parallel engine: each
        round proposes up to ``pool.workers`` configurations from the same
        state, evaluates them through the pool (with deterministic
        per-trial seeding and optional trial caching) and charges the
        clock q-parallel wall time — the ``max`` over the concurrent
        trainings, not their sum.  ``pool=None`` keeps the paper's
        sequential Figure 2 loop, bit-for-bit.

        ``telemetry`` (a :class:`~repro.telemetry.Telemetry` bundle)
        switches on span tracing and metrics: the driver binds the
        tracer to the objective's simulated clock and threads it through
        the method, objective and pool.  Tracing only *reads* the clock
        and RNG state, never consumes either, so traced and untraced
        runs are byte-identical; the default is the shared no-op pair.
        """
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        if pool is not None and pool.objective is not objective:
            raise ValueError(
                "pool must be bound to the driver's objective (same clock, "
                "same simulated world)"
            )
        self.objective = objective
        self.method = method
        self.variant = variant
        self.cost_model = cost_model
        self.pool = pool
        #: Early termination is one of the two HyperPower enhancements.
        if early_term is None:
            early_term = variant == "hyperpower"
        self.early_term = early_term

        # -- telemetry threading ------------------------------------------
        # The driver is the one component that sees every layer of a run,
        # so it owns handing the tracer/registry to its collaborators.
        self.telemetry = telemetry
        if telemetry is None:
            self.tracer = NOOP_TRACER
            self.metrics = NOOP_METRICS
        else:
            self.tracer = telemetry.tracer
            self.metrics = telemetry.metrics
            if self.tracer.clock is None:
                self.tracer.clock = objective.clock
        objective.tracer = self.tracer
        method.tracer = self.tracer
        if pool is not None:
            pool.bind_metrics(self.metrics)
        # Register the per-run instruments up front so even an idle
        # driver's snapshot carries the full set at zero.  The study
        # re-registers the same names per run (get-or-create).
        register_run_metrics(self.metrics)
        # Async-only instrument, created lazily so synchronous runs
        # (whose metric snapshots are pinned by the golden suite) never
        # register it.
        self._m_occupancy_gauge = None

    def open_study(self, rng: np.random.Generator) -> Study:
        """Open an ask/tell :class:`~repro.core.study.Study` over this
        driver's method, objective and telemetry.

        ``run`` opens one of these internally per call; external callers
        can drive the returned study directly and obtain results
        byte-identical to the closed loop.
        """
        return Study(
            self.method,
            self.variant,
            clock=self.objective.clock,
            rng=rng,
            cost_model=self.cost_model,
            objective=self.objective,
            early_term=self.early_term,
            dataset=self.objective.dataset_name,
            device=self.objective.device_name,
            chance_error=self.objective.trainer.dataset.chance_error,
            tracer=self.tracer,
            metrics=self.metrics,
            max_samples=self.MAX_SAMPLES,
        )

    # -- main loop ------------------------------------------------------------------

    def run(
        self,
        rng: np.random.Generator,
        max_evaluations: int | None = None,
        max_time_s: float | None = None,
        journal=None,
        replay=None,
        scheduler: str = "sync",
        fidelity: FidelitySchedule | None = None,
    ) -> RunResult:
        """Run the optimization until a budget is exhausted.

        Parameters
        ----------
        rng:
            Randomness for proposals (objective noise has its own stream).
        max_evaluations:
            ``N_max`` — budget on *trained* evaluations (the fixed-
            function-evaluations protocol of Figure 4).
        max_time_s:
            Simulated wall-clock budget (the fixed-runtime protocol of
            Tables 2-5).  Following the paper, a sample started before the
            deadline is allowed to complete, so final run times land
            slightly above the budget.
        journal:
            Optional crash-safe run journal (:class:`~repro.io.RunJournal`
            or any object exposing ``append_round``/``finish`` and a
            ``skip_replay`` flag).  Every completed round of trials is
            flushed to it before the next round starts, so a killed
            process loses at most the round in flight.
        replay:
            Optional :class:`~repro.io.JournalReplay` from an interrupted
            run.  The driver re-runs its loop (all proposal RNG streams
            and clock charges recompute identically) but substitutes the
            journaled evaluation results instead of dispatching trainings,
            verifying each recomputed round against the journal; once the
            journal is drained the run continues live, bit-identically to
            an uninterrupted one.  Requires the pool path (``pool=None``
            replays by deterministic re-execution, which verifies the
            journal but re-spends the evaluation compute).
        scheduler:
            ``"sync"`` (the default) runs the round-barrier loop —
            byte-identical to every release before the scheduler existed.
            ``"async"`` runs the event-driven scheduler: workers are
            refilled the moment a trial completes, proposals condition on
            the in-flight set (constant-liar fantasies for the BO
            solvers), and one journal round is written per completion
            event.  Requires the pool path.
        fidelity:
            Optional :class:`~repro.core.fidelity.FidelitySchedule`.  When
            given, trials run rung by rung on the event queue (successive
            halving / Hyperband): each trial trains to its rung's epoch
            budget, pauses as first-class resumable state, and is promoted
            or culled by rank once its rung cell fills.  Requires the
            asynchronous scheduler.  ``None`` (the default) keeps the
            classic full-fidelity paths byte-identical.
        """
        if max_evaluations is None and max_time_s is None:
            raise ValueError("need max_evaluations and/or max_time_s")
        if max_evaluations is not None and max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        if scheduler not in ("sync", "async"):
            raise ValueError(
                f"unknown scheduler {scheduler!r}; expected 'sync' or 'async'"
            )
        if scheduler == "async" and self.pool is None:
            raise ValueError(
                "the asynchronous scheduler requires an evaluation pool"
            )
        if fidelity is not None and scheduler != "async":
            raise ValueError(
                "multi-fidelity rungs require the asynchronous scheduler"
            )

        study = self.open_study(rng)
        result = study.result

        run_span = self.tracer.span(
            "run",
            method=self.method.name,
            variant=self.variant,
            dataset=result.dataset,
            device=result.device,
        )
        run_span.__enter__()
        if fidelity is not None:
            rounds = self._run_rungs(
                study, max_evaluations, max_time_s, journal, replay, fidelity
            )
        elif scheduler == "async":
            rounds = self._run_async(
                study, max_evaluations, max_time_s, journal, replay
            )
        else:
            rounds = self._run_sync(
                study, max_evaluations, max_time_s, journal, replay
            )

        run_span.set(rounds=rounds, samples=len(result.trials))
        run_span.__exit__(None, None, None)
        study.finalize()
        if self.pool is not None and self.pool.cache is not None:
            # The pool's own counters, not the cache's lifetime totals:
            # a shared (warm) cache carries counts from earlier runs.
            result.cache_hits = self.pool.hits
            result.cache_misses = self.pool.misses
        if self.telemetry is not None:
            result.telemetry = self.telemetry.snapshot()
        if journal is not None:
            journal.finish(result)
        return result

    def _run_sync(
        self,
        study: Study,
        max_evaluations: int | None,
        max_time_s: float | None,
        journal,
        replay,
    ) -> int:
        """The round-barrier loop of Figure 2; returns rounds run."""
        clock = self.objective.clock
        state = study.state
        result = study.result
        round_index = 0
        while True:
            if clock.exceeded(max_time_s):
                break
            if (
                max_evaluations is not None
                and state.n_trained >= max_evaluations
            ):
                break
            if len(state.trials) >= study.max_samples:
                break

            replaying = replay is not None and round_index < replay.n_rounds

            round_size = 1
            if self.pool is not None:
                round_size = self.pool.workers
                if max_evaluations is not None:
                    round_size = min(
                        round_size, max_evaluations - state.n_trained
                    )

            round_span = self.tracer.span("round", index=round_index)
            round_span.__enter__()
            trials_before = len(result.trials)
            # Historical rounds propose from one frozen state, so the
            # round's own suggestions must not see each other as pending.
            suggestions = study.suggest(round_size, batch_aware=False)

            pool_outcomes = None
            if self.pool is None:
                # Sequential (paper) path: replay verifies by determinism
                # — the evaluation re-executes and must reproduce the
                # journal byte for byte.
                study.evaluate_and_observe(suggestions[0])
            else:
                pool_outcomes = self.pool.evaluate_batch(
                    [s.config for s in suggestions],
                    early_term=self.early_term,
                    replay=(
                        replay.pool_evals(round_index) if replaying else None
                    ),
                )
                batch_t0 = clock.now_s
                clock.advance(
                    self.pool.batch_wall_time_s(
                        pool_outcomes, self.cost_model.cache_lookup_s
                    )
                )
                study.observe_batch(suggestions, pool_outcomes, batch_t0)

            if replaying:
                replay.verify_round(
                    round_index, result.trials[trials_before:]
                )
            if journal is not None and not (
                replaying and journal.skip_replay
            ):
                journal.append_round(
                    result.trials[trials_before:], pool_outcomes
                )
            round_span.set(trials=len(result.trials) - trials_before)
            round_span.__exit__(None, None, None)
            round_index += 1
        return round_index

    def _run_async(
        self,
        study: Study,
        max_evaluations: int | None,
        max_time_s: float | None,
        journal,
        replay,
    ) -> int:
        """The event-driven scheduler; returns completion events run.

        No round barrier: whenever a worker slot is free (and budget
        remains) the driver asks the study for one suggestion — proposed
        against the current state *plus* the pending (in-flight) set —
        and dispatches immediately; otherwise it advances the simulated
        clock to the earliest in-flight completion and observes that
        trial.  With one worker the dispatch→complete alternation
        reproduces the synchronous loop trial for trial.

        Each completion event is journaled as its own round (the trials
        recorded since the previous event — model-rejections from the
        proposals in between plus the completed trial — and the fresh
        evaluation result, if any).  Journal evals land in *completion*
        order while a resumed run re-consumes them in *submission* order,
        so replay substitution is keyed by the recomputed trial seed.
        """
        clock = self.objective.clock
        state = study.state
        result = study.result
        pool = self.pool
        replay_map = None
        n_replay_rounds = 0
        if replay is not None:
            n_replay_rounds = replay.n_rounds
            replay_map = {}
            for i in range(n_replay_rounds):
                for e in replay.pool_evals(i) or ():
                    replay_map[int(e.seed)] = e
        inflight: dict[int, Suggestion] = {}
        event_index = 0
        busy_s = 0.0
        t0 = clock.now_s
        journal_mark = len(result.trials)
        sched_span = self.tracer.span("schedule", workers=pool.workers)
        sched_span.__enter__()
        while True:
            can_dispatch = (
                pool.n_inflight < pool.workers
                and not clock.exceeded(max_time_s)
                and (
                    max_evaluations is None
                    or state.n_trained + len(inflight) < max_evaluations
                )
                and len(state.trials) < study.max_samples
            )
            if can_dispatch:
                (suggestion,) = study.suggest(1)
                ticket = pool.submit(
                    suggestion.proposal.config,
                    clock.now_s,
                    early_term=self.early_term,
                    cache_lookup_s=self.cost_model.cache_lookup_s,
                    replay=replay_map,
                )
                inflight[ticket] = suggestion
                self.tracer.record(
                    "dispatch",
                    clock.now_s,
                    clock.now_s,
                    ticket=ticket,
                    inflight=len(inflight),
                )
                continue
            if not inflight:
                break
            completion = pool.next_completion()
            suggestion = inflight.pop(completion.ticket)
            clock.advance(max(0.0, completion.finish_s - clock.now_s))
            busy_s += completion.busy_s
            self.tracer.record(
                "complete",
                completion.finish_s,
                completion.finish_s,
                ticket=completion.ticket,
                inflight=len(inflight),
            )
            study.observe(
                suggestion, completion.outcome, batch_t0=suggestion.issued_s
            )
            replaying = replay is not None and event_index < n_replay_rounds
            if replaying:
                replay.verify_round(event_index, result.trials[journal_mark:])
            if journal is not None and not (
                replaying and journal.skip_replay
            ):
                journal.append_round(
                    result.trials[journal_mark:], [completion.outcome]
                )
            journal_mark = len(result.trials)
            event_index += 1
        makespan = clock.now_s - t0
        occupancy = busy_s / (pool.workers * makespan) if makespan > 0 else 0.0
        if self._m_occupancy_gauge is None:
            self._m_occupancy_gauge = self.metrics.gauge("schedule.occupancy")
        self._m_occupancy_gauge.set(occupancy)
        sched_span.set(events=event_index, occupancy=occupancy)
        sched_span.__exit__(None, None, None)
        return event_index

    def _run_rungs(
        self,
        study: Study,
        max_evaluations: int | None,
        max_time_s: float | None,
        journal,
        replay,
        fidelity: FidelitySchedule,
    ) -> int:
        """The multi-fidelity event loop; returns completion events run.

        Successive halving on the event queue: every logical trial runs as
        a chain of *segments*.  The rung-0 segment trains from scratch to
        the first rung's epoch budget; each later segment is a seed-pinned
        continuation that resumes the identical learning curve at the
        previous rung's epoch count.  A trial that finishes a non-final
        rung *pauses* — its suggestion stays pending (so BO fantasies lie
        at the observed partial error) — until its rung cell fills, at
        which point the top ``1/eta`` by observed error are queued for
        promotion and the rest are culled, observed as ``CULLED`` trials
        whose partial errors are real (low-fidelity) observations.  Freed
        workers redispatch immediately, promotions first.

        Journal/replay mirrors ``_run_async``: one journal round per
        completion event, carrying the *segment* evaluation (with its
        ``start_epoch``/``epochs``), keyed for replay substitution by
        ``(seed, start_epoch)``.  Trials left paused when the run drains
        (budget exhausted before their cell filled) are culled in a final
        evaluation-free round.
        """
        clock = self.objective.clock
        state = study.state
        result = study.result
        pool = self.pool
        lookup_s = self.cost_model.cache_lookup_s
        sched = RungScheduler(fidelity)
        replay_map = None
        n_replay_rounds = 0
        if replay is not None:
            n_replay_rounds = replay.n_rounds
            replay_map = {}
            for i in range(n_replay_rounds):
                for e in replay.pool_evals(i) or ():
                    replay_map[(int(e.seed), int(e.start_epoch))] = e
        #: pool ticket -> (trial, stage being trained, dispatch time).
        running: dict[int, tuple[_RungTrial, int, float]] = {}
        #: suggestion ticket -> trial waiting for its rung cell to fill.
        paused: dict[int, _RungTrial] = {}
        promo_queue: list[_RungTrial] = []
        next_bracket = 0
        event_index = 0
        busy_s = 0.0
        t0 = clock.now_s
        journal_mark = len(result.trials)
        sched_span = self.tracer.span(
            "schedule",
            workers=pool.workers,
            rungs=fidelity.num_rungs,
            eta=fidelity.eta,
        )
        sched_span.__enter__()

        def flush_event(pool_outcomes) -> None:
            nonlocal journal_mark, event_index
            replaying = replay is not None and event_index < n_replay_rounds
            if replaying:
                replay.verify_round(event_index, result.trials[journal_mark:])
            if journal is not None and not (
                replaying and journal.skip_replay
            ):
                journal.append_round(
                    result.trials[journal_mark:], pool_outcomes
                )
            journal_mark = len(result.trials)
            event_index += 1

        def merged_outcome(rt: _RungTrial, *, culled: bool) -> PoolOutcome:
            last = rt.last
            outcome = EvaluationOutcome(
                error=last.error,
                final_error=last.final_error,
                epochs_run=last.epochs_run,
                stopped_early=last.stopped_early,
                diverged=last.diverged,
                measurement=rt.measurement,
                feasible_meas=rt.feasible_meas,
                cost_s=rt.eval_cost_s,
                measurement_failed=rt.measurement_failed,
            )
            return PoolOutcome(
                outcome,
                cached=rt.all_cached,
                seed=None if rt.all_cached else rt.seed0,
                attempts=rt.attempts,
                faults=tuple(rt.faults),
                retry_s=rt.retry_s,
                backoff_s=rt.backoff_s,
                epochs=fidelity.target_epochs(rt.bracket, rt.stage),
                rung=rt.stage,
                culled=culled,
            )

        def cull(rt: _RungTrial) -> None:
            study.observe(
                rt.suggestion,
                merged_outcome(rt, culled=True),
                batch_t0=rt.first_dispatch_s,
            )
            self.tracer.record(
                "cull",
                clock.now_s,
                clock.now_s,
                parent=rt.last_sid,
                ticket=rt.suggestion.ticket,
                stage=rt.stage,
            )

        while True:
            free = pool.n_inflight < pool.workers
            out_of_time = clock.exceeded(max_time_s)
            if free and promo_queue and not out_of_time:
                rt = promo_queue.pop(0)
                stage = rt.stage + 1
                ticket = pool.submit_segment(
                    rt.suggestion.proposal.config,
                    clock.now_s,
                    epochs=fidelity.target_epochs(rt.bracket, stage),
                    start_epoch=fidelity.start_epoch(rt.bracket, stage),
                    seed=rt.seed,
                    early_term=self.early_term,
                    cache_lookup_s=lookup_s,
                    replay=replay_map,
                )
                running[ticket] = (rt, stage, clock.now_s)
                continue
            can_start = (
                free
                and not out_of_time
                and (
                    max_evaluations is None
                    or state.n_trained + study.n_pending < max_evaluations
                )
                and len(state.trials) < study.max_samples
            )
            if can_start:
                (suggestion,) = study.suggest(1)
                bracket = next_bracket
                next_bracket = (next_bracket + 1) % fidelity.brackets
                rt = _RungTrial(suggestion=suggestion, bracket=bracket)
                rt.first_dispatch_s = clock.now_s
                ticket = pool.submit_segment(
                    suggestion.proposal.config,
                    clock.now_s,
                    epochs=fidelity.target_epochs(bracket, 0),
                    start_epoch=0,
                    early_term=self.early_term,
                    cache_lookup_s=lookup_s,
                    replay=replay_map,
                )
                running[ticket] = (rt, 0, clock.now_s)
                continue
            if pool.n_inflight == 0:
                break
            completion = pool.next_completion()
            rt, stage, dispatched_s = running.pop(completion.ticket)
            clock.advance(max(0.0, completion.finish_s - clock.now_s))
            busy_s += completion.busy_s
            po = completion.outcome
            rt.stage = stage
            rt.attempts += po.attempts
            rt.faults.extend(po.faults)
            rt.retry_s += po.retry_s
            rt.backoff_s += po.backoff_s
            if not po.cached:
                rt.all_cached = False
            sid = self.tracer.record(
                "rung",
                dispatched_s,
                completion.finish_s,
                ticket=rt.suggestion.ticket,
                bracket=rt.bracket,
                stage=stage,
            )
            self.tracer.record(
                "dispatch",
                dispatched_s,
                dispatched_s,
                parent=sid,
                ticket=completion.ticket,
            )
            rt.last_sid = sid
            if stage == 0 and not po.failed:
                if po.cached:
                    key = pool.cache.key(
                        rt.suggestion.proposal.config,
                        epochs=fidelity.target_epochs(rt.bracket, 0),
                    )
                    rt.seed = pool.cache.seed_for(key)
                    if rt.seed is None:
                        raise RuntimeError(
                            "no curve seed recorded for cached rung result"
                        )
                else:
                    rt.seed0 = po.seed
                    rt.seed = retry_seed(po.seed, po.attempts - 1)
            if po.failed:
                failed = PoolOutcome(
                    None,
                    cached=False,
                    seed=rt.seed0 if rt.seed0 is not None else po.seed,
                    attempts=rt.attempts,
                    faults=tuple(rt.faults),
                    failure_kind=po.failure_kind,
                    retry_s=rt.retry_s,
                    backoff_s=rt.backoff_s,
                    rung=stage,
                )
                study.observe(
                    rt.suggestion, failed, batch_t0=rt.first_dispatch_s
                )
                flush_event([po])
                continue
            rt.last = po.outcome
            rt.eval_cost_s += lookup_s if po.cached else po.outcome.cost_s
            if stage == 0:
                rt.measurement = po.outcome.measurement
                rt.feasible_meas = po.outcome.feasible_meas
                rt.measurement_failed = po.outcome.measurement_failed
            if po.outcome.stopped_early or fidelity.is_final(
                rt.bracket, stage
            ):
                study.observe(
                    rt.suggestion,
                    merged_outcome(rt, culled=False),
                    batch_t0=rt.first_dispatch_s,
                )
                flush_event([po])
                continue
            # Pause: the suggestion stays pending with its partial error
            # visible to the method, and the trial waits for rank.
            rt.suggestion.observed_error = float(po.outcome.error)
            rt.suggestion.observed_epochs = int(po.outcome.epochs_run)
            paused[rt.suggestion.ticket] = rt
            self.tracer.record(
                "pause",
                completion.finish_s,
                completion.finish_s,
                parent=sid,
                ticket=rt.suggestion.ticket,
                stage=stage,
            )
            decision = sched.arrive(
                rt.bracket, stage, rt.suggestion.ticket, po.outcome.error
            )
            if decision is not None:
                for t in decision.promoted:
                    winner = paused.pop(t)
                    promo_queue.append(winner)
                    self.tracer.record(
                        "promote",
                        clock.now_s,
                        clock.now_s,
                        parent=winner.last_sid,
                        ticket=t,
                        stage=stage + 1,
                    )
                for t in decision.culled:
                    cull(paused.pop(t))
            flush_event([po])

        # Drain: trials stranded mid-ladder when the budget ran out —
        # paused in unfilled cells, or promoted with no time to run.
        for t in sched.flush():
            cull(paused.pop(t))
        for rt in promo_queue:
            cull(rt)
        promo_queue = []
        if len(result.trials) > journal_mark:
            flush_event([])

        makespan = clock.now_s - t0
        occupancy = busy_s / (pool.workers * makespan) if makespan > 0 else 0.0
        if self._m_occupancy_gauge is None:
            self._m_occupancy_gauge = self.metrics.gauge("schedule.occupancy")
        self._m_occupancy_gauge.set(occupancy)
        self.metrics.counter("rung.pauses").inc(sched.pauses)
        self.metrics.counter("rung.promotions").inc(sched.promotions)
        self.metrics.counter("rung.culls").inc(sched.culls)
        sched_span.set(
            events=event_index, occupancy=occupancy, paused=sched.n_paused
        )
        sched_span.__exit__(None, None, None)
        return event_index

    # -- the headline answer --------------------------------------------------------

    def best_configuration(self, result: RunResult) -> dict | None:
        """``x*``: the feasible configuration with the best test error."""
        best_trial = None
        for trial in result.trials:
            if not trial.was_trained or math.isnan(trial.error):
                continue
            if trial.feasible_meas is False:
                continue
            if best_trial is None or trial.error < best_trial.error:
                best_trial = trial
        return None if best_trial is None else dict(best_trial.config)
