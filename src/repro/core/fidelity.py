"""Multi-fidelity rung schedules: successive halving and Hyperband.

HyperPower's own runtime wins come from not paying for doomed
configurations (paper Section 3.2, Figure 3); rung scheduling generalises
that idea from "kill divergers after a few epochs" to "let *rank* decide
who trains on".  Epochs become a first-class fidelity: trials train to a
geometric sequence of cumulative epoch budgets (the *rungs*), pause, and
are promoted to the next rung or culled by top-``1/eta`` rank once enough
peers have reached the same rung (a full *cell*).

The pieces here are pure bookkeeping — no clocks, no RNG, no I/O — so the
asynchronous driver (:meth:`repro.core.hyperpower.HyperPower.run` with
``fidelity=``) can execute them natively on its event queue:

* :class:`FidelitySchedule` — the rung ladder (cumulative epoch budgets),
  cell sizes and promotion quotas, including Hyperband-style brackets
  (bracket ``b`` starts at rung ``b``, trading exploration width for
  per-trial fidelity).
* :class:`RungScheduler` — fills rung cells as paused trials arrive and
  emits deterministic promote/cull decisions.  Ranking is by
  ``(error, ticket)``, so equal errors break by issue order and the
  decision is invariant to completion-event arrival order.
* :func:`segment_seed` — the fault-stream tag for continuation segments:
  a resumed trial keeps its curve seed fixed (the checkpoint must replay
  bit-exactly) while each segment still draws independent fault luck.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "FidelitySchedule",
    "RungDecision",
    "RungScheduler",
    "SEGMENT_SEED_TAG",
    "segment_seed",
]

#: Seed-word tag (ASCII ``RUNG``) mixing a continuation segment's fault
#: stream away from the rung-0 stream of the same trial seed.
SEGMENT_SEED_TAG = 0x52554E47


def segment_seed(trial_seed: int, start_epoch: int) -> int:
    """Deterministic fault-stream seed for a continuation segment.

    Rung-0 segments draw faults from the trial seed itself (byte-identical
    to the classic pool paths); a continuation resuming at ``start_epoch``
    draws from this derived seed instead, so retrying a continuation
    re-rolls only the fault luck — never the curve, which is pinned to the
    checkpointed seed.
    """
    return int(
        np.random.SeedSequence(
            [int(trial_seed), SEGMENT_SEED_TAG, int(start_epoch)]
        ).generate_state(1)[0]
    )


@dataclass(frozen=True)
class FidelitySchedule:
    """A geometric rung ladder over training epochs.

    ``rungs`` are *cumulative* epoch budgets, strictly increasing; a trial
    at stage ``k`` has trained ``rungs[k]`` epochs in total.  ``n0`` is the
    rung-0 cell size — how many trials must reach a rung before it is
    ranked (the "scatter" width of the cheapest fidelity); promotion keeps
    the top ``max(1, cell // eta)``.

    ``brackets > 1`` enables Hyperband: bracket ``b`` uses the sub-ladder
    ``rungs[b:]`` (it starts training straight to a higher fidelity) with
    a proportionally smaller initial cell, and the driver assigns new
    trials to brackets round-robin.
    """

    #: Cumulative epoch budgets, strictly increasing.
    rungs: tuple[int, ...]
    #: Rank-promotion ratio: each rung keeps the top ``1/eta``.
    eta: int = 3
    #: Rung-0 cell size of bracket 0; defaults to ``eta**(num_rungs-1)``
    #: (classic SHA: exactly one trial survives to the final rung).
    n0: int | None = None
    #: Number of Hyperband brackets (1 = plain successive halving).
    brackets: int = 1

    def __post_init__(self) -> None:
        rungs = tuple(int(r) for r in self.rungs)
        object.__setattr__(self, "rungs", rungs)
        if not rungs:
            raise ValueError("need at least one rung")
        if rungs[0] < 1:
            raise ValueError("rung budgets must be >= 1 epoch")
        if any(b >= a for b, a in zip(rungs, rungs[1:])):
            raise ValueError(f"rungs must be strictly increasing, got {rungs}")
        if self.eta < 2:
            raise ValueError("eta must be >= 2")
        if self.n0 is not None and self.n0 < 1:
            raise ValueError("n0 must be >= 1")
        if not (1 <= self.brackets <= len(rungs)):
            raise ValueError(
                f"brackets must be in [1, {len(rungs)}], got {self.brackets}"
            )

    @classmethod
    def geometric(
        cls,
        max_epochs: int,
        min_epochs: int = 1,
        eta: int = 3,
        num_rungs: int | None = None,
        scatter_init: int | None = None,
        brackets: int = 1,
    ) -> "FidelitySchedule":
        """The standard ladder ``min_epochs * eta**k``, capped at
        ``max_epochs`` (which always terminates the ladder, so surviving
        trials train the full schedule).

        ``num_rungs`` truncates/stretches the ladder to exactly that many
        rungs (the last always ``max_epochs``); ``scatter_init`` overrides
        the rung-0 cell size.
        """
        if max_epochs < 1 or min_epochs < 1:
            raise ValueError("epoch budgets must be >= 1")
        if min_epochs > max_epochs:
            raise ValueError("min_epochs must be <= max_epochs")
        levels = []
        budget = int(min_epochs)
        while budget < max_epochs:
            levels.append(budget)
            budget *= int(eta)
        levels.append(int(max_epochs))
        if num_rungs is not None:
            if num_rungs < 1:
                raise ValueError("num_rungs must be >= 1")
            if num_rungs < len(levels):
                # Keep the cheapest rungs and the full-fidelity cap.
                levels = levels[: num_rungs - 1] + [int(max_epochs)]
            # A requested ladder longer than the geometric one is left as
            # is: extra rungs would duplicate budgets.
        return cls(
            rungs=tuple(levels),
            eta=int(eta),
            n0=scatter_init,
            brackets=int(brackets),
        )

    @property
    def num_rungs(self) -> int:
        """Stages in the bracket-0 ladder."""
        return len(self.rungs)

    @property
    def max_epochs(self) -> int:
        """The full-fidelity budget (last rung)."""
        return self.rungs[-1]

    def bracket_rungs(self, bracket: int) -> tuple[int, ...]:
        """The sub-ladder of one bracket (bracket ``b`` skips the ``b``
        cheapest rungs, Hyperband style)."""
        self._check_bracket(bracket)
        return self.rungs[bracket:]

    def _check_bracket(self, bracket: int) -> None:
        if not (0 <= bracket < self.brackets):
            raise ValueError(
                f"bracket must be in [0, {self.brackets}), got {bracket}"
            )

    def initial_cell(self, bracket: int) -> int:
        """Rung-0 cell size of one bracket.

        Bracket 0 uses ``n0`` (default ``eta**(num_rungs-1)``); later
        brackets scale it down by ``eta**bracket`` and up by the standard
        Hyperband width correction ``(s+1)/(s_b+1)``, so every bracket
        spends a comparable epoch budget.
        """
        self._check_bracket(bracket)
        s = self.num_rungs - 1
        base = self.n0 if self.n0 is not None else self.eta**s
        if bracket == 0:
            return max(1, int(base))
        s_b = s - bracket
        scaled = math.ceil(base * (s + 1) / ((s_b + 1) * self.eta**bracket))
        return max(1, int(scaled))

    def cell_size(self, bracket: int, stage: int) -> int:
        """Trials that must pause at ``(bracket, stage)`` before ranking."""
        ladder = self.bracket_rungs(bracket)
        if not (0 <= stage < len(ladder)):
            raise ValueError(
                f"stage must be in [0, {len(ladder)}), got {stage}"
            )
        return max(1, math.ceil(self.initial_cell(bracket) / self.eta**stage))

    def promote_count(self, bracket: int, stage: int) -> int:
        """How many of a full cell advance to the next rung (top-1/eta,
        never fewer than one — a cell too small to rank promotes its
        best rather than stranding the ladder)."""
        return max(1, self.cell_size(bracket, stage) // self.eta)

    def is_final(self, bracket: int, stage: int) -> bool:
        """Whether ``stage`` is the bracket's full-fidelity rung."""
        return stage == len(self.bracket_rungs(bracket)) - 1

    def target_epochs(self, bracket: int, stage: int) -> int:
        """Cumulative epoch budget a trial trains to at ``stage``."""
        ladder = self.bracket_rungs(bracket)
        return ladder[stage]

    def start_epoch(self, bracket: int, stage: int) -> int:
        """Epoch a ``stage`` segment resumes from (0 at the first rung)."""
        ladder = self.bracket_rungs(bracket)
        return 0 if stage == 0 else ladder[stage - 1]


@dataclass(frozen=True)
class RungDecision:
    """The outcome of ranking one full rung cell."""

    #: Tickets advancing to the next rung, best first.
    promoted: tuple[int, ...]
    #: Tickets terminated at this fidelity, best first.
    culled: tuple[int, ...]


class RungScheduler:
    """Deterministic promote/cull bookkeeping over rung cells.

    Paused trials :meth:`arrive` at their ``(bracket, stage)`` cell; when
    the cell reaches :meth:`FidelitySchedule.cell_size` members it is
    ranked by ``(error, ticket)`` — the issue-order ticket breaks ties, so
    the decision never depends on completion-event arrival order — and
    cleared.  Non-finite errors rank last.
    """

    def __init__(self, schedule: FidelitySchedule):
        self.schedule = schedule
        self._cells: dict[tuple[int, int], list[tuple[float, int]]] = {}
        #: Lifetime decision counters (telemetry reads these).
        self.pauses = 0
        self.promotions = 0
        self.culls = 0

    @property
    def n_paused(self) -> int:
        """Trials currently waiting in unfilled cells."""
        return sum(len(cell) for cell in self._cells.values())

    def arrive(
        self, bracket: int, stage: int, ticket: int, error: float
    ) -> RungDecision | None:
        """Register a paused trial; returns the cell's decision when full.

        ``ticket`` is the study-issue ticket (the rank tiebreaker);
        ``error`` the trial's best observed error at this fidelity.
        """
        rank_error = float(error)
        if not math.isfinite(rank_error):
            rank_error = math.inf
        cell = self._cells.setdefault((bracket, stage), [])
        cell.append((rank_error, int(ticket)))
        self.pauses += 1
        if len(cell) < self.schedule.cell_size(bracket, stage):
            return None
        ranked = sorted(cell)
        del self._cells[(bracket, stage)]
        keep = self.schedule.promote_count(bracket, stage)
        promoted = tuple(ticket for _, ticket in ranked[:keep])
        culled = tuple(ticket for _, ticket in ranked[keep:])
        self.promotions += len(promoted)
        self.culls += len(culled)
        return RungDecision(promoted=promoted, culled=culled)

    def flush(self) -> list[int]:
        """Drain every unfilled cell at end of run.

        Returns the stranded tickets in deterministic order (cells by
        ``(bracket, stage)``, members by rank) — the driver resolves them
        as culled, since no peer cohort will ever rank them.
        """
        stranded: list[int] = []
        for key in sorted(self._cells):
            stranded.extend(ticket for _, ticket in sorted(self._cells[key]))
        self._cells.clear()
        self.culls += len(stranded)
        return stranded
