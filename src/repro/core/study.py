"""The open ask/tell optimization core.

:class:`Study` splits the closed loop of :class:`~repro.core.hyperpower.
HyperPower` (paper Figure 2) into two halves that external callers can
drive at their own pace:

* :meth:`Study.suggest` — propose the next configuration(s).  Proposals
  are *pending-aware*: configurations suggested but not yet observed are
  forwarded to the method, which excludes them (random/grid solvers) or
  conditions on constant-liar fantasies (the BO solvers), exactly as the
  asynchronous scheduler does for its in-flight set.  Every clock charge
  of the closed loop — proposal cost, screening, GP fit/append/fantasy —
  happens here, so a Study-driven run reproduces ``HyperPower.run``'s
  simulated timeline bit for bit.
* :meth:`Study.observe` — fold a result back into the search state, the
  surrogate's training set, the trial record and the metrics registry.
  Results arrive either as pool outcomes (the internal drivers) or as
  :class:`TrialReport` objects measured by an external trainer (the
  service layer), and may be observed in any order.

The synchronous and asynchronous drivers in ``hyperpower.py`` are thin
loops over this API; the multi-tenant service layer
(:mod:`repro.service`) holds one long-lived ``Study`` per named study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..telemetry.metrics import NOOP_METRICS
from ..telemetry.tracer import NOOP_TRACER
from .clock import DEFAULT_COST_MODEL, CostModel, SimClock
from .methods import PendingTrial, Proposal, SearchMethod, SearchState
from .parallel import PoolOutcome, canonical_config_key
from .result import RunResult, Trial, TrialStatus

__all__ = ["VARIANTS", "Study", "Suggestion", "TrialReport"]

#: The two implementations compared throughout Section 5 (re-exported by
#: :mod:`repro.core.hyperpower`).
VARIANTS = ("default", "hyperpower")


@dataclass
class Suggestion:
    """One open proposal issued by :meth:`Study.suggest`.

    A suggestion stays *pending* — visible to subsequent proposals and
    counted against the service layer's ``max_pending`` quota — until it
    is resolved by :meth:`Study.observe` (or
    :meth:`Study.evaluate_and_observe`).
    """

    #: Study-local monotonically increasing identifier.
    ticket: int
    #: The full method proposal (predictions, screening bookkeeping).
    proposal: Proposal
    #: The configuration to evaluate (a private copy).
    config: dict
    #: Simulated time at which the suggestion was issued.
    issued_s: float = 0.0
    #: Ticket of an earlier *pending* suggestion with the same canonical
    #: configuration, when the method degenerated to a duplicate (tiny or
    #: exhausted spaces).  Callers may share one evaluation across both.
    duplicate_of: int | None = None
    #: Best error observed at the suggestion's last completed rung (set by
    #: the multi-fidelity driver while the trial is paused); ``None``
    #: until a partial observation exists.  Pending-aware BO methods lie
    #: at this value instead of the generic constant-liar default.
    observed_error: float | None = None
    #: Cumulative epochs behind ``observed_error``.
    observed_epochs: int = 0


@dataclass(frozen=True)
class TrialReport:
    """An externally measured trial result for :meth:`Study.observe`.

    This is the service-layer counterpart of an
    :class:`~repro.core.objective.EvaluationOutcome`: the client trained
    the configuration itself and reports what it saw.  ``cost_s`` is
    charged to the study's simulated clock on observation.
    """

    error: float = float("nan")
    cost_s: float = 0.0
    epochs_run: int = 0
    stopped_early: bool = False
    diverged: bool = False
    power_w: float | None = None
    memory_bytes: float | None = None
    latency_s: float | None = None
    failed: bool = False
    failure_kind: str | None = None

    def to_dict(self) -> dict:
        """JSON-ready form (round-trips through :meth:`from_dict`)."""
        return {
            "error": self.error,
            "cost_s": self.cost_s,
            "epochs_run": self.epochs_run,
            "stopped_early": self.stopped_early,
            "diverged": self.diverged,
            "power_w": self.power_w,
            "memory_bytes": self.memory_bytes,
            "latency_s": self.latency_s,
            "failed": self.failed,
            "failure_kind": self.failure_kind,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrialReport":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        extra = set(data) - set(cls.__dataclass_fields__)
        if extra:
            raise ValueError(f"unknown trial report fields {sorted(extra)}")
        return cls(**known)


def register_run_metrics(metrics) -> dict:
    """Register the deterministic per-run instruments (get-or-create).

    Returns the handle map shared by the driver and the study.  The
    async-only instruments (``gp.fantasies``, ``schedule.occupancy``) are
    *not* registered here — synchronous metric snapshots are pinned by
    the golden suite and must never grow them.
    """
    handles = {
        # CULLED is excluded: the counter is created lazily on the first
        # cull (multi-fidelity runs only), so classic runs' pinned metric
        # snapshots never grow a `trials.culled` key.
        "trials": {
            status: metrics.counter(f"trials.{status.value}")
            for status in TrialStatus
            if status is not TrialStatus.CULLED
        },
        "rejections": metrics.counter("screen.rejections"),
        "silent_checks": metrics.counter("screen.silent_checks"),
        "gp_fits": metrics.counter("gp.refits"),
        "gp_appends": metrics.counter("gp.appends"),
        "attempts": metrics.counter("eval.attempts"),
        "faults": metrics.counter("retry.faults"),
        "retry_s": metrics.counter("retry.time_s"),
    }
    return handles


class Study:
    """One optimization run, driven from the outside via ask/tell.

    The study owns the search state, the trial record
    (:class:`~repro.core.result.RunResult`), the proposal RNG and the
    pending set.  It performs every simulated-clock charge and telemetry
    write the closed-loop driver used to perform, in the same order, so
    a run driven through ``suggest``/``observe`` is byte-identical to the
    equivalent ``HyperPower.run``.
    """

    #: Hard cap on queried samples, protecting against runaway rejection
    #: loops under very tight budgets.
    MAX_SAMPLES = 500_000

    def __init__(
        self,
        method: SearchMethod,
        variant: str,
        *,
        clock: SimClock,
        rng: np.random.Generator,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        objective=None,
        spec=None,
        early_term: bool | None = None,
        dataset: str = "",
        device: str = "",
        chance_error: float = 1.0,
        tracer=None,
        metrics=None,
        max_samples: int | None = None,
    ):
        """``objective`` binds the in-process evaluator used by
        :meth:`evaluate_and_observe`; service studies leave it ``None``
        and feed :class:`TrialReport` observations instead.  ``spec``
        (defaulting to the objective's constraint spec) grades the
        measured feasibility of reported results.
        """
        if variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {variant!r}; expected one of {VARIANTS}"
            )
        self.method = method
        self.variant = variant
        self.clock = clock
        self.rng = rng
        self.cost_model = cost_model
        self.objective = objective
        self.spec = spec if spec is not None else getattr(objective, "spec", None)
        if early_term is None:
            early_term = variant == "hyperpower"
        self.early_term = early_term
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.max_samples = (
            self.MAX_SAMPLES if max_samples is None else int(max_samples)
        )
        self.state = SearchState()
        self.result = RunResult(
            method=method.name,
            variant=variant,
            dataset=dataset,
            device=device,
            chance_error=chance_error,
        )
        self._pending: dict[int, Suggestion] = {}
        self._next_ticket = 0
        handles = register_run_metrics(self.metrics)
        self._m_trials = handles["trials"]
        self._m_rejections = handles["rejections"]
        self._m_silent_checks = handles["silent_checks"]
        self._m_gp_fits = handles["gp_fits"]
        self._m_gp_appends = handles["gp_appends"]
        self._m_attempts = handles["attempts"]
        self._m_faults = handles["faults"]
        self._m_retry_s = handles["retry_s"]
        # Lazily registered so synchronous metric snapshots (pinned by
        # the golden suite) never include it.
        self._m_gp_fantasies = None

    def _trial_counter(self, status: TrialStatus):
        """Per-status trial counter, creating the lazy ones on demand
        (``trials.culled`` only exists in runs that actually cull)."""
        counter = self._m_trials.get(status)
        if counter is None:
            counter = self.metrics.counter(f"trials.{status.value}")
            self._m_trials[status] = counter
        return counter

    def _pending_view(self, suggestion: Suggestion):
        """What the method should see for one pending suggestion: the
        plain config, or a :class:`~repro.core.methods.PendingTrial` once
        a paused rung carries a real partial observation."""
        if suggestion.observed_error is None:
            return suggestion.config
        return PendingTrial(
            config=suggestion.config,
            error=suggestion.observed_error,
            epochs=suggestion.observed_epochs,
        )

    # -- introspection --------------------------------------------------------------

    @property
    def n_trained(self) -> int:
        """Trained (observed, non-failed) evaluations so far."""
        return self.state.n_trained

    @property
    def n_samples(self) -> int:
        """All queried samples, model-rejections included."""
        return len(self.state.trials)

    @property
    def n_pending(self) -> int:
        """Suggestions issued but not yet observed."""
        return len(self._pending)

    @property
    def n_issued(self) -> int:
        """Suggestions ever issued (pending plus observed)."""
        return self._next_ticket

    @property
    def pending(self) -> tuple[Suggestion, ...]:
        """The pending suggestions, in issue order."""
        return tuple(self._pending.values())

    def pending_configs(self) -> list[dict]:
        """Configurations of the pending suggestions, in issue order."""
        return [dict(s.config) for s in self._pending.values()]

    def get_pending(self, ticket: int) -> Suggestion:
        """Look up a pending suggestion by ticket (KeyError if resolved)."""
        return self._pending[ticket]

    def best_trial(self) -> Trial | None:
        """The feasible trained trial with the best test error, if any."""
        best = None
        for trial in self.result.trials:
            if not trial.was_trained or math.isnan(trial.error):
                continue
            if trial.feasible_meas is False:
                continue
            if best is None or trial.error < best.error:
                best = trial
        return best

    def best_configuration(self) -> dict | None:
        """``x*``: the feasible configuration with the best test error."""
        best = self.best_trial()
        return None if best is None else dict(best.config)

    # -- ask ------------------------------------------------------------------------

    def suggest(self, n: int = 1, *, batch_aware: bool = True) -> list[Suggestion]:
        """Propose the next ``n`` configurations.

        Proposals see the pending set: suggestions issued earlier and not
        yet observed are forwarded to pending-aware methods (constant-liar
        fantasies for BO, exclusion for random/grid).  With ``batch_aware``
        (the default), suggestions issued *within* this call join the
        pending set for the call's later proposals too; the synchronous
        round-barrier driver turns that off because its historical rounds
        propose from a single frozen state.

        The simulated clock is charged ``proposal_s`` per suggestion after
        the whole batch is proposed — matching the closed-loop drivers'
        accounting on every path.  Fewer than ``n`` suggestions are
        returned only when the study hits its ``max_samples`` cap.
        """
        if n < 1:
            raise ValueError("need n >= 1 suggestions")
        base_pending = [self._pending_view(s) for s in self._pending.values()]
        suggestions: list[Suggestion] = []
        for _ in range(n):
            pending = base_pending
            if batch_aware and suggestions:
                pending = base_pending + [s.config for s in suggestions]
            proposal = self._propose(pending)
            ticket = self._next_ticket
            self._next_ticket += 1
            suggestions.append(
                Suggestion(
                    ticket=ticket,
                    proposal=proposal,
                    config=dict(proposal.config),
                )
            )
            if len(self.state.trials) >= self.max_samples:
                break
        self.clock.advance(self.cost_model.proposal_s * len(suggestions))
        issued_s = self.clock.now_s
        for suggestion in suggestions:
            suggestion.issued_s = issued_s
            suggestion.duplicate_of = self._find_pending_duplicate(suggestion)
            self._pending[suggestion.ticket] = suggestion
        return suggestions

    def _find_pending_duplicate(self, suggestion: Suggestion) -> int | None:
        key = canonical_config_key(suggestion.config)
        for ticket, other in self._pending.items():
            if canonical_config_key(other.config) == key:
                return ticket
        return None

    def _propose(self, pending) -> Proposal:
        """One proposal: method call, clock charges, screening records.

        ``pending`` is the list of in-flight configurations forwarded to
        pending-aware methods; when empty the method is called with two
        arguments, so duck-typed two-argument methods keep working on the
        synchronous path.
        """
        clock = self.clock
        with self.tracer.span("propose") as propose_span:
            if pending:
                proposal = self.method.propose(self.state, self.rng, list(pending))
            else:
                proposal = self.method.propose(self.state, self.rng)
            if proposal.silent_model_checks:
                clock.advance(
                    self.cost_model.pool_check_s
                    * proposal.silent_model_checks
                )
            if proposal.gp_fits:
                clock.advance(
                    proposal.gp_fits
                    * self.cost_model.gp_fit_s(self.state.n_trained)
                )
            if proposal.gp_appends:
                clock.advance(
                    proposal.gp_appends
                    * self.cost_model.gp_append_s(self.state.n_trained)
                )
            fantasies = getattr(proposal, "gp_fantasies", 0)
            if fantasies:
                # Constant-liar conditioning is rank-1 appends on a copy
                # of the surrogate — same unit cost as a real append.
                clock.advance(
                    fantasies * self.cost_model.gp_append_s(self.state.n_trained)
                )
                propose_span.set(gp_fantasies=fantasies)
                if self._m_gp_fantasies is None:
                    self._m_gp_fantasies = self.metrics.counter(
                        "gp.fantasies"
                    )
                self._m_gp_fantasies.inc(fantasies)
            propose_span.set(
                silent_checks=proposal.silent_model_checks,
                gp_fits=proposal.gp_fits,
                gp_appends=proposal.gp_appends,
                rejections=len(proposal.rejected),
            )
            self._m_silent_checks.inc(proposal.silent_model_checks)
            self._m_gp_fits.inc(proposal.gp_fits)
            self._m_gp_appends.inc(proposal.gp_appends)
            if proposal.rejected:
                with self.tracer.span(
                    "screen", rejections=len(proposal.rejected)
                ):
                    for rejected in proposal.rejected:
                        self._record_rejection(rejected)
                        if len(self.state.trials) >= self.max_samples:
                            break
        return proposal

    def _record_rejection(self, rejected) -> None:
        clock = self.clock
        cost = self.cost_model.proposal_s + self.cost_model.model_check_s
        clock.advance(cost)
        trial = Trial(
            index=len(self.state.trials),
            config=dict(rejected.config),
            status=TrialStatus.REJECTED_MODEL,
            timestamp_s=clock.now_s,
            cost_s=cost,
            power_pred_w=rejected.power_pred_w,
            memory_pred_bytes=rejected.memory_pred_bytes,
            feasible_pred=False,
        )
        self.state.trials.append(trial)
        self.result.trials.append(trial)
        self._trial_counter(TrialStatus.REJECTED_MODEL).inc()
        self._m_rejections.inc()

    # -- tell -----------------------------------------------------------------------

    def _take_pending(self, suggestion) -> Suggestion:
        """Resolve (and remove) a pending suggestion or ticket."""
        ticket = (
            suggestion.ticket
            if isinstance(suggestion, Suggestion)
            else int(suggestion)
        )
        try:
            return self._pending.pop(ticket)
        except KeyError:
            raise KeyError(
                f"ticket {ticket} is not pending (unknown or already observed)"
            ) from None

    def observe(self, suggestion, outcome, *, batch_t0: float | None = None):
        """Fold one evaluation result back into the study.

        ``suggestion`` is a pending :class:`Suggestion` (or its ticket);
        ``outcome`` is either the :class:`~repro.core.parallel.PoolOutcome`
        an evaluation pool produced for it, or a :class:`TrialReport`
        measured externally.  Returns the recorded
        :class:`~repro.core.result.Trial`.

        For pool outcomes, ``batch_t0`` is the simulated time the
        evaluation started (defaulting to the suggestion's issue time,
        which is the asynchronous scheduler's dispatch time); the caller
        must already have advanced the clock to the completion time, as
        the drivers do.
        """
        if isinstance(outcome, TrialReport):
            resolved = self._take_pending(suggestion)
            return self._observe_report(resolved, outcome)
        if isinstance(outcome, PoolOutcome):
            resolved = suggestion
            if not isinstance(resolved, Suggestion):
                resolved = self.get_pending(int(suggestion))
            t0 = batch_t0 if batch_t0 is not None else resolved.issued_s
            self.observe_batch([resolved], [outcome], t0)
            return self.result.trials[-1]
        raise TypeError(
            f"expected a PoolOutcome or TrialReport, got {type(outcome).__name__}"
        )

    def evaluate_and_observe(self, suggestion) -> Trial:
        """Sequential (paper) path: train in-process, then observe.

        The objective emits the nested train/measure spans; the clock
        advances by the evaluation's cost inside ``objective.evaluate``.
        """
        if self.objective is None:
            raise ValueError(
                "study has no bound objective; observe external results "
                "with TrialReport instead"
            )
        resolved = self._take_pending(suggestion)
        proposal = resolved.proposal
        clock = self.clock
        with self.tracer.span("trial", index=len(self.state.trials)) as span:
            outcome = self.objective.evaluate(
                proposal.config, early_term=self.early_term
            )
            status = (
                TrialStatus.EARLY_TERMINATED
                if outcome.stopped_early
                else TrialStatus.COMPLETED
            )
            span.set(status=status.value, feasible_meas=outcome.feasible_meas)
            if not math.isnan(outcome.error):
                span.set(error=outcome.error)
        trial = Trial(
            index=len(self.state.trials),
            config=dict(proposal.config),
            status=status,
            timestamp_s=clock.now_s,
            cost_s=outcome.cost_s,
            error=outcome.error,
            epochs_run=outcome.epochs_run,
            diverged=outcome.diverged,
            power_pred_w=proposal.power_pred_w,
            memory_pred_bytes=proposal.memory_pred_bytes,
            power_meas_w=outcome.measurement.power_w,
            memory_meas_bytes=outcome.measurement.memory_bytes,
            latency_meas_s=outcome.measurement.latency_s,
            feasible_pred=proposal.feasible_pred,
            feasible_meas=outcome.feasible_meas,
            attempts=1,
        )
        self.state.trials.append(trial)
        self.result.trials.append(trial)
        self.state.trained_configs.append(dict(proposal.config))
        self.state.trained_errors.append(outcome.error)
        self.state.trained_feasible.append(outcome.feasible_meas)
        self._trial_counter(status).inc()
        self._m_attempts.inc()
        return trial

    def observe_batch(
        self,
        suggestions: list[Suggestion],
        pool_outcomes: list[PoolOutcome],
        batch_t0: float,
    ) -> None:
        """Record one q-parallel round of pool evaluations.

        The clock was already advanced by the round's wall time, so every
        trial in the round shares the round-end timestamp; each trial's
        ``cost_s`` still records its individual cost (lookup cost for
        cache hits, retry and backoff charges included for faulted
        evaluations).

        ``batch_t0`` is the simulated time at which the round's
        evaluations started (before the wall-time charge).  Workers run
        in other processes and cannot share the tracer, so the per-trial
        ``trial > {retry, train, measure}`` spans are synthesized here
        from each outcome's recorded costs — identical across the
        serial/thread/process backends by construction.

        Failure semantics: a slot that exhausted its retry budget becomes
        a ``FAILED`` trial — no observation, nothing appended to the
        trained lists, the run continues.  A slot whose hardware
        measurement failed (transient NVML error) *degrades*: the trial
        keeps its training outcome but records the model-predicted
        power/memory (when the method has models) with
        ``measurement_degraded=True``.
        """
        if len(suggestions) != len(pool_outcomes):
            raise ValueError("one pool outcome per suggestion required")
        clock = self.clock
        tracer = self.tracer
        state = self.state
        result = self.result
        for suggestion, pool_outcome in zip(suggestions, pool_outcomes):
            self._take_pending(suggestion)
            proposal = suggestion.proposal
            outcome = pool_outcome.outcome
            self._m_attempts.inc(pool_outcome.attempts)
            self._m_faults.inc(len(pool_outcome.faults))
            self._m_retry_s.inc(pool_outcome.retry_s)
            if pool_outcome.failed:
                sid = tracer.record(
                    "trial",
                    batch_t0,
                    batch_t0 + pool_outcome.retry_s,
                    index=len(state.trials),
                    status=TrialStatus.FAILED.value,
                    failure_kind=pool_outcome.failure_kind,
                )
                if pool_outcome.retry_s > 0:
                    tracer.record(
                        "retry",
                        batch_t0,
                        batch_t0 + pool_outcome.retry_s,
                        parent=sid,
                        attempts=pool_outcome.attempts,
                        faults=list(pool_outcome.faults),
                    )
                self._trial_counter(TrialStatus.FAILED).inc()
                trial = Trial(
                    index=len(state.trials),
                    config=dict(proposal.config),
                    status=TrialStatus.FAILED,
                    timestamp_s=clock.now_s,
                    cost_s=pool_outcome.retry_s,
                    power_pred_w=proposal.power_pred_w,
                    memory_pred_bytes=proposal.memory_pred_bytes,
                    feasible_pred=proposal.feasible_pred,
                    attempts=pool_outcome.attempts,
                    faults=pool_outcome.faults,
                    failure_kind=pool_outcome.failure_kind,
                    retry_s=pool_outcome.retry_s,
                    rung=getattr(pool_outcome, "rung", None),
                )
                state.trials.append(trial)
                result.trials.append(trial)
                continue
            if pool_outcome.cached:
                status = TrialStatus.CACHED
                cost = self.cost_model.cache_lookup_s
                epochs_run = 0
            elif getattr(pool_outcome, "culled", False):
                # Rank-terminated at a rung: the partial-fidelity error is
                # a real observation, only the remaining epochs are saved.
                status = TrialStatus.CULLED
                cost = outcome.cost_s + pool_outcome.retry_s
                epochs_run = outcome.epochs_run
            else:
                status = (
                    TrialStatus.EARLY_TERMINATED
                    if outcome.stopped_early
                    else TrialStatus.COMPLETED
                )
                cost = outcome.cost_s + pool_outcome.retry_s
                epochs_run = outcome.epochs_run
            if outcome.measurement is None:
                # Degradation ladder: measured -> model-predicted ->
                # unknown.  The predictions come from the proposal, so
                # model-free (default-variant) methods degrade to unknown.
                power_meas = proposal.power_pred_w
                memory_meas = proposal.memory_pred_bytes
                latency_meas = None
                if power_meas is None and memory_meas is None:
                    feasible_meas = None
                else:
                    feasible_meas = self.spec.measured_feasible(
                        power_meas, memory_meas, None
                    )
                degraded = True
            else:
                power_meas = outcome.measurement.power_w
                memory_meas = outcome.measurement.memory_bytes
                latency_meas = outcome.measurement.latency_s
                feasible_meas = outcome.feasible_meas
                degraded = False
            attrs = {
                "index": len(state.trials),
                "status": status.value,
                "feasible_meas": feasible_meas,
            }
            if not math.isnan(outcome.error):
                attrs["error"] = outcome.error
            sid = tracer.record("trial", batch_t0, batch_t0 + cost, **attrs)
            if status is not TrialStatus.CACHED:
                train_t0 = batch_t0
                if pool_outcome.retry_s > 0:
                    tracer.record(
                        "retry",
                        batch_t0,
                        batch_t0 + pool_outcome.retry_s,
                        parent=sid,
                        attempts=pool_outcome.attempts,
                        faults=list(pool_outcome.faults),
                    )
                    train_t0 = batch_t0 + pool_outcome.retry_s
                trial_t1 = batch_t0 + cost
                measure_s = (
                    outcome.measurement.duration_s
                    if outcome.measurement is not None
                    else 0.0
                )
                tracer.record(
                    "train",
                    train_t0,
                    trial_t1 - measure_s,
                    parent=sid,
                    epochs=epochs_run,
                    stopped_early=outcome.stopped_early,
                )
                if outcome.measurement is not None:
                    tracer.record("measure", trial_t1 - measure_s, trial_t1, parent=sid)
            self._trial_counter(status).inc()
            trial = Trial(
                index=len(state.trials),
                config=dict(proposal.config),
                status=status,
                timestamp_s=clock.now_s,
                cost_s=cost,
                error=outcome.error,
                epochs_run=epochs_run,
                diverged=outcome.diverged,
                power_pred_w=proposal.power_pred_w,
                memory_pred_bytes=proposal.memory_pred_bytes,
                power_meas_w=power_meas,
                memory_meas_bytes=memory_meas,
                latency_meas_s=latency_meas,
                feasible_pred=proposal.feasible_pred,
                feasible_meas=feasible_meas,
                attempts=pool_outcome.attempts,
                faults=pool_outcome.faults,
                retry_s=pool_outcome.retry_s,
                measurement_degraded=degraded,
                rung=getattr(pool_outcome, "rung", None),
            )
            state.trials.append(trial)
            result.trials.append(trial)
            state.trained_configs.append(dict(proposal.config))
            state.trained_errors.append(outcome.error)
            state.trained_feasible.append(feasible_meas)

    def _observe_report(
        self, suggestion: Suggestion, report: TrialReport
    ) -> Trial:
        """Record an externally evaluated trial (the service path)."""
        clock = self.clock
        state = self.state
        proposal = suggestion.proposal
        cost = float(report.cost_s)
        t0 = clock.now_s
        clock.advance(cost)
        if report.failed:
            status = TrialStatus.FAILED
        elif report.stopped_early:
            status = TrialStatus.EARLY_TERMINATED
        else:
            status = TrialStatus.COMPLETED
        measured = (
            report.power_w is not None
            or report.memory_bytes is not None
            or report.latency_s is not None
        )
        feasible_meas = None
        if measured and self.spec is not None and status is not TrialStatus.FAILED:
            feasible_meas = self.spec.measured_feasible(
                report.power_w, report.memory_bytes, report.latency_s
            )
        attrs = {"index": len(state.trials), "status": status.value}
        if feasible_meas is not None:
            attrs["feasible_meas"] = feasible_meas
        if not math.isnan(report.error):
            attrs["error"] = report.error
        self.tracer.record("trial", t0, t0 + cost, **attrs)
        trial = Trial(
            index=len(state.trials),
            config=dict(suggestion.config),
            status=status,
            timestamp_s=clock.now_s,
            cost_s=cost,
            error=report.error,
            epochs_run=report.epochs_run,
            diverged=report.diverged,
            power_pred_w=proposal.power_pred_w,
            memory_pred_bytes=proposal.memory_pred_bytes,
            power_meas_w=report.power_w,
            memory_meas_bytes=report.memory_bytes,
            latency_meas_s=report.latency_s,
            feasible_pred=proposal.feasible_pred,
            feasible_meas=feasible_meas,
            attempts=1,
            failure_kind=report.failure_kind,
        )
        state.trials.append(trial)
        self.result.trials.append(trial)
        self._trial_counter(status).inc()
        self._m_attempts.inc()
        if status is not TrialStatus.FAILED:
            state.trained_configs.append(dict(suggestion.config))
            state.trained_errors.append(report.error)
            state.trained_feasible.append(feasible_meas)
        return trial

    # -- finishing ------------------------------------------------------------------

    def finalize(self) -> RunResult:
        """Stamp the result's closing fields; returns it.

        Idempotent — the service layer calls this on every status query,
        the drivers once at the end of a run.
        """
        self.result.wall_time_s = self.clock.now_s
        profile = getattr(self.method, "surrogate_profile", None)
        if profile is not None:
            self.result.surrogate_timings = profile.as_dict()
        return self.result
