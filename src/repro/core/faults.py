"""Deterministic fault injection and the trial retry policy.

The paper's economics make trainings the expensive, flaky part of
constrained HPO (Section 3, Figure 2: minutes per training vs milliseconds
per constraint check), and real training fleets fail in mundane ways: a
worker process dies, a job hangs, a loss goes NaN, an allocation OOMs, an
NVML read times out.  A production search loop must absorb those failures
— retry what is transient, record what is not, and never lose the trials
already paid for.

This module supplies the two pieces the evaluation engine needs:

* :class:`FaultInjector` — a *deterministic* fault source.  Whether (and
  how) attempt ``a`` of the trial seeded ``s`` fails is a pure function of
  ``(injector seed, s, a)``, independent of backend, worker scheduling and
  wall-clock time.  That makes every failure mode reproducible in tests:
  the serial, thread and process backends see byte-identical fault
  sequences, and a resumed run replays the exact failures of the original.
* :class:`RetryPolicy` — per-trial simulated timeouts and bounded retries
  with exponential backoff, all charged to the simulated clock so the
  fixed-runtime protocol prices failure handling like everything else.

Faults are drawn *per attempt*, so a crashed trial can succeed on retry
(transient faults) and a config can exhaust its attempts and be recorded
as a ``FAILED`` trial instead of aborting the run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "CRASH",
    "HANG",
    "NAN_LOSS",
    "OOM",
    "NVML",
    "TIMEOUT",
    "STORAGE_FAULT_KINDS",
    "TrialFault",
    "FaultPlan",
    "FaultEvent",
    "FaultRates",
    "FaultInjector",
    "StorageFaultRates",
    "StorageChaos",
    "RetryPolicy",
    "retry_seed",
]

#: A worker process died mid-training (segfault, eviction, node loss).
CRASH = "crash"
#: The trial stopped making progress; the pool's timeout reaps it.
HANG = "hang"
#: Training completed but the loss went NaN/inf (bad config + bad luck).
NAN_LOSS = "nan-loss"
#: The training allocation exceeded device memory.
OOM = "oom"
#: A transient NVML/tegrastats read failure: training succeeded but the
#: hardware measurement is unusable.  Not retried — the trial degrades to
#: the model-predicted power/memory instead (see the driver).
NVML = "nvml"
#: A natural per-trial timeout: the evaluation's simulated cost exceeded
#: :attr:`RetryPolicy.timeout_s`.  Synthesised by the pool, never drawn.
TIMEOUT = "timeout"

#: Injectable fault kinds, in the order the injector's draw consumes them.
FAULT_KINDS = (CRASH, HANG, NAN_LOSS, OOM, NVML)


class TrialFault(RuntimeError):
    """An injected failure of one evaluation attempt.

    Raised from inside :meth:`~repro.core.objective.NNObjective.
    evaluate_seeded` so the failure travels the same path a real worker
    exception would; the pool's task wrapper converts it into a
    :class:`FaultEvent` before it crosses an executor boundary.
    """

    def __init__(self, kind: str, cost_s: float):
        super().__init__(f"injected fault: {kind}")
        self.kind = kind
        #: Simulated time the failed attempt consumed before dying, s.
        self.cost_s = float(cost_s)

    def __reduce__(self):
        return (TrialFault, (self.kind, self.cost_s))


@dataclass(frozen=True)
class FaultPlan:
    """What the injector decided for one attempt: which fault, and when."""

    #: One of :data:`FAULT_KINDS`.
    kind: str
    #: Fraction of the attempt's nominal cost consumed before the fault
    #: strikes (crashes and OOMs die partway through a training).
    fraction: float


@dataclass(frozen=True)
class FaultEvent:
    """A failed attempt as reported back to the pool (picklable)."""

    #: Fault kind (:data:`FAULT_KINDS` or :data:`TIMEOUT`).
    kind: str
    #: Simulated time the attempt consumed, s.  For hangs this is the
    #: *nominal* cost; the pool substitutes the timeout charge, since only
    #: it knows when it would have reaped the worker.
    cost_s: float


@dataclass(frozen=True)
class FaultRates:
    """Per-attempt probabilities of each injectable fault kind."""

    crash: float = 0.0
    hang: float = 0.0
    nan_loss: float = 0.0
    oom: float = 0.0
    nvml: float = 0.0

    def __post_init__(self) -> None:
        total = 0.0
        for kind, rate in self.as_tuple():
            if not (0.0 <= rate <= 1.0) or rate != rate:
                raise ValueError(f"{kind} rate must be in [0, 1]")
            total += rate
        if total > 1.0:
            raise ValueError("fault rates must sum to at most 1")

    def as_tuple(self) -> tuple[tuple[str, float], ...]:
        """(kind, rate) pairs in the injector's draw order."""
        return (
            (CRASH, self.crash),
            (HANG, self.hang),
            (NAN_LOSS, self.nan_loss),
            (OOM, self.oom),
            (NVML, self.nvml),
        )

    @property
    def any_active(self) -> bool:
        """Whether any fault can ever fire."""
        return any(rate > 0.0 for _, rate in self.as_tuple())


@dataclass(frozen=True)
class FaultInjector:
    """Deterministic per-attempt fault source.

    The decision for ``(trial_seed, attempt)`` derives from a private
    ``SeedSequence([seed, trial_seed, attempt])`` stream — no shared RNG is
    consumed, so an injector with all rates zero (or none at all) leaves
    every other random stream untouched and the run byte-identical to a
    fault-free one.
    """

    rates: FaultRates
    #: Root of the fault stream; independent of every other seed in a run.
    seed: int = 0
    #: Simulated time a hung trial wastes before being reaped when the
    #: retry policy sets no explicit timeout, s.
    hang_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.hang_s <= 0:
            raise ValueError("hang_s must be positive")

    def draw(self, trial_seed: int, attempt: int) -> FaultPlan | None:
        """The fault plan for one attempt, or None for a clean run."""
        if not self.rates.any_active:
            return None
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, int(trial_seed), int(attempt)])
        )
        u = float(rng.random())
        fraction = float(rng.random())
        cumulative = 0.0
        for kind, rate in self.rates.as_tuple():
            cumulative += rate
            if u < cumulative:
                return FaultPlan(kind=kind, fraction=fraction)
        return None


#: Injectable storage fault kinds, in the order the chaos draw consumes
#: them.  ``fsync``/``enospc``/``torn`` fail the append (typed, repaired,
#: retryable); ``delay`` acknowledges but defers visibility/durability to
#: the next write, flush or close.
STORAGE_FAULT_KINDS = ("fsync", "enospc", "torn", "delay")


@dataclass(frozen=True)
class StorageFaultRates:
    """Per-append probabilities of each injectable storage fault kind."""

    fsync: float = 0.0
    enospc: float = 0.0
    torn: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        total = 0.0
        for kind, rate in self.as_tuple():
            if not (0.0 <= rate <= 1.0) or rate != rate:
                raise ValueError(f"{kind} rate must be in [0, 1]")
            total += rate
        if total > 1.0:
            raise ValueError("storage fault rates must sum to at most 1")

    def as_tuple(self) -> tuple[tuple[str, float], ...]:
        """(kind, rate) pairs in the chaos draw order."""
        return (
            ("fsync", self.fsync),
            ("enospc", self.enospc),
            ("torn", self.torn),
            ("delay", self.delay),
        )

    @property
    def any_active(self) -> bool:
        """Whether any storage fault can ever fire."""
        return any(rate > 0.0 for _, rate in self.as_tuple())


@dataclass(frozen=True)
class StorageChaos:
    """Deterministic storage-fault source for :class:`~repro.telemetry.
    jsonl.JsonlWriter`.

    Whether (and how) the ``op_index``-th append to a journal fails is a
    pure function of ``(seed, path, op_index)`` — the path enters through
    the crc32 of its last two components (``<study>/study.jsonl``), so
    the decision is independent of the temp directory the store happens
    to be rooted in.  A chaos source with all rates zero draws nothing
    and is a strict no-op, like :class:`FaultInjector`.
    """

    rates: StorageFaultRates
    #: Root of the storage-fault stream; independent of every other seed.
    seed: int = 0

    def path_tag(self, path) -> int:
        """The stable per-file stream tag (crc32 of the trailing path)."""
        parts = Path(path).parts[-2:]
        return zlib.crc32("/".join(parts).encode("utf-8"))

    def plan(self, path, op_index: int) -> str | None:
        """The fault for one append, or ``None`` for a clean write."""
        if not self.rates.any_active:
            return None
        rng = np.random.default_rng(
            np.random.SeedSequence(
                [int(self.seed), self.path_tag(path), int(op_index)]
            )
        )
        u = float(rng.random())
        cumulative = 0.0
        for kind, rate in self.rates.as_tuple():
            cumulative += rate
            if u < cumulative:
                return kind
        return None


@dataclass(frozen=True)
class RetryPolicy:
    """Per-trial timeouts and bounded retries with exponential backoff.

    All charges land on the *simulated* clock: a failed attempt costs what
    it consumed before dying (the timeout charge for hangs), and each
    retry waits ``backoff_s`` — ``base * factor**(k-1)``, capped at
    ``backoff_max_s`` — before redispatching, exactly like a production
    scheduler draining a flaky node.
    """

    #: Total attempts per trial (first try included).  When the last
    #: attempt fails, the trial is recorded as FAILED instead of raising.
    max_attempts: int = 3
    #: Per-trial simulated timeout, s; ``None`` disables the natural
    #: timeout (injected hangs then charge the injector's ``hang_s``).
    timeout_s: float | None = None
    #: Backoff before retry ``k`` (1-based): ``base * factor**(k-1)``, s.
    backoff_base_s: float = 60.0
    backoff_factor: float = 2.0
    #: Upper bound on a single backoff wait, s.
    backoff_max_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.timeout_s is not None and not (self.timeout_s > 0):
            raise ValueError("timeout_s must be positive (or None)")
        if not (self.backoff_base_s >= 0):
            raise ValueError("backoff_base_s must be >= 0")
        if not (self.backoff_factor >= 1):
            raise ValueError("backoff_factor must be >= 1")
        if not (self.backoff_max_s >= 0):
            raise ValueError("backoff_max_s must be >= 0")

    def backoff_s(self, retry: int) -> float:
        """Backoff before the ``retry``-th redispatch (1-based), s."""
        if retry < 1:
            raise ValueError("retry must be >= 1")
        return float(
            min(
                self.backoff_max_s,
                self.backoff_base_s * self.backoff_factor ** (retry - 1),
            )
        )


#: Seed-stream tag decorrelating retry attempts from first attempts
#: (``b'RETR'`` — arbitrary but fixed forever for reproducibility).
RETRY_SEED_TAG = 0x52455452


def retry_seed(trial_seed: int, attempt: int) -> int:
    """The evaluation seed for retry ``attempt`` (>= 1) of a trial.

    Attempt 0 always runs under the trial's original seed so the fault
    layer is a strict no-op when disabled; retries draw fresh training
    luck from a tagged substream.
    """
    if attempt == 0:
        return int(trial_seed)
    return int(
        np.random.SeedSequence(
            [int(trial_seed), RETRY_SEED_TAG, int(attempt)]
        ).generate_state(1)[0]
    )
