"""Trial and run records, plus the derived series the tables/figures need.

A :class:`Trial` is one *sample queried* by a search method.  Following the
paper's accounting (Tables 3-4 count model-rejected proposals as queried
samples — that is how HyperPower random search reaches hundreds of samples
per hour), a trial can be:

* ``REJECTED_MODEL`` — discarded by the predictive power/memory models
  before any training (HyperPower variants only; costs milliseconds);
* ``EARLY_TERMINATED`` — training started but stopped after a few epochs by
  the divergence detector (Section 3.2);
* ``COMPLETED`` — trained to the full schedule;
* ``CACHED`` — replayed from the trial cache at lookup cost;
* ``FAILED`` — the evaluation exhausted its retry budget (crashes, hangs,
  NaN losses, OOMs); its failed attempts and backoff waits were still
  charged to the clock.

:class:`RunResult` wraps one optimization run and computes everything the
evaluation section reports: best-feasible-error trajectories over samples
and over time (Figures 4, 6), violation counts (Figure 4 center), time to
reach a sample count (Table 3) or an error level (Table 5).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TrialStatus", "Trial", "RunResult"]


class TrialStatus(enum.Enum):
    """How a queried sample was handled."""

    REJECTED_MODEL = "rejected-by-model"
    EARLY_TERMINATED = "early-terminated"
    COMPLETED = "completed"
    #: Accepted proposal whose outcome was replayed from the trial cache
    #: (a duplicate of an earlier training) at near-zero clock cost.
    CACHED = "cached"
    #: Accepted proposal whose evaluation exhausted its retry budget
    #: (worker crashes, hangs, NaN losses, OOMs); no observation exists,
    #: but the failed attempts and backoff waits were charged to the
    #: clock and the sample still counts as queried.
    FAILED = "failed"
    #: Trained at a partial fidelity and terminated by rank when its rung
    #: cell filled (multi-fidelity scheduling); its low-fidelity error is
    #: a real observation, only the remaining epochs were never spent.
    CULLED = "culled"


@dataclass(frozen=True)
class Trial:
    """One queried sample of an optimization run."""

    #: 0-based query order.
    index: int
    #: The queried configuration.
    config: dict
    #: How the sample was handled.
    status: TrialStatus
    #: Simulated time when the sample finished processing, s.
    timestamp_s: float
    #: Wall-clock cost of this sample, s.
    cost_s: float
    #: Best observed test error of the training run (NaN when rejected).
    error: float = math.nan
    #: Epochs actually trained (0 when rejected).
    epochs_run: int = 0
    #: Ground truth: did training diverge (None when rejected/unknown)?
    diverged: bool | None = None
    #: Model-predicted power, W (None when the method has no models).
    power_pred_w: float | None = None
    #: Model-predicted memory, bytes (None when unavailable).
    memory_pred_bytes: float | None = None
    #: Measured power, W (None when the sample was never deployed).
    power_meas_w: float | None = None
    #: Measured memory, bytes (None when unavailable).
    memory_meas_bytes: float | None = None
    #: Measured batch latency, s (None when the sample was never deployed).
    latency_meas_s: float | None = None
    #: Feasibility according to the predictive models (None when unchecked).
    feasible_pred: bool | None = None
    #: Feasibility according to hardware measurements (None when unmeasured).
    feasible_meas: bool | None = None
    #: Evaluation attempts consumed (0 for rejected/cached samples).
    attempts: int = 0
    #: Fault kinds hit across the attempts, in order (empty when clean).
    faults: tuple[str, ...] = ()
    #: Fault kind that exhausted the retry budget (FAILED samples only).
    failure_kind: str | None = None
    #: Simulated time charged to failed attempts plus backoff waits, s
    #: (included in ``cost_s``).
    retry_s: float = 0.0
    #: Whether the hardware measurement failed and the recorded
    #: power/memory fell back to the predictive models' estimates.
    measurement_degraded: bool = False
    #: Rung stage the trial terminated at under multi-fidelity scheduling
    #: (None on classic full-fidelity paths).
    rung: int | None = None

    @property
    def was_trained(self) -> bool:
        """Whether this sample carries a training outcome (a cached sample
        replays one, so it counts — its error is a usable observation; a
        FAILED sample carries none)."""
        return self.status not in (
            TrialStatus.REJECTED_MODEL,
            TrialStatus.FAILED,
        )

    @property
    def is_violation(self) -> bool:
        """Whether the sample was deployed and violated measured constraints."""
        return self.feasible_meas is False


@dataclass
class RunResult:
    """One optimization run of one method variant."""

    #: Solver name (``'Rand'``, ``'Rand-Walk'``, ``'HW-CWEI'``, ``'HW-IECI'``).
    method: str
    #: ``'default'`` (constraint-unaware/exhaustive) or ``'hyperpower'``.
    variant: str
    #: Benchmark and platform identifiers.
    dataset: str
    device: str
    #: All queried samples, in order.
    trials: list[Trial] = field(default_factory=list)
    #: Total simulated wall time of the run, s.
    wall_time_s: float = 0.0
    #: Chance-level error used when a run finds no feasible point.
    chance_error: float = 0.9
    #: Trial-cache lookup counters (0/0 when the run had no cache).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Real (not simulated) per-stage wall-clock timings of the GP
    #: surrogate hot path, as ``{stage: {"seconds": ..., "calls": ...}}``
    #: (see :class:`~repro.gp.profile.SurrogateProfile`); empty for
    #: solvers without a surrogate.  Diagnostics only — deliberately
    #: excluded from :func:`~repro.io.run_to_dict`, whose output must stay
    #: byte-identical across identically-seeded re-runs.
    surrogate_timings: dict = field(default_factory=dict)
    #: Telemetry summary of a traced run (the metrics snapshot plus span
    #: buffer counts — see :meth:`repro.telemetry.Telemetry.snapshot`);
    #: empty for untraced runs.  Every value is simulated-deterministic,
    #: but the field is still excluded from :func:`~repro.io.run_to_dict`
    #: so traced and untraced runs serialise identically.
    telemetry: dict = field(default_factory=dict)

    # -- counting ----------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Samples queried, counting model-rejected proposals (Table 4)."""
        return len(self.trials)

    @property
    def n_trained(self) -> int:
        """Samples on which training epochs were spent."""
        return sum(1 for t in self.trials if t.was_trained)

    @property
    def n_completed(self) -> int:
        """Samples trained to the full schedule."""
        return sum(1 for t in self.trials if t.status is TrialStatus.COMPLETED)

    @property
    def n_violations(self) -> int:
        """Deployed samples that violated the measured constraints."""
        return sum(1 for t in self.trials if t.is_violation)

    @property
    def n_cached(self) -> int:
        """Samples whose outcome was replayed from the trial cache."""
        return sum(1 for t in self.trials if t.status is TrialStatus.CACHED)

    # -- failure accounting ------------------------------------------------------

    @property
    def n_failed(self) -> int:
        """Samples whose evaluation exhausted its retry budget."""
        return sum(1 for t in self.trials if t.status is TrialStatus.FAILED)

    @property
    def n_degraded(self) -> int:
        """Trained samples whose hardware measurement degraded to the
        predictive models (transient NVML read failures)."""
        return sum(1 for t in self.trials if t.measurement_degraded)

    @property
    def n_attempts(self) -> int:
        """Total evaluation attempts dispatched across all samples."""
        return sum(t.attempts for t in self.trials)

    @property
    def n_faults(self) -> int:
        """Total faulted attempts absorbed across all samples (recovered
        retries plus terminal failures)."""
        return sum(len(t.faults) for t in self.trials)

    @property
    def retry_time_s(self) -> float:
        """Simulated time spent on failed attempts and backoff waits, s."""
        return sum(t.retry_s for t in self.trials)

    @property
    def cache_lookups(self) -> int:
        """Total trial-cache lookups performed during the run."""
        return self.cache_hits + self.cache_misses

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cache lookups that hit; 0.0 without a cache."""
        if self.cache_lookups == 0:
            return 0.0
        return self.cache_hits / self.cache_lookups

    def violation_counts(self) -> np.ndarray:
        """Cumulative violations after each queried sample (Figure 4 center).

        Always integer-typed — ``np.cumsum`` of an empty list would
        otherwise silently switch to float64 for empty runs.
        """
        return np.cumsum(
            [1 if t.is_violation else 0 for t in self.trials], dtype=np.int64
        )

    # -- best-error trajectories ----------------------------------------------

    def _feasible_errors(self) -> list[tuple[int, float, float]]:
        """(index, timestamp, error) of feasible, trained samples."""
        rows = []
        for t in self.trials:
            if not t.was_trained or math.isnan(t.error):
                continue
            if t.feasible_meas is False:
                continue
            rows.append((t.index, t.timestamp_s, t.error))
        return rows

    @property
    def best_feasible_error(self) -> float:
        """Lowest feasible error found; chance error when none was found."""
        rows = self._feasible_errors()
        if not rows:
            return self.chance_error
        return min(error for _, _, error in rows)

    def best_error_vs_samples(self) -> np.ndarray:
        """Best feasible error after each queried sample (Figure 4 left).

        Entries before the first feasible observation hold the chance error.
        """
        best = self.chance_error
        out = np.empty(len(self.trials))
        for i, t in enumerate(self.trials):
            if (
                t.was_trained
                and not math.isnan(t.error)
                and t.feasible_meas is not False
            ):
                best = min(best, t.error)
            out[i] = best
        return out

    def best_error_vs_time(self) -> tuple[np.ndarray, np.ndarray]:
        """Step series ``(timestamps_s, best_feasible_error)`` (Figure 6)."""
        times, values = [], []
        best = self.chance_error
        for t in self.trials:
            if (
                t.was_trained
                and not math.isnan(t.error)
                and t.feasible_meas is not False
            ):
                best = min(best, t.error)
            times.append(t.timestamp_s)
            values.append(best)
        return np.asarray(times), np.asarray(values)

    # -- table queries -------------------------------------------------------------

    def time_to_reach_samples(self, n: int) -> float:
        """Simulated time at which the ``n``-th sample finished, s (Table 3).

        ``inf`` when the run queried fewer than ``n`` samples.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        if n > len(self.trials):
            return math.inf
        return self.trials[n - 1].timestamp_s

    def time_to_reach_error(self, target_error: float) -> float:
        """Simulated time at which the best feasible error first reached
        ``target_error``, s (Table 5).  ``inf`` when never reached."""
        best = math.inf
        for t in self.trials:
            if (
                t.was_trained
                and not math.isnan(t.error)
                and t.feasible_meas is not False
            ):
                best = min(best, t.error)
                if best <= target_error:
                    return t.timestamp_s
        return math.inf

    @property
    def found_feasible(self) -> bool:
        """Whether any feasible trained sample was found (Table 2's '--'
        entries are runs where default Rand-Walk never did)."""
        return bool(self._feasible_errors())
