"""Acquisition functions (paper Sections 3.1, 3.4, 3.5).

All acquisitions are built on the Expected Improvement criterion for
*minimisation* of the test error:

``EI(x) = E[max(y+ - y, 0)]`` under the surrogate's predictive marginal
``p_M(y | x)``, with the incumbent threshold ``y+`` set adaptively to the
best value over previous observations.

The two constraint-aware variants the paper proposes:

* **HW-IECI** (Equation 3) multiplies EI by the indicator functions
  ``I[P(z) <= PB] * I[M(z) <= MB]`` evaluated through the a-priori
  predictive models — improvement is impossible where constraints are
  violated, so those regions are never sampled.
* **HW-CWEI** multiplies EI by the probability of constraint satisfaction
  ``Pr(P(z) <= PB) * Pr(M(z) <= MB)`` — the Constraint-Weighted EI of
  Gelbart et al. [6] with HyperPower's models as the latent functions.

Both accept any checker object exposing ``indicator(config)`` /
``satisfaction_probability(config)``, so the same classes also serve the
*default* variants where the checker is a :class:`~repro.core.constraints.
GPConstraintModel` learned from observations [6, 17].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence

import numpy as np
from scipy.stats import norm

from ..gp.gp import GaussianProcess

__all__ = [
    "expected_improvement",
    "Acquisition",
    "ExpectedImprovement",
    "HWIECI",
    "HWCWEI",
]


def expected_improvement(
    mean: np.ndarray, variance: np.ndarray, incumbent: float
) -> np.ndarray:
    """Closed-form EI for minimisation.

    ``EI = s * (gamma * Phi(gamma) + phi(gamma))`` with
    ``gamma = (y+ - mu) / s``.
    """
    mean = np.asarray(mean, dtype=float)
    variance = np.asarray(variance, dtype=float)
    sigma = np.sqrt(np.maximum(variance, 1e-18))
    improvement = incumbent - mean
    # Degenerate marginals (sigma -> 0, e.g. a candidate coinciding with an
    # observation under a near-noiseless GP) collapse to their mean: EI is
    # the deterministic improvement, not the 0/0 z-score that would turn
    # into NaN (or an overflowing gamma) under the closed form below.
    degenerate = sigma <= 1e-9
    gamma = improvement / np.where(degenerate, 1.0, sigma)
    ei = sigma * (gamma * norm.cdf(gamma) + norm.pdf(gamma))
    ei = np.where(degenerate, np.maximum(improvement, 0.0), ei)
    return np.maximum(ei, 0.0)


class Acquisition(ABC):
    """Scores candidate configurations; the maximiser is evaluated next."""

    #: Short name used in logs and reports.
    name = "acquisition"

    @abstractmethod
    def score(
        self,
        candidates: Sequence[Mapping],
        X_unit: np.ndarray,
        gp: GaussianProcess,
        incumbent: float,
    ) -> np.ndarray:
        """Acquisition value of each candidate.

        Parameters
        ----------
        candidates:
            Candidate configurations (needed by constraint checkers, which
            work on structural hyper-parameters).
        X_unit:
            Their unit-cube encodings, ``(n, d)``.
        gp:
            The fitted objective surrogate.
        incumbent:
            ``y+``, the best relevant observation so far.
        """


class ExpectedImprovement(Acquisition):
    """Plain constraint-unaware EI (the 'default' BO building block)."""

    name = "EI"

    def score(self, candidates, X_unit, gp, incumbent):
        mean, variance = gp.predict(X_unit)
        return expected_improvement(mean, variance, incumbent)


class HWIECI(Acquisition):
    """Equation 3: EI gated by hard constraint indicators.

    With a :class:`~repro.core.constraints.ModelConstraintChecker` this is
    HyperPower's flagship HW-IECI; with a learned
    :class:`~repro.core.constraints.GPConstraintModel` it degrades to the
    default IECI-style treatment of Gramacy & Lee [17].
    """

    name = "HW-IECI"

    def __init__(self, checker):
        if not hasattr(checker, "indicator"):
            raise TypeError("checker must expose indicator(config)")
        self.checker = checker

    def score(self, candidates, X_unit, gp, incumbent):
        ei = expected_improvement(*gp.predict(X_unit), incumbent)
        if hasattr(self.checker, "indicator_batch"):
            # One vectorised screening call for the whole candidate pool.
            gate = self.checker.indicator_batch(candidates).astype(float)
        else:
            gate = np.array(
                [1.0 if self.checker.indicator(c) else 0.0 for c in candidates]
            )
        return ei * gate


class HWCWEI(Acquisition):
    """Constraint-Weighted EI: EI times satisfaction probability [6]."""

    name = "HW-CWEI"

    def __init__(self, checker):
        if not hasattr(checker, "satisfaction_probability"):
            raise TypeError(
                "checker must expose satisfaction_probability(config)"
            )
        self.checker = checker

    def score(self, candidates, X_unit, gp, incumbent):
        ei = expected_improvement(*gp.predict(X_unit), incumbent)
        if hasattr(self.checker, "satisfaction_probability_batch"):
            weights = np.asarray(
                self.checker.satisfaction_probability_batch(candidates),
                dtype=float,
            )
        else:
            weights = np.array(
                [self.checker.satisfaction_probability(c) for c in candidates]
            )
        return ei * weights
