"""Search methods (paper Sections 3.1, 3.5).

Four solvers, each usable in two variants:

* **Rand** — uniform random search [5].  The HyperPower variant screens
  every proposal through the predictive models and discards violating ones
  at millisecond cost (each discarded proposal still counts as a queried
  sample, which is the accounting behind Tables 3-4).
* **Rand-Walk** — Gaussian random walk around the incumbent [8],
  ``x_{n+1} ~ N(x+, sigma0^2)``.  The default variant's incumbent is the
  best *observed* objective regardless of feasibility — which is why it
  can hover in an infeasible basin forever (the '--' rows of Table 2);
  the HyperPower variant walks around the best *feasible* point and
  screens proposals through the models.
* **HW-CWEI / HW-IECI** — GP-based Bayesian optimization with the
  constraint-weighted / indicator-gated EI acquisitions.  The HyperPower
  variants evaluate constraints through the a-priori models; the default
  variants learn them with constraint GPs from hardware measurements of
  already-evaluated points [6, 17].

A method never trains anything itself: it returns a :class:`Proposal` and
the driver (:mod:`repro.core.hyperpower`) evaluates it, charges the clock,
and records trials.
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from ..gp.gp import GaussianProcess
from ..gp.profile import SurrogateProfile
from ..gp.sparse import (
    DEFAULT_FEATURES,
    DEFAULT_SWITCH_AT,
    SURROGATE_TIERS,
    make_surrogate,
)
from ..space.space import Configuration, SearchSpace
from ..telemetry.tracer import NOOP_TRACER
from .acquisition import Acquisition
from .constraints import GPConstraintModel, ModelConstraintChecker
from .result import Trial

__all__ = [
    "SearchState",
    "RejectedProposal",
    "Proposal",
    "PendingTrial",
    "SearchMethod",
    "RandomSearch",
    "RandomWalk",
    "GridSearch",
    "BayesianOptimizer",
]


@dataclass
class SearchState:
    """Everything a method may condition on, maintained by the driver."""

    #: All queried samples so far (including model-rejected ones).
    trials: list[Trial] = field(default_factory=list)
    #: Configurations on which training epochs were spent, in order.
    trained_configs: list[Configuration] = field(default_factory=list)
    #: Their best observed test errors.
    trained_errors: list[float] = field(default_factory=list)
    #: Their measured feasibility.
    trained_feasible: list[bool] = field(default_factory=list)

    @property
    def n_trained(self) -> int:
        """Number of trained evaluations so far."""
        return len(self.trained_configs)

    def best_feasible(self) -> tuple[Configuration, float] | None:
        """Best (config, error) among measured-feasible evaluations."""
        best = None
        for config, error, feasible in zip(
            self.trained_configs, self.trained_errors, self.trained_feasible
        ):
            if not feasible:
                continue
            if best is None or error < best[1]:
                best = (config, error)
        return best

    def best_any(self) -> tuple[Configuration, float] | None:
        """Best (config, error) regardless of feasibility."""
        best = None
        for config, error in zip(self.trained_configs, self.trained_errors):
            if best is None or error < best[1]:
                best = (config, error)
        return best

    def incumbent_error(self) -> float | None:
        """The adaptive EI threshold ``y+``: best feasible error, falling
        back to the best observed error before anything feasible exists."""
        feasible = self.best_feasible()
        if feasible is not None:
            return feasible[1]
        any_best = self.best_any()
        return None if any_best is None else any_best[1]


@dataclass(frozen=True)
class RejectedProposal:
    """A proposal discarded by the predictive models before training."""

    config: Configuration
    power_pred_w: float | None
    memory_pred_bytes: float | None


@dataclass(frozen=True)
class Proposal:
    """What a method wants evaluated next, plus its bookkeeping."""

    #: The configuration to train and measure.
    config: Configuration
    #: Model-rejected proposals to record as queried samples.
    rejected: tuple[RejectedProposal, ...] = ()
    #: Model evaluations performed but *not* recorded as samples (e.g. BO
    #: filtering its initial design or its candidate pool).
    silent_model_checks: int = 0
    #: Number of GP fits performed while proposing (clock cost).
    gp_fits: int = 0
    #: Number of rank-1 posterior appends performed instead of full fits
    #: (refit scheduling; charged at the much cheaper append cost).
    gp_appends: int = 0
    #: Number of constant-liar fantasy observations appended onto a *copy*
    #: of the surrogate for in-flight trials (async scheduling; charged at
    #: the append cost).
    gp_fantasies: int = 0
    #: Predictions for the chosen config (None without models).
    power_pred_w: float | None = None
    memory_pred_bytes: float | None = None
    #: Model feasibility of the chosen config (None when unchecked).
    feasible_pred: bool | None = None


@dataclass(frozen=True)
class PendingTrial:
    """An in-flight trial with a *partial* observation attached.

    The multi-fidelity driver passes these (instead of plain configs) for
    trials paused at a rung: ``error`` is the best error observed at
    ``epochs`` cumulative epochs.  Pending-aware methods treat them like
    any pending configuration for exclusion; the Bayesian optimizer
    additionally lies at the observed error instead of the generic
    constant-liar value — the rung already told us roughly where this
    trial lands.
    """

    config: Configuration
    error: float = float("nan")
    epochs: int = 0


def _config_key(config) -> tuple:
    """Hashable identity of a configuration (pending-set membership).

    Accepts plain mappings and :class:`PendingTrial`-like wrappers.
    """
    config = getattr(config, "config", config)
    return tuple(sorted(config.items()))


def _pending_keys(pending: Sequence) -> frozenset:
    return frozenset(_config_key(c) for c in pending)


def _predictions(checker, config) -> tuple[float | None, float | None]:
    if checker is None or not hasattr(checker, "predictions"):
        return None, None
    return checker.predictions(config)


def _screen_batch(checker, configs):
    """``checker.screen_batch`` with a scalar fallback.

    Duck-typed checkers (tests, GP-based constraint models) may only
    implement the per-config ``indicator``/``predictions`` interface; this
    keeps them usable behind the vectorised screening loop.  Returns
    ``(accept, power, memory)`` where ``power``/``memory`` are ``None`` or
    per-config sequences whose entries may themselves be ``None``.
    """
    if hasattr(checker, "screen_batch"):
        return checker.screen_batch(configs)
    accept = np.array([bool(checker.indicator(c)) for c in configs])
    power = []
    memory = []
    for config in configs:
        p, m = _predictions(checker, config)
        power.append(p)
        memory.append(m)
    return accept, power, memory


def _indicator_batch(checker, configs) -> np.ndarray:
    """``checker.indicator_batch`` with a scalar fallback."""
    if hasattr(checker, "indicator_batch"):
        return np.asarray(checker.indicator_batch(configs))
    return np.array([bool(checker.indicator(c)) for c in configs])


def _pred_at(values, i) -> float | None:
    """The ``i``-th prediction of a batch, tolerating None entries."""
    if values is None:
        return None
    value = values[i]
    return None if value is None else float(value)


class SearchMethod(ABC):
    """Base class for solvers."""

    #: Paper name of the solver (``'Rand'``, ``'HW-IECI'``, ...).
    name = "method"

    #: Rebound by the driver when telemetry is on; proposing never
    #: advances the simulated clock, so method-side spans (``gp_fit``,
    #: ``acquisition``) have zero simulated duration and carry their
    #: real cost in ``wall_ms``.
    tracer = NOOP_TRACER

    def __init__(self, space: SearchSpace):
        self.space = space

    @abstractmethod
    def propose(
        self,
        state: SearchState,
        rng: np.random.Generator,
        pending: Sequence[Configuration] = (),
    ) -> Proposal:
        """Choose the next configuration to evaluate.

        ``pending`` lists configurations currently in flight on the
        asynchronous scheduler.  Methods must not re-propose a pending
        configuration (it would collapse to a cache hit on completion);
        the Bayesian optimizer additionally conditions its surrogate on
        fantasized outcomes for them (constant liar).  The synchronous
        driver never passes it, so duck-typed two-argument methods keep
        working there.
        """


class _ModelScreeningMixin:
    """Shared batch-screening loop for the model-free HyperPower methods.

    Screening is chunked: candidates are drawn ``screen_chunk`` at a time
    and pushed through :meth:`~repro.core.constraints.ModelConstraintChecker.
    screen_batch` in one vectorised call, instead of one model evaluation
    per draw.  Decisions are identical to per-config screening; only the
    number of RNG draws consumed per proposal changes (candidates drawn
    after the first acceptance in a chunk are discarded — harmless for the
    i.i.d. Rand and Rand-Walk proposal distributions).
    """

    #: Rejected proposals allowed before giving up and accepting anyway.
    max_rejects = 5000

    #: Candidates drawn and screened per vectorised model call.
    screen_chunk = 64

    def _screen(
        self,
        draw_many,
        checker: ModelConstraintChecker | None,
        pending_keys: frozenset = frozenset(),
    ) -> tuple[Configuration, list[RejectedProposal], float | None, float | None, bool | None]:
        """Draw chunks from ``draw_many(n)`` until the models accept one.

        Candidates matching an in-flight configuration (``pending_keys``)
        are skipped without being recorded — they were already counted as
        queried samples when first dispatched.
        """
        if checker is None:
            config = draw_many(1)[0]
            if pending_keys:
                for _ in range(self.max_rejects):
                    if _config_key(config) not in pending_keys:
                        break
                    config = draw_many(1)[0]
            return config, [], None, None, None
        rejected: list[RejectedProposal] = []
        remaining = self.max_rejects + 1
        while remaining > 0:
            chunk = min(self.screen_chunk, remaining)
            configs = draw_many(chunk)
            remaining -= chunk
            accept, power, memory = _screen_batch(checker, configs)
            for i, config in enumerate(configs):
                p = _pred_at(power, i)
                m = _pred_at(memory, i)
                if accept[i]:
                    if pending_keys and _config_key(config) in pending_keys:
                        continue
                    return config, rejected, p, m, True
                rejected.append(RejectedProposal(config, p, m))
        # Budget exhausted: evaluate the last draw anyway (flagged invalid).
        if rejected:
            last = rejected.pop()
            return last.config, rejected, last.power_pred_w, last.memory_pred_bytes, False
        # Degenerate space where every accepted draw is already in flight:
        # duplicate the last one rather than loop forever.
        return config, [], p, m, True


class RandomSearch(_ModelScreeningMixin, SearchMethod):
    """Uniform random search; model-screened in the HyperPower variant."""

    name = "Rand"

    def __init__(
        self,
        space: SearchSpace,
        checker: ModelConstraintChecker | None = None,
    ):
        super().__init__(space)
        self.checker = checker

    def propose(self, state, rng, pending=()):
        config, rejected, power, memory, feasible = self._screen(
            lambda n: self.space.sample_many(n, rng),
            self.checker,
            _pending_keys(pending),
        )
        return Proposal(
            config=config,
            rejected=tuple(rejected),
            power_pred_w=power,
            memory_pred_bytes=memory,
            feasible_pred=feasible,
        )


class RandomWalk(_ModelScreeningMixin, SearchMethod):
    """Gaussian random walk around the incumbent (paper Section 3.5).

    ``feasible_incumbent`` selects the variant: the HyperPower version
    recentres on the best *feasible* observation, the default version on
    the best observation full stop (constraint-unaware, as published [8]).
    """

    name = "Rand-Walk"

    def __init__(
        self,
        space: SearchSpace,
        sigma: float = 0.1,
        checker: ModelConstraintChecker | None = None,
        feasible_incumbent: bool | None = None,
    ):
        super().__init__(space)
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.sigma = sigma
        self.checker = checker
        if feasible_incumbent is None:
            feasible_incumbent = checker is not None
        self.feasible_incumbent = feasible_incumbent

    def _incumbent(self, state: SearchState) -> Configuration | None:
        if self.feasible_incumbent:
            best = state.best_feasible()
        else:
            best = state.best_any()
        return None if best is None else best[0]

    def propose(self, state, rng, pending=()):
        incumbent = self._incumbent(state)
        if incumbent is None:
            draw_many = lambda n: self.space.sample_many(n, rng)  # noqa: E731
        else:
            draw_many = lambda n: [  # noqa: E731
                self.space.neighbor(incumbent, self.sigma, rng)
                for _ in range(n)
            ]
        config, rejected, power, memory, feasible = self._screen(
            draw_many, self.checker, _pending_keys(pending)
        )
        return Proposal(
            config=config,
            rejected=tuple(rejected),
            power_pred_w=power,
            memory_pred_bytes=memory,
            feasible_pred=feasible,
        )


class GridSearch(_ModelScreeningMixin, SearchMethod):
    """Classic grid search — the traditional technique the paper's intro
    dismisses ("grid search yields poor results in terms of performance
    and training time" [2]).

    Enumerates the Cartesian product of per-parameter grids in
    lexicographic order; once exhausted it restarts with a finer grid.
    The optional checker gives it the same HyperPower screening as the
    other model-free methods.  Unlike the other solvers this method is
    stateful (it carries its enumeration cursor), so use a fresh instance
    per run.
    """

    name = "Grid"

    def __init__(
        self,
        space: SearchSpace,
        resolution: int = 3,
        checker: ModelConstraintChecker | None = None,
    ):
        super().__init__(space)
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        self.checker = checker
        self._resolution = resolution
        #: Grid points already batch-screened but not yet proposed, as
        #: ``(config, accept, power_pred, memory_pred)`` tuples.  Unlike the
        #: i.i.d. methods, grid search cannot discard drawn-but-unused
        #: candidates (it would skip grid points), so screened chunks are
        #: buffered across ``propose`` calls.
        self._pending: list[tuple[Configuration, bool, float | None, float | None]] = []
        self._reset_grid(resolution)

    def _reset_grid(self, resolution: int) -> None:
        self._axes = [p.grid(resolution) for p in self.space.parameters]
        self._cursor = [0] * len(self._axes)
        self._exhausted = False

    @property
    def grid_size(self) -> int:
        """Points in the current grid."""
        size = 1
        for axis in self._axes:
            size *= len(axis)
        return size

    def _advance(self) -> Configuration:
        if self._exhausted:
            # Refine and start over — the only move grid search has left.
            self._resolution += 1
            self._reset_grid(self._resolution)
        config = {
            p.name: axis[i]
            for p, axis, i in zip(self.space.parameters, self._axes, self._cursor)
        }
        # Lexicographic increment.
        for dim in reversed(range(len(self._cursor))):
            self._cursor[dim] += 1
            if self._cursor[dim] < len(self._axes[dim]):
                break
            self._cursor[dim] = 0
        else:
            self._exhausted = True
        return config

    def _refill_pending(self) -> None:
        batch = [self._advance() for _ in range(self.screen_chunk)]
        accept, power, memory = _screen_batch(self.checker, batch)
        for i, config in enumerate(batch):
            self._pending.append(
                (config, bool(accept[i]), _pred_at(power, i), _pred_at(memory, i))
            )

    def propose(self, state, rng, pending=()):
        pending_keys = _pending_keys(pending)
        if self.checker is None:
            config = self._advance()
            if pending_keys:
                # Skip grid points currently in flight (bounded: a finite
                # pending set cannot cover the ever-refining grid).
                for _ in range(self.max_rejects):
                    if _config_key(config) not in pending_keys:
                        break
                    config = self._advance()
            return Proposal(config=config)
        rejected: list[RejectedProposal] = []
        for _ in range(self.max_rejects + 1):
            if not self._pending:
                self._refill_pending()
            config, ok, power, memory = self._pending.pop(0)
            if ok:
                if pending_keys and _config_key(config) in pending_keys:
                    continue
                return Proposal(
                    config=config,
                    rejected=tuple(rejected),
                    power_pred_w=power,
                    memory_pred_bytes=memory,
                    feasible_pred=True,
                )
            rejected.append(RejectedProposal(config, power, memory))
        # Budget exhausted: evaluate the last grid point anyway.
        if not rejected:
            # Every accepted point was in flight: duplicate the last one.
            return Proposal(config=config, feasible_pred=True)
        last = rejected.pop()
        return Proposal(
            config=last.config,
            rejected=tuple(rejected),
            power_pred_w=last.power_pred_w,
            memory_pred_bytes=last.memory_pred_bytes,
            feasible_pred=False,
        )


class BayesianOptimizer(SearchMethod):
    """GP-based sequential model-based optimization (Figure 2's loop).

    Parameters
    ----------
    space:
        The design space.
    acquisition:
        Scoring rule for candidates (HW-IECI, HW-CWEI, or plain EI).
    model_checker:
        The a-priori predictive-model checker — present only in HyperPower
        variants, where it also screens the initial design and provides the
        predictions recorded on every chosen sample.
    learned_constraints:
        The observation-driven constraint GPs — present only in *default*
        constrained variants; refitted from the state before each proposal.
    n_init:
        Random designs evaluated before the surrogate takes over.
    pool_size:
        Random candidates scored per iteration ("each sampled grid point of
        the hyper-parameter space", Section 3.3).
    n_local:
        Extra candidates perturbed around the incumbent (exploitation).
    gp_restarts:
        Random restarts of the marginal-likelihood optimiser per refit.
    refit_every:
        Re-optimize the surrogate's hyper-parameters only once every this
        many *new trained observations*; rounds in between condition on the
        new data with a rank-1 Cholesky append at fixed hyper-parameters
        (``O(n^2)`` instead of ``O(n^3)`` plus the optimiser).  The default
        of 1 refits every round — the paper's (and the seed's) behaviour.
    warm_start:
        Start the refit's L-BFGS-B from the previous fit's
        hyper-parameters instead of the kernel defaults, and decay the
        restart count to 1 once ``burn_in`` trained observations have
        accumulated past the initial design (by then the marginal
        likelihood's basin is stable and extra cold restarts are wasted
        work).  Off by default: the cold path reproduces the seed
        trajectories exactly.
    burn_in:
        Trained observations past ``n_init`` after which a warm-started
        refit drops to a single restart.
    fantasy:
        How the asynchronous scheduler's in-flight trials condition the
        surrogate: ``"cl-min"`` (constant liar at the incumbent error —
        optimistic, spreads the batch), ``"cl-mean"`` (liar at the mean
        observed error), or ``"none"`` (pending trials only excluded from
        the candidate pool, never fantasized).  Fantasies are rank-1
        appends onto a *copy* of the persistent surrogate, so the
        synchronous path and the refit schedule are untouched.
    surrogate:
        Surrogate tier for the objective model: ``"exact"`` (the default —
        the exact GP, byte-identical to the seed path), ``"rff"`` (random
        Fourier features), ``"nystrom"`` (inducing points), or ``"auto"``
        (exact below ``surrogate_switch_at`` observations, sparse above,
        with a logged tier-transition event).  Sparse tiers keep fits at
        ``O(n m^2)``, appends/fantasies at ``O(m^2)`` and predictions flat
        in ``n``, which is what holds proposal latency flat on 10^4-10^5
        trial studies.
    surrogate_features:
        Feature / inducing-point count ``m`` of the sparse tiers.
    surrogate_switch_at:
        Observation count at which the ``auto`` tier goes sparse.
    """

    name = "BO"

    def __init__(
        self,
        space: SearchSpace,
        acquisition: Acquisition,
        model_checker: ModelConstraintChecker | None = None,
        learned_constraints: GPConstraintModel | None = None,
        n_init: int = 5,
        pool_size: int = 1000,
        n_local: int = 20,
        local_sigma: float = 0.08,
        gp_restarts: int = 2,
        refit_every: int = 1,
        warm_start: bool = False,
        burn_in: int = 15,
        fantasy: str = "cl-min",
        surrogate: str = "exact",
        surrogate_features: int = DEFAULT_FEATURES,
        surrogate_switch_at: int = DEFAULT_SWITCH_AT,
        scatter_init: int = 0,
    ):
        super().__init__(space)
        if model_checker is not None and learned_constraints is not None:
            raise ValueError(
                "a variant uses either a-priori models or learned "
                "constraint GPs, not both"
            )
        if n_init < 1 or pool_size < 1:
            raise ValueError("n_init and pool_size must be >= 1")
        if refit_every < 1:
            raise ValueError("refit_every must be >= 1")
        if gp_restarts < 0 or burn_in < 0:
            raise ValueError("gp_restarts and burn_in must be >= 0")
        if fantasy not in ("cl-min", "cl-mean", "none"):
            raise ValueError("fantasy must be 'cl-min', 'cl-mean' or 'none'")
        if surrogate not in SURROGATE_TIERS:
            raise ValueError(
                f"surrogate must be one of {SURROGATE_TIERS}, got {surrogate!r}"
            )
        if surrogate_features < 1 or surrogate_switch_at < 1:
            raise ValueError(
                "surrogate_features and surrogate_switch_at must be >= 1"
            )
        if scatter_init < 0:
            raise ValueError("scatter_init must be >= 0")
        self.acquisition = acquisition
        self.model_checker = model_checker
        self.learned_constraints = learned_constraints
        self.n_init = n_init
        self.pool_size = pool_size
        self.n_local = n_local
        self.local_sigma = local_sigma
        self.gp_restarts = gp_restarts
        self.refit_every = refit_every
        self.warm_start = warm_start
        self.burn_in = burn_in
        self.fantasy = fantasy
        self.surrogate = surrogate
        self.surrogate_features = surrogate_features
        self.surrogate_switch_at = surrogate_switch_at
        #: Widened initial design under rung scheduling: cheap low-fidelity
        #: scatter trials before the surrogate takes over (0 = classic
        #: ``n_init`` behaviour).
        self.scatter_init = scatter_init
        self.name = acquisition.name
        #: Per-stage wall-clock timings of the surrogate hot path.
        self.surrogate_profile = SurrogateProfile()
        #: The persistent surrogate and what it has been conditioned on.
        self._gp: GaussianProcess | None = None
        self._gp_n = 0
        self._last_refit_n = 0

    # -- helpers ------------------------------------------------------------------

    #: Candidates drawn and screened per vectorised model call.
    screen_chunk = 64

    def _screened_random(
        self,
        rng: np.random.Generator,
        limit: int = 5000,
        pending_keys: frozenset = frozenset(),
    ) -> tuple[Configuration, int]:
        """A uniform config passing the a-priori models, and checks spent.

        Draws are screened chunk-wise through ``indicator_batch``; the
        returned check count is the number of candidates *examined* (what a
        serial loop would have charged the clock for), not the number drawn.
        Accepted candidates already in flight (``pending_keys``) are
        passed over.
        """
        if self.model_checker is None:
            config = self.space.sample(rng)
            if pending_keys:
                for _ in range(limit):
                    if _config_key(config) not in pending_keys:
                        break
                    config = self.space.sample(rng)
            return config, 0
        checks = 0
        config = None
        while checks < limit:
            chunk = min(self.screen_chunk, limit - checks)
            configs = self.space.sample_many(chunk, rng)
            accept = _indicator_batch(self.model_checker, configs)
            for i, config in enumerate(configs):
                checks += 1
                if accept[i]:
                    if pending_keys and _config_key(config) in pending_keys:
                        continue
                    return config, checks
        return config, checks

    def _candidate_pool(
        self, state: SearchState, rng: np.random.Generator
    ) -> list[Configuration]:
        pool = self.space.sample_many(self.pool_size, rng)
        incumbent = state.best_feasible() or state.best_any()
        if incumbent is not None:
            pool.extend(
                self.space.neighbor(incumbent[0], self.local_sigma, rng)
                for _ in range(self.n_local)
            )
        return pool

    def _surrogate(
        self, state: SearchState, rng: np.random.Generator
    ) -> tuple[GaussianProcess, int, int]:
        """The objective surrogate for this round, via the refit schedule.

        Returns ``(gp, fits, appends)``.  A full hyper-parameter refit runs
        when the GP does not exist yet or ``refit_every`` new trained
        observations have arrived since the last one; otherwise the new
        observations are folded in with rank-1 Cholesky appends at fixed
        hyper-parameters.  Without ``warm_start`` a refit rebuilds the GP
        from the default kernel, making the ``refit_every=1`` schedule
        byte-identical to fitting a fresh GP every round (the seed path).
        """
        n = state.n_trained
        X = self.space.encode_many(state.trained_configs)
        y = np.asarray(state.trained_errors, dtype=float)
        # Tier labels ride on the surrogate spans for non-default tiers
        # only; the default tier's span stream stays byte-identical to the
        # golden trace fixtures.
        tier_attrs = (
            {} if self.surrogate == "exact" else {"surrogate": self.surrogate}
        )
        refit_due = (
            self._gp is None
            or n < self._gp_n  # state reset under us: start over
            or n - self._last_refit_n >= self.refit_every
        )
        if refit_due:
            if self._gp is None or not self.warm_start:
                gp = self._make_surrogate()
            else:
                gp = self._gp  # warm start: theta of the previous fit
            restarts = self.gp_restarts
            if self.warm_start and n >= self.n_init + self.burn_in:
                restarts = min(restarts, 1)
            with self.tracer.span(
                "gp_fit", n_obs=n, restarts=restarts, **tier_attrs
            ):
                gp.fit(X, y, restarts=restarts, rng=rng)
            self._gp = gp
            self._gp_n = n
            self._last_refit_n = n
            return gp, 1, 0
        appends = n - self._gp_n
        if appends:
            with self.tracer.span(
                "gp_append", n_obs=n, appends=appends, **tier_attrs
            ):
                for i in range(self._gp_n, n):
                    self._gp.append(X[i], y[i])
            self._gp_n = n
        return self._gp, 0, appends

    def _make_surrogate(self):
        """A fresh objective surrogate for the configured tier.

        The ``exact`` branch constructs the same
        ``GaussianProcess(kernel=Matern52(dim), profile=...)`` this
        optimizer always built, so default-tier runs (and ``auto`` runs
        that stay below the switch threshold) are byte-identical to the
        pre-tier code path.
        """
        return make_surrogate(
            self.surrogate,
            self.space.dimension,
            profile=self.surrogate_profile,
            n_features=self.surrogate_features,
            switch_at=self.surrogate_switch_at,
        )

    def _refit_learned_constraints(self, state: SearchState) -> int:
        """Refit constraint GPs from measured trials; returns fits done."""
        model = self.learned_constraints
        if model is None:
            return 0
        model._X.clear()
        model._power.clear()
        model._memory.clear()
        model._latency.clear()
        for trial in state.trials:
            if not trial.was_trained:
                continue
            model.observe(
                trial.config,
                trial.power_meas_w,
                trial.memory_meas_bytes,
                trial.latency_meas_s,
            )
        model.refit()
        active = (
            (model.spec.power_budget_w is not None)
            + (model.spec.memory_budget_bytes is not None)
            + (model.spec.latency_budget_s is not None)
        )
        return active

    # -- proposal -------------------------------------------------------------------

    def _fantasize(
        self, gp: GaussianProcess, state: SearchState, pending
    ) -> tuple[GaussianProcess, int]:
        """Condition a *copy* of the surrogate on lies for pending trials.

        Constant-liar batch BO: each in-flight configuration is appended
        with a fantasy observation (the incumbent error for ``cl-min``,
        the mean observed error for ``cl-mean``), deflating EI around
        points whose outcome is already being bought.  ``append`` rebinds
        the posterior arrays rather than mutating them, so a shallow copy
        leaves the persistent surrogate untouched.
        """
        if not pending or self.fantasy == "none":
            return gp, 0
        errors = np.asarray(state.trained_errors, dtype=float)
        finite = errors[np.isfinite(errors)]
        if self.fantasy == "cl-min":
            lie = state.incumbent_error()
            if lie is None:
                lie = float(np.mean(errors))
        else:
            lie = float(np.mean(errors))
        if not np.isfinite(lie):
            # Degraded measurements can leave NaN in the error history; the
            # surrogate refuses non-finite appends, so fall back to the
            # finite mean — or skip fantasizing when nothing finite exists.
            if finite.size == 0:
                return gp, 0
            lie = float(np.mean(finite))
        gp_f = copy.copy(gp)
        with self.tracer.span("fantasy", pending=len(pending), lie=lie):
            for config in pending:
                # Fidelity-aware lie: a trial paused at a rung carries a
                # real partial observation — condition on it instead of
                # the generic constant-liar value.
                observed = getattr(config, "error", None)
                value = (
                    float(observed)
                    if observed is not None and np.isfinite(observed)
                    else lie
                )
                gp_f.append(
                    self.space.encode(getattr(config, "config", config)),
                    value,
                )
        return gp_f, len(pending)

    def propose(self, state, rng, pending=()):
        pending_keys = _pending_keys(pending)
        # Initial design: random (model-screened in HyperPower variants).
        # Under rung scheduling, `scatter_init` widens it: the extra
        # designs are cheap low-fidelity scatter trials that seed the rung
        # ladder before the surrogate takes over.
        if state.n_trained < max(self.n_init, self.scatter_init):
            config, checks = self._screened_random(
                rng, pending_keys=pending_keys
            )
            power, memory = _predictions(self.model_checker, config)
            feasible = (
                self.model_checker.indicator(config)
                if self.model_checker is not None
                else None
            )
            return Proposal(
                config=config,
                silent_model_checks=checks,
                power_pred_w=power,
                memory_pred_bytes=memory,
                feasible_pred=feasible,
            )

        gp_fits = self._refit_learned_constraints(state)
        gp, fits, appends = self._surrogate(state, rng)
        gp_fits += fits
        gp, fantasies = self._fantasize(gp, state, pending)

        incumbent = state.incumbent_error()
        candidates = self._candidate_pool(state, rng)
        X_cand = self.space.encode_many(candidates)
        with self.tracer.span("acquisition", candidates=len(candidates)):
            with self.surrogate_profile.timeit("acquisition"):
                scores = self.acquisition.score(
                    candidates, X_cand, gp, incumbent
                )
        if pending_keys:
            # Never re-propose an in-flight point: zero its score.
            dup = np.fromiter(
                (_config_key(c) in pending_keys for c in candidates),
                dtype=bool,
                count=len(candidates),
            )
            scores = np.where(dup, 0.0, scores)

        if np.max(scores) > 0:
            config = candidates[int(np.argmax(scores))]
            checks = 0
        else:
            # Acquisition saturated (all candidates gated out or EI = 0):
            # fall back to a screened random draw to keep exploring.
            config, checks = self._screened_random(
                rng, pending_keys=pending_keys
            )

        power, memory = _predictions(self.model_checker, config)
        feasible = (
            self.model_checker.indicator(config)
            if self.model_checker is not None
            else None
        )
        return Proposal(
            config=config,
            silent_model_checks=checks,
            gp_fits=gp_fits,
            gp_appends=appends,
            gp_fantasies=fantasies,
            power_pred_w=power,
            memory_pred_bytes=memory,
            feasible_pred=feasible,
        )
