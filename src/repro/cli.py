"""Command-line interface: regenerate any of the paper's artifacts.

Usage (after ``pip install -e .``)::

    python -m repro.cli table1
    python -m repro.cli table2 --scale 0.5 --repeats 3
    python -m repro.cli fig4 --pair cifar10-gtx1070
    python -m repro.cli run --solver HW-IECI --variant hyperpower \
        --pair mnist-gtx1070 --evaluations 10 --out run.json

``table2``..``table5`` and ``fig6`` share one fixed-runtime study per
invocation; requesting several of them at once (``tables``) amortises it.
"""

from __future__ import annotations

import argparse
import sys

from .experiments.fixed_evals import figure4_series, run_fixed_evals
from .experiments.fixed_runtime import (
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    run_fixed_runtime,
)
from .experiments.headlines import compute_headlines, format_headlines
from .experiments.model_accuracy import format_table1, run_model_accuracy
from .experiments.motivating import run_figure1, run_figure3
from .core.faults import FaultRates, RetryPolicy
from .core.parallel import TrialCache
from .experiments.setup import PAPER_PAIRS, paper_setup
from .io import save_runs

_RUNTIME_TABLES = {
    "table2": format_table2,
    "table3": format_table3,
    "table4": format_table4,
    "table5": format_table5,
}


def _cmd_table1(args) -> None:
    study = run_model_accuracy(n_samples=args.samples, seed=args.seed)
    print(format_table1(study))


def _cmd_runtime_tables(args, which: list[str]) -> None:
    study = run_fixed_runtime(
        n_repeats=args.repeats,
        time_scale=args.scale,
        profiling_samples=args.samples,
        seed=args.seed,
    )
    for name in which:
        print()
        print(_RUNTIME_TABLES[name](study))


def _cmd_fig1(args) -> None:
    data = run_figure1(n_samples=args.samples, seed=args.seed)
    spread = data.iso_error_power_spread()
    print(
        f"Figure 1: {len(data.errors)} variants, power "
        f"{data.power_w.min():.1f}-{data.power_w.max():.1f} W, "
        f"max iso-error spread {spread:.1f} W"
    )
    for error, power in sorted(zip(data.errors, data.power_w)):
        print(f"  {error * 100:6.2f}%  {power:7.2f} W")


def _cmd_fig3(args) -> None:
    data = run_figure3(seed=args.seed)
    print(
        "Figure 3 (left): power-vs-epoch max relative range "
        f"{data.power_epoch_sensitivity:.3f}"
    )
    print("Figure 3 (right): per-epoch error curves")
    for label, curves in (
        ("converging", data.converging_curves),
        ("diverging", data.diverging_curves),
    ):
        for curve in curves:
            cells = " ".join(f"{v:5.3f}" for v in curve)
            print(f"  {label[:4]} {cells}")


def _cmd_fig4(args) -> None:
    study = run_fixed_evals(
        pair_key=args.pair,
        n_repeats=args.repeats,
        seed=args.seed,
        profiling_samples=args.samples,
    )
    series = figure4_series(study)
    for solver, panels in series.items():
        best = panels["best_error_curve"][-1]
        violations = panels["violation_curve"][-1]
        print(
            f"{solver:10s} final best error {best * 100:6.2f}%  "
            f"violations {violations:5.1f}"
        )


def _cmd_run(args) -> None:
    setup, pair = paper_setup(
        args.pair, seed=args.seed, profiling_samples=args.samples
    )
    kwargs = {}
    if args.evaluations is not None:
        kwargs["max_evaluations"] = args.evaluations
    if args.hours is not None:
        kwargs["max_time_s"] = args.hours * 3600.0
    if not kwargs:
        kwargs["max_time_s"] = pair.time_budget_s
    if args.gp_refit_every < 1:
        raise SystemExit("--gp-refit-every must be >= 1")
    if args.gp_restarts < 0:
        raise SystemExit("--gp-restarts must be >= 0")
    if args.surrogate_features < 1:
        raise SystemExit("--surrogate-features must be >= 1")
    if args.surrogate_switch_at < 1:
        raise SystemExit("--surrogate-switch-at must be >= 1")
    kwargs["gp_restarts"] = args.gp_restarts
    kwargs["gp_refit_every"] = args.gp_refit_every
    kwargs["gp_warm_start"] = args.gp_warm_start
    kwargs["surrogate"] = args.surrogate
    kwargs["surrogate_features"] = args.surrogate_features
    kwargs["surrogate_switch_at"] = args.surrogate_switch_at
    if args.scheduler == "async" and args.backend is None:
        raise SystemExit("--scheduler async requires --backend")
    kwargs["scheduler"] = args.scheduler
    kwargs["fantasy"] = args.fantasy
    if args.rungs < 0:
        raise SystemExit("--rungs must be >= 0")
    if args.rungs > 0:
        if args.scheduler != "async" or args.backend is None:
            raise SystemExit(
                "--rungs requires --scheduler async and --backend"
            )
        if args.eta < 2:
            raise SystemExit("--eta must be >= 2")
        if args.min_epochs < 1:
            raise SystemExit("--min-epochs must be >= 1")
        if args.brackets < 1:
            raise SystemExit("--brackets must be >= 1")
        kwargs["rungs"] = args.rungs
        kwargs["eta"] = args.eta
        kwargs["min_epochs"] = args.min_epochs
        kwargs["brackets"] = args.brackets
    if args.scatter_init < 0:
        raise SystemExit("--scatter-init must be >= 0")
    if args.scatter_init:
        kwargs["scatter_init"] = args.scatter_init
    if args.backend is not None:
        if args.workers < 1:
            raise SystemExit("--workers must be >= 1")
        kwargs["backend"] = args.backend
        kwargs["workers"] = args.workers
        kwargs["use_cache"] = not args.no_cache
        if args.warm_cache:
            if args.no_cache:
                raise SystemExit("--warm-cache requires the cache (drop --no-cache)")
            # Warm-cache replay: run once to populate a shared cache, then
            # report the identically-seeded re-run, whose trainings all
            # replay at lookup cost (runs are deterministic).
            kwargs["cache"] = TrialCache()
            setup.run(args.solver, args.variant, run_seed=args.run_seed, **kwargs)
    rates = FaultRates(
        crash=args.fault_crash,
        hang=args.fault_hang,
        nan_loss=args.fault_nan,
        oom=args.fault_oom,
        nvml=args.fault_nvml,
    )
    if rates.any_active:
        if args.backend is None:
            raise SystemExit("fault injection requires --backend")
        kwargs["faults"] = rates
        kwargs["fault_seed"] = args.fault_seed
    if (
        args.max_attempts != 3
        or args.timeout is not None
        or args.backoff_base != 60.0
        or args.backoff_factor != 2.0
    ):
        kwargs["retry"] = RetryPolicy(
            max_attempts=args.max_attempts,
            timeout_s=args.timeout,
            backoff_base_s=args.backoff_base,
            backoff_factor=args.backoff_factor,
        )
    if args.journal:
        kwargs["journal"] = args.journal
    if args.resume:
        kwargs["resume_from"] = args.resume
    telemetry = None
    if args.trace_out or args.metrics_out:
        # Created only now so a --warm-cache pre-run stays untraced.
        from .telemetry import Telemetry

        telemetry = Telemetry()
        kwargs["telemetry"] = telemetry
    result = setup.run(args.solver, args.variant, run_seed=args.run_seed, **kwargs)
    print(
        f"{args.solver}/{args.variant} on {args.pair}: "
        f"{result.n_samples} samples, {result.n_trained} trained, "
        f"{result.n_violations} violations, best feasible error "
        f"{result.best_feasible_error * 100:.2f}%"
    )
    if result.cache_lookups > 0:
        print(
            f"cache: {result.cache_hits} hits, {result.cache_misses} misses, "
            f"hit rate {result.cache_hit_rate * 100:.2f}% "
            f"({result.n_cached} trials replayed)"
        )
    if result.n_attempts > result.n_trained or result.n_failed > 0:
        print(
            f"faults: {result.n_failed} failed trials, "
            f"{result.n_degraded} degraded measurements, "
            f"{result.n_faults} faulted attempts absorbed, "
            f"{result.retry_time_s:.0f}s of retries/backoff charged"
        )
    if telemetry is not None:
        from .telemetry import write_metrics, write_trace

        meta = {
            "pair": args.pair,
            "solver": args.solver,
            "variant": args.variant,
            "seed": args.seed,
            "run_seed": args.run_seed,
        }
        if args.trace_out:
            path = write_trace(args.trace_out, telemetry.tracer, meta=meta)
            print(
                f"saved trace to {path} ({telemetry.tracer.n_spans} spans, "
                f"{telemetry.tracer.dropped} dropped)"
            )
        if args.metrics_out:
            path = write_metrics(
                args.metrics_out, telemetry.metrics.snapshot(), meta=meta
            )
            print(f"saved metrics to {path}")
    if args.out:
        path = save_runs([result], args.out)
        print(f"saved run to {path}")


def _cmd_serve(args) -> None:
    from .service import StudyServer, StudyStore

    telemetry = None
    if args.trace_out or args.metrics_out:
        from .telemetry import Telemetry

        telemetry = Telemetry()
    chaos = None
    if args.chaos_rate > 0:
        from .core.faults import StorageChaos, StorageFaultRates

        chaos = StorageChaos(
            rates=StorageFaultRates(
                fsync=args.chaos_rate,
                enospc=args.chaos_rate,
                torn=args.chaos_rate,
                delay=args.chaos_rate,
            ),
            seed=args.chaos_seed,
        )
    store = StudyStore(
        args.root,
        fsync=not args.no_fsync,
        metrics=None if telemetry is None else telemetry.metrics,
        tracer=None if telemetry is None else telemetry.tracer,
        chaos=chaos,
        snapshot_every=args.snapshot_every,
    )
    server = StudyServer(
        (args.host, args.port),
        store,
        telemetry=telemetry,
        max_inflight=args.max_inflight,
        retry_after_s=args.retry_after,
    )
    host, port = server.server_address[:2]
    # Parsed by clients launching the server as a subprocess; flush so
    # they see it before the first request.
    print(f"serving study store {args.root} at http://{host}:{port}/", flush=True)

    def _term(signum, frame):  # SIGTERM: graceful drain, then exit
        raise KeyboardInterrupt

    import signal

    previous = signal.signal(signal.SIGTERM, _term)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        # Drain before shutdown: stop admitting (new requests shed with
        # a typed Overloaded error), let in-flight requests finish, and
        # durably flush every journal — no accepted request is lost.
        quiesced = server.drain(timeout_s=args.drain_timeout)
        server.shutdown()
        server.server_close()
        store.close()
        print(
            "drained cleanly" if quiesced
            else "drain timed out with requests in flight",
            flush=True,
        )
        if telemetry is not None:
            from .telemetry import write_metrics, write_trace

            meta = {"root": str(args.root)}
            if args.trace_out:
                write_trace(args.trace_out, telemetry.tracer, meta=meta)
            if args.metrics_out:
                write_metrics(
                    args.metrics_out, telemetry.metrics.snapshot(), meta=meta
                )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="HyperPower reproduction harness"
    )
    parser.add_argument("--seed", type=int, default=0, help="root seed")
    parser.add_argument(
        "--samples", type=int, default=100, help="profiling-campaign size"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: model RMSPE")

    for name in ("table2", "table3", "table4", "table5", "tables", "headlines"):
        p = sub.add_parser(name, help=f"{name}: fixed-runtime protocol")
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--repeats", type=int, default=3)

    p = sub.add_parser("fig1", help="Figure 1: error-power scatter")
    p = sub.add_parser("fig3", help="Figure 3: the two insights")
    p = sub.add_parser("fig4", help="Figure 4: fixed evaluations")
    p.add_argument("--pair", default="cifar10-gtx1070", choices=sorted(PAPER_PAIRS))
    p.add_argument("--repeats", type=int, default=5)

    p = sub.add_parser("run", help="run one method variant")
    p.add_argument("--pair", default="mnist-gtx1070", choices=sorted(PAPER_PAIRS))
    p.add_argument("--solver", default="HW-IECI",
                   choices=["Rand", "Rand-Walk", "HW-CWEI", "HW-IECI"])
    p.add_argument("--variant", default="hyperpower",
                   choices=["default", "hyperpower"])
    p.add_argument("--evaluations", type=int, default=None)
    p.add_argument("--hours", type=float, default=None)
    p.add_argument("--run-seed", type=int, default=0)
    p.add_argument("--gp-refit-every", type=int, default=1,
                   help="re-optimize BO surrogate hyper-parameters every N "
                        "trained observations, rank-1-appending in between "
                        "(default 1: refit every round, the paper's loop)")
    p.add_argument("--gp-restarts", type=int, default=2,
                   help="random restarts per surrogate hyper-refit")
    p.add_argument("--gp-warm-start", action="store_true",
                   help="warm-start surrogate refits from the previous fit "
                        "(decays restarts to 1 after burn-in)")
    p.add_argument("--surrogate", default="exact",
                   choices=["exact", "rff", "nystrom", "auto"],
                   help="surrogate tier for the BO solvers: 'exact' "
                        "(default, the paper's GP), 'rff' (random Fourier "
                        "features), 'nystrom' (inducing points), or 'auto' "
                        "(exact below --surrogate-switch-at observations, "
                        "sparse above) — sparse tiers keep proposal cost "
                        "flat on long studies")
    p.add_argument("--surrogate-features", type=int, default=256,
                   help="feature/inducing-point count of the sparse "
                        "surrogate tiers")
    p.add_argument("--surrogate-switch-at", type=int, default=1000,
                   help="observation count at which --surrogate auto "
                        "switches from the exact to the sparse tier")
    p.add_argument("--backend", default=None,
                   choices=["serial", "thread", "process"],
                   help="evaluate accepted proposals through an "
                        "EvaluationPool (default: paper's sequential loop)")
    p.add_argument("--workers", type=int, default=1,
                   help="concurrent trainings per round (with --backend)")
    p.add_argument("--scheduler", default="sync", choices=["sync", "async"],
                   help="'sync' (default): round-barrier loop, byte-identical "
                        "to prior releases; 'async': event-driven scheduler "
                        "refilling workers the moment a trial completes "
                        "(requires --backend)")
    p.add_argument("--rungs", type=int, default=0,
                   help="multi-fidelity rung count; 0 (default) trains "
                        "every trial to the full schedule, N>0 runs "
                        "successive halving over N geometric epoch rungs "
                        "(requires --scheduler async and --backend)")
    p.add_argument("--eta", type=int, default=3,
                   help="rung promotion ratio: each rung promotes the "
                        "top 1/eta of its cell (default 3)")
    p.add_argument("--min-epochs", type=int, default=1,
                   help="epoch budget of the cheapest rung (default 1)")
    p.add_argument("--brackets", type=int, default=1,
                   help="Hyperband brackets assigned round-robin; "
                        "1 (default) is plain successive halving")
    p.add_argument("--scatter-init", type=int, default=0,
                   help="widen the BO solvers' random initial design (and "
                        "the rung-0 cell under --rungs) to this many "
                        "trials; 0 keeps the method default")
    p.add_argument("--fantasy", default="cl-min",
                   choices=["cl-min", "cl-mean", "none"],
                   help="constant-liar strategy the BO solvers use for "
                        "in-flight trials under --scheduler async")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the config-hash trial cache (with --backend)")
    p.add_argument("--warm-cache", action="store_true",
                   help="run twice against one shared cache and report the "
                        "second (cache-replayed) run")
    p.add_argument("--fault-crash", type=float, default=0.0,
                   help="per-attempt worker-crash probability (with --backend)")
    p.add_argument("--fault-hang", type=float, default=0.0,
                   help="per-attempt hang probability (reaped at the timeout)")
    p.add_argument("--fault-nan", type=float, default=0.0,
                   help="per-attempt NaN/inf-loss probability")
    p.add_argument("--fault-oom", type=float, default=0.0,
                   help="per-attempt out-of-memory probability")
    p.add_argument("--fault-nvml", type=float, default=0.0,
                   help="per-attempt transient measurement-failure probability "
                        "(trial degrades to model-predicted power/memory)")
    p.add_argument("--fault-seed", type=int, default=None,
                   help="fault-injection stream seed (default: derived from "
                        "the setup and run seeds)")
    p.add_argument("--max-attempts", type=int, default=3,
                   help="evaluation attempts per trial before FAILED")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-trial simulated timeout, seconds")
    p.add_argument("--backoff-base", type=float, default=60.0,
                   help="simulated backoff before the first retry, seconds")
    p.add_argument("--backoff-factor", type=float, default=2.0,
                   help="exponential backoff growth factor")
    p.add_argument("--journal", default=None,
                   help="write a crash-safe JSONL journal of the run")
    p.add_argument("--resume", default=None,
                   help="resume an interrupted run from its journal "
                        "(continues bit-identically; appends to the same "
                        "journal unless --journal names another file)")
    p.add_argument("--trace-out", default=None,
                   help="write a JSONL span trace of the run (tracing never "
                        "changes the run's results)")
    p.add_argument("--metrics-out", default=None,
                   help="write the run's metrics snapshot as JSON")
    p.add_argument("--out", default=None, help="save the run as JSON")

    p = sub.add_parser("serve", help="serve a multi-study ask/tell service")
    p.add_argument("--root", required=True,
                   help="directory holding the per-study journals")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642,
                   help="TCP port (0 lets the OS pick; the chosen port is "
                        "printed on startup)")
    p.add_argument("--no-fsync", action="store_true",
                   help="skip the per-event fsync (faster, but a host crash "
                        "may lose the tail of a study journal)")
    p.add_argument("--snapshot-every", type=int, default=None,
                   help="compact each study journal into a crash-safe "
                        "snapshot every N events (default: never), keeping "
                        "recovery O(events since the last snapshot)")
    p.add_argument("--max-inflight", type=int, default=None,
                   help="bound on concurrently executing requests; excess "
                        "requests are shed with a typed Overloaded error "
                        "carrying retry_after_s (default: unbounded)")
    p.add_argument("--retry-after", type=float, default=0.5,
                   help="retry_after_s hint attached to shed requests")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   help="seconds SIGTERM waits for in-flight requests "
                        "before closing the journals")
    p.add_argument("--chaos-seed", type=int, default=0,
                   help="seed of the deterministic storage-fault stream "
                        "(only meaningful with --chaos-rate)")
    p.add_argument("--chaos-rate", type=float, default=0.0,
                   help="per-append probability of each injected storage "
                        "fault kind (fsync/enospc/torn/delay), for chaos "
                        "drills; 0 (default) injects nothing")
    p.add_argument("--trace-out", default=None,
                   help="write a JSONL span trace of served requests on exit")
    p.add_argument("--metrics-out", default=None,
                   help="write the service metrics snapshot as JSON on exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "table1":
        _cmd_table1(args)
    elif args.command in _RUNTIME_TABLES:
        _cmd_runtime_tables(args, [args.command])
    elif args.command == "tables":
        _cmd_runtime_tables(args, list(_RUNTIME_TABLES))
    elif args.command == "headlines":
        study = run_fixed_runtime(
            n_repeats=args.repeats,
            time_scale=args.scale,
            profiling_samples=args.samples,
            seed=args.seed,
        )
        print(format_headlines(compute_headlines(study)))
    elif args.command == "fig1":
        _cmd_fig1(args)
    elif args.command == "fig3":
        _cmd_fig3(args)
    elif args.command == "fig4":
        _cmd_fig4(args)
    elif args.command == "run":
        _cmd_run(args)
    elif args.command == "serve":
        _cmd_serve(args)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
