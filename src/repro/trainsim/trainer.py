"""The training-job simulator (Caffe-solver analog).

:class:`TrainingSimulator` turns a hyper-parameter configuration into a
training run: it builds the network, computes a realistic wall-clock cost
per epoch on the *training host* (the paper trains on the server and only
profiles power/memory on the target platform), and emits the per-epoch test
errors from the error surface and learning-curve model.

An optional ``stop_callback`` is polled after every epoch; this is the hook
the framework's early-termination policy (paper Section 3.2) plugs into,
and the wall-clock cost of a stopped run is only the epochs actually run.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass

import numpy as np

from ..hwsim.device import DeviceModel
from ..hwsim.power import inference_timing
from ..nn.builder import build_network
from ..nn.network import NetworkSpec
from .dataset import DatasetSpec
from .dynamics import LearningCurveModel
from .surface import ErrorSurface, SurfaceEvaluation

__all__ = ["TrainingResult", "TrainingSimulator"]

#: Fraction of peak throughput a training step sustains (forward+backward
#: kernels are less tuned than inference).
_TRAIN_EFFICIENCY = 0.2

#: Solver bookkeeping + data loading per mini-batch, s.
_SOLVER_OVERHEAD_S = 0.025

#: One-off job setup (model compilation, data prefetch), s.
_JOB_SETUP_S = 20.0

#: A backward pass costs roughly twice the forward pass.
_TRAIN_FLOP_MULTIPLIER = 3.0

#: Signature of the per-epoch stop hook: (epoch_index, curve_so_far) -> stop?
StopCallback = Callable[[int, np.ndarray], bool]


@dataclass(frozen=True)
class TrainingResult:
    """Outcome of one (possibly truncated) training run."""

    #: The configuration that was trained.
    config: dict
    #: Observed test error after each epoch actually run.
    curve: np.ndarray
    #: Best (lowest) observed test error of the run.
    best_error: float
    #: Test error at the last epoch run.
    final_error: float
    #: Number of epochs actually run.
    epochs_run: int
    #: Whether the ground truth says this configuration diverges.
    diverged: bool
    #: Whether the stop callback truncated the run.
    stopped_early: bool
    #: Wall-clock cost of the run, s (setup + epochs run; a resumed
    #: segment charges only its incremental epochs, no setup).
    wall_time_s: float
    #: Wall-clock cost of one epoch, s.
    epoch_time_s: float
    #: Ground-truth surface evaluation of the configuration.
    surface: SurfaceEvaluation


class TrainingSimulator:
    """Simulated training jobs for one benchmark on one training host."""

    def __init__(
        self,
        dataset: DatasetSpec,
        surface: ErrorSurface,
        train_device: DeviceModel,
        curve_model: LearningCurveModel | None = None,
        train_efficiency: float = _TRAIN_EFFICIENCY,
        solver_overhead_s: float = _SOLVER_OVERHEAD_S,
        job_setup_s: float = _JOB_SETUP_S,
    ):
        if surface.dataset is not dataset and surface.dataset.name != dataset.name:
            raise ValueError(
                f"surface is for {surface.dataset.name!r}, not {dataset.name!r}"
            )
        if not (0.0 < train_efficiency <= 1.0):
            raise ValueError("train efficiency must be in (0, 1]")
        if solver_overhead_s < 0 or job_setup_s < 0:
            raise ValueError("overheads must be non-negative")
        self.dataset = dataset
        self.surface = surface
        self.train_device = train_device
        self.curve_model = curve_model or LearningCurveModel(dataset)
        self.train_efficiency = train_efficiency
        self.solver_overhead_s = solver_overhead_s
        self.job_setup_s = job_setup_s

    # -- cost model -------------------------------------------------------------

    def batch_time_s(self, network: NetworkSpec) -> float:
        """Wall-clock cost of one training mini-batch, s."""
        timing = inference_timing(
            network, self.train_device, self.dataset.train_batch
        )
        compute = _TRAIN_FLOP_MULTIPLIER * timing.total_s / self.train_efficiency
        return compute + self.solver_overhead_s

    def epoch_time_s(self, network: NetworkSpec) -> float:
        """Wall-clock cost of one training epoch, s."""
        return self.dataset.batches_per_epoch * self.batch_time_s(network)

    def full_training_time_s(self, config: Mapping) -> float:
        """Wall-clock cost of a full (non-terminated) run for ``config``, s."""
        network = build_network(self.dataset.name, config)
        return self.job_setup_s + self.dataset.default_epochs * self.epoch_time_s(
            network
        )

    # -- training ----------------------------------------------------------------

    def train(
        self,
        config: Mapping,
        rng: np.random.Generator,
        epochs: int | None = None,
        stop_callback: StopCallback | None = None,
        start_epoch: int = 0,
        schedule_epochs: int | None = None,
    ) -> TrainingResult:
        """Run one training job (or one resumable segment of it).

        Parameters
        ----------
        config:
            A complete configuration for this benchmark's space.
        rng:
            Per-run noise source (initialisation/data-order luck).
        epochs:
            Cumulative schedule position to train to; defaults to the
            dataset's full schedule.
        stop_callback:
            Polled after each epoch with ``(epoch_index, curve_so_far)``;
            returning ``True`` truncates the run (early termination).
        start_epoch:
            Resume a checkpointed run at this epoch (0 trains from
            scratch).  The returned curve/errors stay *cumulative* — the
            prefix up to ``epochs`` — but ``wall_time_s`` charges only the
            incremental ``epochs - start_epoch`` epochs, and job setup only
            on the first segment.
        schedule_epochs:
            Length at which the learning curve is generated (defaults to
            ``epochs``).  Segments of one logical run must share it: each
            segment regenerates the full curve from the same ``rng`` seed
            and slices its window, so resuming at epoch ``k`` reproduces
            the uninterrupted run's tail bit-exactly (the curve model's
            seed-pure prefix property).
        """
        if epochs is None:
            epochs = self.dataset.default_epochs
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if schedule_epochs is None:
            schedule_epochs = epochs
        if schedule_epochs < epochs:
            raise ValueError("schedule_epochs must be >= epochs")
        if not (0 <= start_epoch < epochs):
            raise ValueError(
                f"start_epoch must be in [0, {epochs}), got {start_epoch}"
            )

        network = build_network(self.dataset.name, config)
        evaluation = self.surface.evaluate(config)
        full_curve = self.curve_model.curve(evaluation, schedule_epochs, rng)
        epoch_time = self.epoch_time_s(network)

        epochs_run = epochs
        stopped_early = False
        if stop_callback is not None:
            for epoch_index in range(start_epoch + 1, epochs + 1):
                if stop_callback(epoch_index, full_curve[:epoch_index]):
                    epochs_run = epoch_index
                    stopped_early = epoch_index < epochs
                    break

        curve = full_curve[:epochs_run]
        setup_s = self.job_setup_s if start_epoch == 0 else 0.0
        return TrainingResult(
            config=dict(config),
            curve=curve,
            best_error=float(np.min(curve)),
            final_error=float(curve[-1]),
            epochs_run=epochs_run,
            diverged=evaluation.diverges,
            stopped_early=stopped_early,
            wall_time_s=setup_s + (epochs_run - start_epoch) * epoch_time,
            epoch_time_s=epoch_time,
            surface=evaluation,
        )
