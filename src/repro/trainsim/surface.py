"""Deterministic test-error response surface over the design space.

This replaces the paper's "train the Caffe model to completion and read the
test error" step with an analytic surface built to have the properties the
paper's search methods interact with:

* **capacity effect** — bigger networks (more features/units, less
  aggressive pooling) achieve lower final error, with diminishing returns;
* **architecture shape effects** — kernel-size and pooling preferences and
  a conv/FC balance term, so error is *not* a monotone function of size.
  This is what produces Figure 1's premise: configurations at the same
  accuracy level can differ widely in power;
* **solver quality** — the effective step size ``lr / (1 - momentum)`` has
  a structure-dependent optimum; too small undertrains, too large degrades
  sharply and finally *diverges* (the regime Figure 3 (right) shows can be
  detected within a few epochs);
* **unmodelable variation** — a per-configuration deterministic jitter,
  reproducible across calls, playing the role of initialisation/data-order
  luck that no surrogate model can explain.

Everything is a pure function of (surface seed, configuration); per-run
observation noise lives in :mod:`repro.trainsim.dynamics`.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

import numpy as np

from ..nn.builder import build_network
from ..nn.metrics import total_params
from .dataset import DatasetSpec

__all__ = ["SurfaceParams", "SurfaceEvaluation", "ErrorSurface",
           "MNIST_SURFACE_PARAMS", "CIFAR10_SURFACE_PARAMS",
           "IMAGENET_SURFACE_PARAMS"]


def _sigmoid(x: float) -> float:
    if x >= 0:
        z = math.exp(-x)
        return 1.0 / (1.0 + z)
    z = math.exp(x)
    return z / (1.0 + z)


@dataclass(frozen=True)
class SurfaceParams:
    """Tunable constants of one benchmark's error surface."""

    #: ``log10(params)`` value mapped to capacity 0 (smallest useful net).
    log_params_low: float
    #: ``log10(params)`` value mapped to capacity 1 (saturated).
    log_params_high: float
    #: Exponent shaping diminishing returns of capacity.
    capacity_exponent: float
    #: Relative std of the per-configuration deterministic jitter.
    jitter_rel: float
    #: Optimal effective step size ``lr/(1-momentum)`` for a reference net.
    step_optimum: float
    #: Sensitivity of the optimum to capacity (bigger nets want smaller steps).
    step_capacity_shift: float
    #: Quadratic penalty per decade of step below the optimum (undertraining).
    step_penalty_low: float
    #: Quadratic penalty per decade of step above the optimum (instability).
    step_penalty_high: float
    #: Effective step size at which training diverges, for a reference net.
    divergence_step: float
    #: Std (decades) of the per-configuration divergence-threshold jitter.
    divergence_jitter_dex: float
    #: Width (decades) of the near-divergence degradation ramp.
    instability_width_dex: float
    #: Optimal weight decay (``None`` when the space does not tune it).
    weight_decay_optimum: float | None
    #: Quadratic penalty per decade of weight-decay mismatch.
    weight_decay_penalty: float
    #: Base convergence time constant, epochs.
    tau_epochs: float


MNIST_SURFACE_PARAMS = SurfaceParams(
    log_params_low=5.20,
    log_params_high=5.70,
    capacity_exponent=1.8,
    jitter_rel=0.06,
    step_optimum=0.055,
    step_capacity_shift=0.35,
    step_penalty_low=0.30,
    step_penalty_high=1.10,
    divergence_step=0.40,
    divergence_jitter_dex=0.10,
    instability_width_dex=0.07,
    weight_decay_optimum=None,
    weight_decay_penalty=0.0,
    tau_epochs=1.8,
)

CIFAR10_SURFACE_PARAMS = SurfaceParams(
    log_params_low=4.70,
    log_params_high=5.50,
    capacity_exponent=1.5,
    jitter_rel=0.05,
    step_optimum=0.030,
    step_capacity_shift=0.45,
    step_penalty_low=0.30,
    step_penalty_high=1.30,
    divergence_step=0.22,
    divergence_jitter_dex=0.10,
    instability_width_dex=0.07,
    weight_decay_optimum=0.0015,
    weight_decay_penalty=0.06,
    tau_epochs=5.0,
)

IMAGENET_SURFACE_PARAMS = SurfaceParams(
    log_params_low=7.15,
    log_params_high=7.85,
    capacity_exponent=1.4,
    jitter_rel=0.03,
    # AlexNet's historical setting (lr 0.01, momentum 0.9 -> effective
    # step 0.1) sits just above this optimum and well below divergence.
    step_optimum=0.080,
    step_capacity_shift=0.30,
    step_penalty_low=0.35,
    step_penalty_high=1.40,
    divergence_step=0.35,
    divergence_jitter_dex=0.10,
    instability_width_dex=0.07,
    weight_decay_optimum=0.0005,
    weight_decay_penalty=0.06,
    tau_epochs=18.0,
)

_SURFACE_PARAMS = {
    "mnist": MNIST_SURFACE_PARAMS,
    "cifar10": CIFAR10_SURFACE_PARAMS,
    "imagenet": IMAGENET_SURFACE_PARAMS,
}


@dataclass(frozen=True)
class SurfaceEvaluation:
    """Ground truth of one configuration's training outcome."""

    #: Final test error the full training schedule converges to (meaningful
    #: only when ``diverges`` is ``False``).
    final_error: float
    #: Whether training diverges (error never leaves the chance level).
    diverges: bool
    #: Structural (solver-independent) achievable error.
    structural_error: float
    #: Effective step size ``lr / (1 - momentum)`` of the configuration.
    effective_step: float
    #: The configuration's optimal effective step size.
    step_optimum: float
    #: Convergence time constant, epochs.
    tau_epochs: float
    #: Capacity score in ``[0, 1]``.
    capacity: float


class ErrorSurface:
    """Analytic test-error surface for one benchmark."""

    def __init__(
        self,
        dataset: DatasetSpec,
        seed: int = 2018,
        params: SurfaceParams | None = None,
    ):
        self.dataset = dataset
        self.seed = int(seed)
        if params is None:
            try:
                params = _SURFACE_PARAMS[dataset.name]
            except KeyError:
                raise ValueError(
                    f"no default surface parameters for dataset "
                    f"{dataset.name!r}; pass params explicitly"
                ) from None
        self.params = params

    # -- deterministic per-configuration randomness ----------------------------

    def _config_rng(self, config: Mapping) -> np.random.Generator:
        """A generator seeded purely by (surface seed, configuration)."""
        keys = []
        for name in sorted(config):
            value = config[name]
            if isinstance(value, (int, np.integer)):
                keys.append(int(value))
            else:
                # Quantise floats so numerically identical configs hash alike.
                keys.append(int(round(float(value) * 1e7)) & 0x7FFFFFFF)
        return np.random.default_rng(np.random.SeedSequence([self.seed, *keys]))

    # -- surface components -----------------------------------------------------

    def capacity(self, config: Mapping) -> float:
        """Capacity score in ``[0, 1]`` from the network's parameter count."""
        network = build_network(self.dataset.name, config)
        log_params = math.log10(max(1, total_params(network)))
        p = self.params
        raw = (log_params - p.log_params_low) / (
            p.log_params_high - p.log_params_low
        )
        return min(1.0, max(0.0, raw))

    def _shape_adjustment(self, config: Mapping) -> float:
        """Architecture-shape error offset (fractions of the capacity span).

        Kernel-size and pooling preferences that are *not* aligned with
        network size, so iso-error configurations span a wide power range.
        """
        span = self.dataset.capacity_error_span
        offset = 0.0
        # Larger convolution kernels help (bigger receptive field), slightly.
        for name in ("conv1_kernel", "conv2_kernel", "conv3_kernel"):
            if name in config:
                offset += 0.05 * span * (5 - float(config[name])) / 3.0
        # Moderate pooling beats none (translation invariance) and beats
        # aggressive early downsampling.
        for name in ("pool1_kernel", "pool2_kernel", "pool3_kernel"):
            if name in config:
                offset += 0.08 * span * (float(config[name]) - 2.0) ** 2 / 1.0
        return offset

    def structural_error(self, config: Mapping) -> float:
        """Solver-independent achievable error of the architecture."""
        p = self.params
        dataset = self.dataset
        capacity = self.capacity(config)
        base = dataset.floor_error + dataset.capacity_error_span * (
            (1.0 - capacity) ** p.capacity_exponent
        )
        base += self._shape_adjustment(config)
        jitter = self._config_rng(config).normal(0.0, p.jitter_rel)
        base *= math.exp(jitter)
        return float(
            min(dataset.chance_error, max(dataset.floor_error * 0.9, base))
        )

    def effective_step(self, config: Mapping) -> float:
        """``lr / (1 - momentum)``, the quantity that drives (in)stability."""
        lr = float(config["learning_rate"])
        momentum = float(config.get("momentum", 0.0))
        if not (0.0 <= momentum < 1.0):
            raise ValueError(f"momentum {momentum} outside [0, 1)")
        return lr / (1.0 - momentum)

    def step_optimum(self, config: Mapping) -> float:
        """The configuration's optimal effective step size."""
        p = self.params
        capacity = self.capacity(config)
        # Bigger networks want smaller steps.
        return p.step_optimum * 10.0 ** (-p.step_capacity_shift * (capacity - 0.5))

    def divergence_threshold(self, config: Mapping) -> float:
        """Effective step size beyond which this configuration diverges."""
        p = self.params
        capacity = self.capacity(config)
        rng = self._config_rng(config)
        rng.normal()  # skip the draw used by structural_error's jitter
        jitter_dex = rng.normal(0.0, p.divergence_jitter_dex)
        # Bigger networks are slightly more fragile.
        shift = -0.12 * (capacity - 0.5)
        return p.divergence_step * 10.0 ** (shift + jitter_dex)

    def diverges(self, config: Mapping) -> bool:
        """Whether training this configuration diverges."""
        return self.effective_step(config) > self.divergence_threshold(config)

    # -- full evaluation ---------------------------------------------------------

    def evaluate(self, config: Mapping) -> SurfaceEvaluation:
        """Ground-truth training outcome of ``config``."""
        p = self.params
        dataset = self.dataset
        structural = self.structural_error(config)
        step = self.effective_step(config)
        opt = self.step_optimum(config)
        threshold = self.divergence_threshold(config)
        diverges = step > threshold

        # Quadratic (in decades) solver penalty around the optimum.
        d = math.log10(step / opt)
        if d < 0:
            multiplier = 1.0 + p.step_penalty_low * d * d
        else:
            multiplier = 1.0 + p.step_penalty_high * d * d

        # Weight-decay mismatch (CIFAR-10 only).
        if p.weight_decay_optimum is not None and "weight_decay" in config:
            dwd = math.log10(float(config["weight_decay"]) / p.weight_decay_optimum)
            multiplier += p.weight_decay_penalty * dwd * dwd

        error = structural * multiplier

        # Near-divergence instability: error ramps toward chance as the
        # step approaches the divergence threshold from below.
        margin = math.log10(step / threshold)
        ramp = _sigmoid((margin + 0.05) / p.instability_width_dex)
        error = error + (dataset.chance_error - error) * 0.85 * ramp

        error = min(dataset.chance_error, max(dataset.floor_error * 0.9, error))

        # Convergence speed: small steps converge slowly.
        ratio = max(1e-6, opt / step)
        tau = p.tau_epochs * min(6.0, max(0.6, ratio**0.6))

        return SurfaceEvaluation(
            final_error=float(error),
            diverges=diverges,
            structural_error=structural,
            effective_step=step,
            step_optimum=opt,
            tau_epochs=float(tau),
            capacity=self.capacity(config),
        )
