"""Training substrate: datasets, error surface, learning curves, trainer."""

from .dataset import CIFAR10, DATASETS, IMAGENET, MNIST, DatasetSpec, get_dataset
from .dynamics import LearningCurveModel
from .surface import (
    CIFAR10_SURFACE_PARAMS,
    IMAGENET_SURFACE_PARAMS,
    MNIST_SURFACE_PARAMS,
    ErrorSurface,
    SurfaceEvaluation,
    SurfaceParams,
)
from .trainer import TrainingResult, TrainingSimulator

__all__ = [
    "DatasetSpec",
    "MNIST",
    "CIFAR10",
    "IMAGENET",
    "DATASETS",
    "get_dataset",
    "ErrorSurface",
    "SurfaceParams",
    "SurfaceEvaluation",
    "MNIST_SURFACE_PARAMS",
    "CIFAR10_SURFACE_PARAMS",
    "IMAGENET_SURFACE_PARAMS",
    "LearningCurveModel",
    "TrainingResult",
    "TrainingSimulator",
]
