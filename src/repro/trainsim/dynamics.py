"""Learning-curve generation on top of the error surface.

Given a ground-truth :class:`~repro.trainsim.surface.SurfaceEvaluation`,
produce the sequence of per-epoch *observed* test errors a practitioner
would see while the job trains:

* converging runs decay exponentially from chance level to the final error
  with the configuration's time constant — slow for too-small steps, fast
  near the optimum;
* diverging runs never leave the chance plateau (they wobble around it and
  drift slightly up), which is exactly the signature the paper's early
  termination detects "only after a few training epochs" (Figure 3 right);
* every epoch reading carries multiplicative observation noise, and every
  *run* carries a systematic offset (initialisation/data-order luck), so
  re-training the same configuration gives a slightly different curve.
"""

from __future__ import annotations

import numpy as np

from .dataset import DatasetSpec
from .surface import SurfaceEvaluation

__all__ = ["LearningCurveModel"]


class LearningCurveModel:
    """Stochastic per-epoch test-error curves for one benchmark."""

    def __init__(
        self,
        dataset: DatasetSpec,
        observation_noise_rel: float = 0.02,
        run_offset_rel: float = 0.03,
    ):
        if observation_noise_rel < 0 or run_offset_rel < 0:
            raise ValueError("noise levels must be non-negative")
        self.dataset = dataset
        self.observation_noise_rel = observation_noise_rel
        self.run_offset_rel = run_offset_rel

    def curve(
        self,
        evaluation: SurfaceEvaluation,
        epochs: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Observed test error after each of ``epochs`` training epochs."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        chance = self.dataset.chance_error
        floor = self.dataset.floor_error
        epoch_axis = np.arange(1, epochs + 1, dtype=float)

        if evaluation.diverges:
            # Stuck at chance with a slight upward drift and wobble.
            drift = 1.0 + 0.03 * (1.0 - np.exp(-epoch_axis / 3.0))
            ideal = np.minimum(0.97, chance * drift)
        else:
            # One systematic offset per run: the final level this particular
            # run converges to.
            level = evaluation.final_error * np.exp(
                rng.normal(0.0, self.run_offset_rel)
            )
            level = min(chance, max(floor * 0.8, level))
            start = chance * np.exp(rng.normal(0.0, 0.02))
            ideal = level + (start - level) * np.exp(
                -epoch_axis / evaluation.tau_epochs
            )

        noise = np.exp(
            rng.normal(0.0, self.observation_noise_rel, size=epochs)
        )
        observed = np.clip(ideal * noise, floor * 0.7, 0.99)
        return observed
