"""Dataset specifications for the two benchmarks (paper Section 4).

A :class:`DatasetSpec` carries everything the training simulator needs to
know about a benchmark: tensor geometry, corpus sizes, the chance error
level a diverged network hovers at, the training schedule length, and the
two anchor points of the achievable-error range observed in the paper's
result tables (best-case around 0.8% on MNIST and around 21% on CIFAR-10,
Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetSpec", "MNIST", "CIFAR10", "IMAGENET", "get_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of one image-classification benchmark."""

    #: Canonical lowercase name (``'mnist'`` / ``'cifar10'``).
    name: str
    #: Per-sample input shape, ``(C, H, W)``.
    input_shape: tuple[int, int, int]
    #: Number of target classes.
    num_classes: int
    #: Training-set size (images per epoch).
    train_images: int
    #: Held-out test-set size.
    test_images: int
    #: Error rate of a random guesser / diverged network.
    chance_error: float
    #: Test error of the best configuration in the design space —
    #: the floor the error surface asymptotes to.
    floor_error: float
    #: Spread of achievable final errors above the floor across the
    #: structural design space (before solver-quality penalties).
    capacity_error_span: float
    #: Epochs of the full (non-terminated) training schedule.
    default_epochs: int
    #: Mini-batch size used for training.
    train_batch: int

    def __post_init__(self) -> None:
        if not (0.0 < self.floor_error < self.chance_error <= 1.0):
            raise ValueError(
                f"{self.name}: need 0 < floor < chance <= 1, got "
                f"floor={self.floor_error}, chance={self.chance_error}"
            )
        if self.capacity_error_span <= 0:
            raise ValueError(f"{self.name}: capacity span must be positive")
        if self.train_images < 1 or self.test_images < 1:
            raise ValueError(f"{self.name}: corpus sizes must be positive")
        if self.default_epochs < 1:
            raise ValueError(f"{self.name}: need at least one epoch")
        if self.train_batch < 1:
            raise ValueError(f"{self.name}: batch must be positive")

    @property
    def batches_per_epoch(self) -> int:
        """Mini-batches per training epoch (ceil division)."""
        return -(-self.train_images // self.train_batch)


MNIST = DatasetSpec(
    name="mnist",
    input_shape=(1, 28, 28),
    num_classes=10,
    train_images=60_000,
    test_images=10_000,
    chance_error=0.90,
    floor_error=0.0078,
    capacity_error_span=0.015,
    default_epochs=30,
    train_batch=128,
)

CIFAR10 = DatasetSpec(
    name="cifar10",
    input_shape=(3, 32, 32),
    num_classes=10,
    train_images=50_000,
    test_images=10_000,
    chance_error=0.90,
    floor_error=0.212,
    capacity_error_span=0.08,
    default_epochs=50,
    train_batch=128,
)

IMAGENET = DatasetSpec(
    name="imagenet",
    input_shape=(3, 224, 224),
    num_classes=1000,
    train_images=1_281_167,
    test_images=50_000,
    chance_error=0.999,
    floor_error=0.425,
    capacity_error_span=0.12,
    default_epochs=60,
    train_batch=256,
)

#: Registry by canonical name.  ImageNet is the paper's stated future work
#: ("we are currently considering larger networks on the state-of-the-art
#: ImageNet dataset"); this reproduction ships it as a working extension.
DATASETS = {"mnist": MNIST, "cifar10": CIFAR10, "imagenet": IMAGENET}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a benchmark by name (``'mnist'`` or ``'cifar10'``)."""
    try:
        return DATASETS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from None
