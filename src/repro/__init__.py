"""repro — a reproduction of *HyperPower: Power- and Memory-Constrained
Hyper-Parameter Optimization for Neural Networks* (Stamoulis et al.,
DATE 2018).

The package layers:

* :mod:`repro.space` — hyper-parameter design spaces (the paper's MNIST
  and CIFAR-10 AlexNet-variant spaces);
* :mod:`repro.nn` — the CNN substrate (layers, topologies, analytic cost
  metrics);
* :mod:`repro.hwsim` — the GPU platforms (GTX 1070, Tegra TX1) with
  power/memory simulation and NVML-style measurement;
* :mod:`repro.trainsim` — the training substrate (error surface, learning
  curves, wall-clock costs);
* :mod:`repro.gp` — Gaussian-process regression (the Spearmint analog);
* :mod:`repro.models` — the paper's linear power/memory predictors with
  profiling campaigns and 10-fold CV;
* :mod:`repro.core` — the HyperPower framework itself: constraint-aware
  acquisitions (HW-IECI, HW-CWEI), hardware-aware random search and random
  walk, early termination, and the optimization driver;
* :mod:`repro.experiments` — harnesses regenerating every table and figure
  of the paper's evaluation.

Quick start::

    from repro import quick_setup

    setup = quick_setup("mnist", "gtx1070", power_budget_w=85.0, seed=0)
    result = setup.run("HW-IECI", "hyperpower", max_evaluations=10)
    print(result.best_feasible_error)
"""

from .core import (
    SOLVERS,
    VARIANTS,
    ConstraintSpec,
    HyperPower,
    RunResult,
    build_method,
)
from .experiments.setup import ExperimentSetup, quick_setup
from .space import cifar10_space, mnist_space

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "mnist_space",
    "cifar10_space",
    "ConstraintSpec",
    "HyperPower",
    "RunResult",
    "build_method",
    "SOLVERS",
    "VARIANTS",
    "ExperimentSetup",
    "quick_setup",
]
