"""The hyper-parameter design space ``X`` (paper Section 3).

:class:`SearchSpace` bundles an ordered list of :class:`~repro.space.params.
Parameter` objects and provides the operations every search method in the
framework needs:

* uniform sampling of configurations (``Rand``, initial BO design, offline
  profiling campaigns of Section 3.3),
* a bijection between configuration dictionaries and points in the unit
  hyper-cube (the representation used by the Gaussian process and by the
  random-walk proposal distribution),
* extraction of the *structural* sub-vector ``z`` that feeds the power and
  memory models of Equations 1-2.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

import numpy as np

from .params import Parameter, param_from_dict

__all__ = ["SearchSpace", "Configuration"]

#: A configuration is a plain mapping from parameter name to native value.
Configuration = dict


class SearchSpace:
    """An ordered collection of named hyper-parameters."""

    def __init__(self, parameters: Iterable[Parameter]):
        self._params: list[Parameter] = list(parameters)
        if not self._params:
            raise ValueError("search space needs at least one parameter")
        names = [p.name for p in self._params]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate parameter names in {names}")
        self._by_name = {p.name: p for p in self._params}

    # -- basic introspection -------------------------------------------------

    @property
    def parameters(self) -> tuple[Parameter, ...]:
        """The parameters, in definition order."""
        return tuple(self._params)

    @property
    def names(self) -> tuple[str, ...]:
        """Parameter names, in definition order."""
        return tuple(p.name for p in self._params)

    @property
    def dimension(self) -> int:
        """Number of axes in the space (``len(x)``)."""
        return len(self._params)

    @property
    def structural_names(self) -> tuple[str, ...]:
        """Names of the structural parameters forming ``z`` (Section 3.3)."""
        return tuple(p.name for p in self._params if p.structural)

    @property
    def structural_dimension(self) -> int:
        """``J``, the length of the structural vector ``z``."""
        return len(self.structural_names)

    def __len__(self) -> int:
        return self.dimension

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Parameter:
        return self._by_name[name]

    def __repr__(self) -> str:
        inner = ", ".join(p.name for p in self._params)
        return f"SearchSpace({inner})"

    # -- validation ----------------------------------------------------------

    def validate(self, config: Mapping) -> None:
        """Raise ``ValueError`` unless ``config`` is a complete, in-range point."""
        missing = set(self.names) - set(config)
        if missing:
            raise ValueError(f"configuration missing parameters {sorted(missing)}")
        extra = set(config) - set(self.names)
        if extra:
            raise ValueError(f"configuration has unknown parameters {sorted(extra)}")
        for param in self._params:
            param.validate(config[param.name])

    def contains(self, config: Mapping) -> bool:
        """Whether ``config`` is a complete, in-range point of the space."""
        try:
            self.validate(config)
        except ValueError:
            return False
        return True

    def coerce(self, config: Mapping) -> Configuration:
        """Validate ``config`` and restore every value's native type.

        JSON transports (the run journal, the study service's HTTP wire)
        blur ``3`` and ``3.0``; coercion maps each value back through its
        parameter's declared type (int stays int, floats stay float) and
        orders keys in definition order, so the canonical configuration
        hash of a coerced round-tripped config never drifts from the
        original's.
        """
        self.validate(config)
        return {p.name: p.coerce(config[p.name]) for p in self._params}

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready description (round-trips through :meth:`from_dict`)."""
        return {"parameters": [p.to_dict() for p in self._params]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SearchSpace":
        """Rebuild a space from its :meth:`to_dict` form."""
        try:
            params = data["parameters"]
        except KeyError:
            raise ValueError("space description missing 'parameters'") from None
        return cls(param_from_dict(p) for p in params)

    # -- sampling ------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Configuration:
        """Draw one configuration uniformly at random."""
        return {p.name: p.sample(rng) for p in self._params}

    def sample_many(self, n: int, rng: np.random.Generator) -> list[Configuration]:
        """Draw ``n`` independent uniform configurations."""
        return [self.sample(rng) for _ in range(n)]

    def sample_lhs(self, n: int, rng: np.random.Generator) -> list[Configuration]:
        """Draw ``n`` configurations by Latin-hypercube sampling.

        Each axis is split into ``n`` equal unit-interval strata with one
        point per stratum, shuffled independently per axis — better
        space-filling than i.i.d. sampling for the offline profiling
        campaigns the predictive models are trained on.
        """
        if n < 1:
            raise ValueError("need at least one sample")
        columns = []
        for _ in range(self.dimension):
            strata = (np.arange(n) + rng.uniform(size=n)) / n
            rng.shuffle(strata)
            columns.append(strata)
        grid = np.column_stack(columns)
        return [self.decode(row) for row in grid]

    # -- unit-cube encoding --------------------------------------------------

    def encode(self, config: Mapping) -> np.ndarray:
        """Map a configuration to a point in the unit hyper-cube."""
        self.validate(config)
        return np.array(
            [p.to_unit(config[p.name]) for p in self._params], dtype=float
        )

    def decode(self, u: Sequence[float]) -> Configuration:
        """Map a unit-cube point back to a configuration.

        Coordinates outside ``[0, 1]`` are clipped, so any real vector of the
        right length decodes to a valid configuration.
        """
        u = np.asarray(u, dtype=float)
        if u.shape != (self.dimension,):
            raise ValueError(
                f"expected a vector of length {self.dimension}, got shape {u.shape}"
            )
        return {p.name: p.from_unit(ui) for p, ui in zip(self._params, u)}

    def encode_many(self, configs: Iterable[Mapping]) -> np.ndarray:
        """Stack the encodings of several configurations into an ``(n, d)`` array."""
        rows = [self.encode(c) for c in configs]
        if not rows:
            return np.empty((0, self.dimension))
        return np.vstack(rows)

    # -- structural sub-vector -----------------------------------------------

    def structural_vector(self, config: Mapping) -> np.ndarray:
        """Extract ``z``, the structural hyper-parameters of ``config``.

        This is the input to the power and memory models (Equations 1-2);
        solver parameters such as the learning rate are dropped because they
        do not affect the compiled network's power or memory (Section 3.3).
        """
        self.validate(config)
        return np.array(
            [float(config[name]) for name in self.structural_names], dtype=float
        )

    def structural_matrix(
        self, configs: Iterable[Mapping], validate: bool = True
    ) -> np.ndarray:
        """Stack structural vectors into an ``(n, J)`` design matrix.

        ``validate=False`` skips the per-config range check — safe (and
        much faster) when the configurations were produced by this space's
        own ``sample``/``neighbor``/grid machinery, which is how the batch
        screening path calls it.
        """
        names = self.structural_names
        if validate:
            rows = [self.structural_vector(c) for c in configs]
        else:
            rows = [
                [float(c[name]) for name in names] for c in configs
            ]
        if not rows:
            return np.empty((0, self.structural_dimension))
        return np.asarray(rows, dtype=float)

    # -- random-walk neighbourhood (Section 3.5, Rand-Walk) -------------------

    def neighbor(
        self,
        config: Mapping,
        sigma: float,
        rng: np.random.Generator,
    ) -> Configuration:
        """Draw ``x' ~ N(x, sigma^2 I)`` in unit-cube coordinates and decode.

        This implements the Rand-Walk proposal: a Gaussian "neighbourhood"
        around the incumbent ``x+`` whose size is controlled by ``sigma``
        (the paper's ``sigma_0``).
        """
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        center = self.encode(config)
        proposal = center + rng.normal(0.0, sigma, size=self.dimension)
        return self.decode(proposal)
