"""The two hyper-parameter spaces evaluated in the paper (Section 4).

The paper tunes AlexNet-family variants "for MNIST and CIFAR-10, with six
and thirteen hyper-parameters respectively", with the ranges:

* convolution layers — number of features in ``[20, 80]``, kernel size in
  ``[2, 5]``;
* pooling layers — kernel size in ``[1, 3]``;
* fully-connected layers — number of units in ``[200, 700]``;
* learning rate in ``[0.001, 0.1]``, momentum in ``[0.8, 0.95]``, weight
  decay in ``[0.0001, 0.01]``.

The exact per-network assignment of those ranges is not spelled out in the
paper, so we use the natural AlexNet-for-MNIST (two conv blocks, one hidden
FC) and AlexNet-for-CIFAR-10 (three conv blocks, one hidden FC) splits that
yield exactly six and thirteen tunables.
"""

from __future__ import annotations

from .params import ContinuousParameter, IntegerParameter
from .space import SearchSpace

__all__ = [
    "CONV_FEATURES_RANGE",
    "CONV_KERNEL_RANGE",
    "POOL_KERNEL_RANGE",
    "FC_UNITS_RANGE",
    "LEARNING_RATE_RANGE",
    "MOMENTUM_RANGE",
    "WEIGHT_DECAY_RANGE",
    "mnist_space",
    "cifar10_space",
    "imagenet_space",
]

#: Section 4 ranges, shared by both spaces.
CONV_FEATURES_RANGE = (20, 80)
CONV_KERNEL_RANGE = (2, 5)
POOL_KERNEL_RANGE = (1, 3)
FC_UNITS_RANGE = (200, 700)
LEARNING_RATE_RANGE = (0.001, 0.1)
MOMENTUM_RANGE = (0.8, 0.95)
WEIGHT_DECAY_RANGE = (0.0001, 0.01)


def mnist_space() -> SearchSpace:
    """Six-hyper-parameter space for the MNIST AlexNet variant.

    Four structural parameters (two conv feature counts, first conv kernel
    size, hidden FC width) plus learning rate and momentum.
    """
    return SearchSpace(
        [
            IntegerParameter("conv1_features", *CONV_FEATURES_RANGE),
            IntegerParameter("conv1_kernel", *CONV_KERNEL_RANGE),
            IntegerParameter("conv2_features", *CONV_FEATURES_RANGE),
            IntegerParameter("fc1_units", *FC_UNITS_RANGE),
            ContinuousParameter("learning_rate", *LEARNING_RATE_RANGE, log=True),
            ContinuousParameter("momentum", *MOMENTUM_RANGE),
        ]
    )


def imagenet_space() -> SearchSpace:
    """Ten-hyper-parameter space for the full ImageNet AlexNet.

    The paper's stated future work ("larger networks on the
    state-of-the-art ImageNet dataset").  The five convolution feature
    counts and the two hidden FC widths are tuned over +-50% windows
    around Krizhevsky's AlexNet values (96/256/384/384/256 features,
    4096-unit FCs); kernels, strides and pooling stay at the classic
    topology.  Learning rate, momentum and weight decay use the paper's
    solver ranges, with AlexNet's 0.0005 decay inside the window.
    """
    return SearchSpace(
        [
            IntegerParameter("conv1_features", 48, 144),
            IntegerParameter("conv2_features", 128, 384),
            IntegerParameter("conv3_features", 192, 576),
            IntegerParameter("conv4_features", 192, 576),
            IntegerParameter("conv5_features", 128, 384),
            IntegerParameter("fc6_units", 2048, 6144),
            IntegerParameter("fc7_units", 2048, 6144),
            ContinuousParameter("learning_rate", *LEARNING_RATE_RANGE, log=True),
            ContinuousParameter("momentum", *MOMENTUM_RANGE),
            ContinuousParameter("weight_decay", *WEIGHT_DECAY_RANGE, log=True),
        ]
    )


def cifar10_space() -> SearchSpace:
    """Thirteen-hyper-parameter space for the CIFAR-10 AlexNet variant.

    Ten structural parameters (three conv blocks with feature count and
    kernel size, three pooling kernel sizes, hidden FC width) plus learning
    rate, momentum and weight decay.
    """
    return SearchSpace(
        [
            IntegerParameter("conv1_features", *CONV_FEATURES_RANGE),
            IntegerParameter("conv1_kernel", *CONV_KERNEL_RANGE),
            IntegerParameter("pool1_kernel", *POOL_KERNEL_RANGE),
            IntegerParameter("conv2_features", *CONV_FEATURES_RANGE),
            IntegerParameter("conv2_kernel", *CONV_KERNEL_RANGE),
            IntegerParameter("pool2_kernel", *POOL_KERNEL_RANGE),
            IntegerParameter("conv3_features", *CONV_FEATURES_RANGE),
            IntegerParameter("conv3_kernel", *CONV_KERNEL_RANGE),
            IntegerParameter("pool3_kernel", *POOL_KERNEL_RANGE),
            IntegerParameter("fc1_units", *FC_UNITS_RANGE),
            ContinuousParameter("learning_rate", *LEARNING_RATE_RANGE, log=True),
            ContinuousParameter("momentum", *MOMENTUM_RANGE),
            ContinuousParameter("weight_decay", *WEIGHT_DECAY_RANGE, log=True),
        ]
    )
