"""Hyper-parameter definitions.

A :class:`Parameter` describes one axis of the hyper-parameter design space
``X`` from Section 3 of the paper.  Two concrete kinds are needed for the
AlexNet-variant spaces of Section 4:

* :class:`IntegerParameter` — discrete *structural* hyper-parameters such as
  the number of convolution features or a kernel size.  These form the
  vector ``z`` used by the power and memory models (Equations 1-2).
* :class:`ContinuousParameter` — real-valued *solver* hyper-parameters such
  as the learning rate, momentum and weight decay, which have "negligible
  impact" on power/memory (Section 3.3) and are therefore excluded from
  ``z``.

Every parameter knows how to map between its native range and the unit
interval ``[0, 1]``.  The unit-cube representation is what the Gaussian
process and the random-walk neighbourhood operate on, so that length scales
are comparable across axes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "Parameter",
    "IntegerParameter",
    "ContinuousParameter",
    "param_from_dict",
]


class Parameter(ABC):
    """One axis of a hyper-parameter search space."""

    #: Parameter name, unique within a :class:`~repro.space.space.SearchSpace`.
    name: str

    #: Whether this parameter is structural, i.e. part of the vector ``z``
    #: that the power/memory models are trained on (Section 3.3).
    structural: bool

    @abstractmethod
    def sample(self, rng: np.random.Generator):
        """Draw one value uniformly from the parameter's native range."""

    @abstractmethod
    def to_unit(self, value) -> float:
        """Map a native value to the unit interval ``[0, 1]``."""

    @abstractmethod
    def from_unit(self, u: float):
        """Map a unit-interval coordinate back to a native value.

        Values outside ``[0, 1]`` are clipped first, so the result is always
        a valid native value; this is what keeps random-walk proposals inside
        the design space.
        """

    @abstractmethod
    def contains(self, value) -> bool:
        """Whether ``value`` lies in the parameter's native range."""

    @abstractmethod
    def grid(self, resolution: int) -> list:
        """Representative native values spanning the range, low to high."""

    def validate(self, value) -> None:
        """Raise ``ValueError`` when ``value`` is outside the native range."""
        if not self.contains(value):
            raise ValueError(
                f"value {value!r} out of range for parameter {self.name!r}"
            )

    @abstractmethod
    def coerce(self, value):
        """Validate ``value`` and return it with the native Python type.

        JSON transports (the run journal, the study service's HTTP wire)
        do not distinguish ``3`` from ``3.0``; coercion restores the
        parameter's declared type so canonical configuration hashes —
        which serialise ``3`` and ``3.0`` differently — never drift
        across a round-trip.
        """

    @abstractmethod
    def to_dict(self) -> dict:
        """JSON-ready description (round-trips through
        :func:`param_from_dict`)."""


@dataclass(frozen=True)
class IntegerParameter(Parameter):
    """Uniform integer parameter on the inclusive range ``[low, high]``."""

    name: str
    low: int
    high: int
    structural: bool = True

    def __post_init__(self) -> None:
        if int(self.low) != self.low or int(self.high) != self.high:
            raise ValueError(f"{self.name}: integer bounds required")
        if self.low > self.high:
            raise ValueError(f"{self.name}: low {self.low} > high {self.high}")

    @property
    def n_values(self) -> int:
        """Number of distinct integer values in the range."""
        return self.high - self.low + 1

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.integers(self.low, self.high + 1))

    def to_unit(self, value) -> float:
        self.validate(value)
        if self.high == self.low:
            return 0.5
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = min(max(float(u), 0.0), 1.0)
        # Round to the nearest integer so every native value owns an equal
        # slice of the unit interval.
        value = self.low + u * (self.high - self.low)
        return int(min(self.high, max(self.low, round(value))))

    def contains(self, value) -> bool:
        try:
            as_int = int(value)
        except (TypeError, ValueError):
            return False
        return as_int == value and self.low <= as_int <= self.high

    def grid(self, resolution: int) -> list[int]:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        if resolution >= self.n_values:
            return list(range(self.low, self.high + 1))
        points = np.linspace(self.low, self.high, resolution)
        return sorted({int(round(p)) for p in points})

    def coerce(self, value) -> int:
        self.validate(value)
        return int(value)

    def to_dict(self) -> dict:
        return {
            "kind": "integer",
            "name": self.name,
            "low": int(self.low),
            "high": int(self.high),
            "structural": self.structural,
        }


@dataclass(frozen=True)
class ContinuousParameter(Parameter):
    """Real-valued parameter on ``[low, high]``, optionally log-scaled.

    With ``log=True`` the unit-interval mapping (and uniform sampling) is
    performed in log space, which is the conventional treatment for learning
    rates and weight decays whose useful values span orders of magnitude.
    """

    name: str
    low: float
    high: float
    log: bool = False
    structural: bool = False

    def __post_init__(self) -> None:
        if not (self.low < self.high):
            raise ValueError(f"{self.name}: need low < high")
        if self.log and self.low <= 0:
            raise ValueError(f"{self.name}: log scale requires low > 0")

    def _fwd(self, value: float) -> float:
        return math.log(value) if self.log else float(value)

    def _inv(self, t: float) -> float:
        return math.exp(t) if self.log else float(t)

    def sample(self, rng: np.random.Generator) -> float:
        lo, hi = self._fwd(self.low), self._fwd(self.high)
        return self._inv(rng.uniform(lo, hi))

    def to_unit(self, value) -> float:
        self.validate(value)
        lo, hi = self._fwd(self.low), self._fwd(self.high)
        return (self._fwd(float(value)) - lo) / (hi - lo)

    def from_unit(self, u: float) -> float:
        u = min(max(float(u), 0.0), 1.0)
        lo, hi = self._fwd(self.low), self._fwd(self.high)
        value = self._inv(lo + u * (hi - lo))
        return float(min(self.high, max(self.low, value)))

    def contains(self, value) -> bool:
        try:
            as_float = float(value)
        except (TypeError, ValueError):
            return False
        return self.low <= as_float <= self.high

    def grid(self, resolution: int) -> list[float]:
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        if resolution == 1:
            return [self.from_unit(0.5)]
        return [self.from_unit(u) for u in np.linspace(0.0, 1.0, resolution)]

    def coerce(self, value) -> float:
        self.validate(value)
        return float(value)

    def to_dict(self) -> dict:
        return {
            "kind": "continuous",
            "name": self.name,
            "low": float(self.low),
            "high": float(self.high),
            "log": self.log,
            "structural": self.structural,
        }


_PARAM_KINDS = {"integer": IntegerParameter, "continuous": ContinuousParameter}


def param_from_dict(data: dict) -> Parameter:
    """Rebuild a parameter from its :meth:`Parameter.to_dict` form."""
    try:
        kind = data["kind"]
    except KeyError:
        raise ValueError("parameter description missing 'kind'") from None
    try:
        cls = _PARAM_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown parameter kind {kind!r}; expected one of "
            f"{sorted(_PARAM_KINDS)}"
        ) from None
    kwargs = {k: v for k, v in data.items() if k != "kind"}
    return cls(**kwargs)
