"""Hyper-parameter design-space substrate (paper Sections 3-4)."""

from .params import ContinuousParameter, IntegerParameter, Parameter
from .presets import cifar10_space, imagenet_space, mnist_space
from .space import Configuration, SearchSpace

__all__ = [
    "Parameter",
    "IntegerParameter",
    "ContinuousParameter",
    "SearchSpace",
    "Configuration",
    "mnist_space",
    "cifar10_space",
    "imagenet_space",
]
