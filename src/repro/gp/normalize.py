"""Target standardisation for GP regression.

The GP operates on zero-mean, unit-variance targets; this helper owns the
forward/backward transform so posterior means and variances come back in
the original units.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Standardizer"]


class Standardizer:
    """Affine map ``y -> (y - mean) / std`` fitted on training targets."""

    def __init__(self) -> None:
        self.mean_ = 0.0
        self.std_ = 1.0
        self._fitted = False

    @classmethod
    def identity(cls) -> "Standardizer":
        """A fitted no-op transform (``mean 0, std 1``) for callers that
        want targets passed through unchanged."""
        out = cls()
        out._fitted = True
        return out

    def fit(self, y: np.ndarray) -> "Standardizer":
        """Estimate the transform from targets ``y``."""
        y = np.asarray(y, dtype=float)
        if y.ndim != 1 or y.size == 0:
            raise ValueError("y must be a non-empty 1-D array")
        self.mean_ = float(np.mean(y))
        std = float(np.std(y))
        # A constant target vector would make the transform degenerate.
        self.std_ = std if std > 1e-12 else 1.0
        self._fitted = True
        return self

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("Standardizer used before fit()")

    def transform(self, y: np.ndarray) -> np.ndarray:
        """Map targets to standardised space."""
        self._require_fitted()
        return (np.asarray(y, dtype=float) - self.mean_) / self.std_

    def inverse_mean(self, y_std: np.ndarray) -> np.ndarray:
        """Map standardised means back to original units."""
        self._require_fitted()
        return np.asarray(y_std, dtype=float) * self.std_ + self.mean_

    def inverse_variance(self, var_std: np.ndarray) -> np.ndarray:
        """Map standardised variances back to original units."""
        self._require_fitted()
        return np.asarray(var_std, dtype=float) * self.std_**2
