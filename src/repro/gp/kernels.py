"""Covariance kernels for Gaussian-process regression.

The paper's tool (Spearmint [4]) models the objective with a Gaussian
process; its default covariance is the ARD Matérn-5/2, which we implement
along with the squared-exponential (RBF) alternative.

Kernels expose their hyper-parameters as a flat log-space vector ``theta``
(signal variance first, then one length scale per input dimension), which
is what the marginal-likelihood optimiser in :mod:`repro.gp.gp` tunes.
Inputs are expected in the unit hyper-cube (see
:meth:`repro.space.SearchSpace.encode`), so length scales of order one are
sensible defaults.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["Kernel", "Matern52", "RBF"]


def _validate_inputs(X1: np.ndarray, X2: np.ndarray, dim: int) -> None:
    if X1.ndim != 2 or X2.ndim != 2:
        raise ValueError("kernel inputs must be 2-D arrays")
    if X1.shape[1] != dim or X2.shape[1] != dim:
        raise ValueError(
            f"kernel is {dim}-dimensional, got inputs with "
            f"{X1.shape[1]} and {X2.shape[1]} columns"
        )


class Kernel(ABC):
    """A stationary covariance function with ARD length scales."""

    def __init__(self, input_dim: int, variance: float, lengthscales):
        if input_dim < 1:
            raise ValueError("input_dim must be >= 1")
        if variance <= 0:
            raise ValueError("variance must be positive")
        scales = np.asarray(lengthscales, dtype=float)
        if scales.ndim == 0:
            scales = np.full(input_dim, float(scales))
        if scales.shape != (input_dim,):
            raise ValueError(
                f"need {input_dim} length scales, got shape {scales.shape}"
            )
        if np.any(scales <= 0):
            raise ValueError("length scales must be positive")
        self.input_dim = input_dim
        self.variance = float(variance)
        self.lengthscales = scales

    # -- hyper-parameter vector (log space) ------------------------------------

    @property
    def n_params(self) -> int:
        """Size of the flat hyper-parameter vector."""
        return 1 + self.input_dim

    def get_theta(self) -> np.ndarray:
        """Hyper-parameters as ``[log variance, log lengthscales...]``."""
        return np.concatenate(
            ([np.log(self.variance)], np.log(self.lengthscales))
        )

    def set_theta(self, theta: np.ndarray) -> None:
        """Set hyper-parameters from a log-space vector."""
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_params,):
            raise ValueError(
                f"expected {self.n_params} parameters, got shape {theta.shape}"
            )
        self.variance = float(np.exp(theta[0]))
        self.lengthscales = np.exp(theta[1:])

    def theta_bounds(self) -> list[tuple[float, float]]:
        """Log-space box bounds keeping the optimiser in a sane region."""
        variance_bounds = (np.log(1e-4), np.log(1e3))
        # Length scales between ~1% and ~30x the unit cube's edge.
        scale_bounds = (np.log(0.01), np.log(30.0))
        return [variance_bounds] + [scale_bounds] * self.input_dim

    # -- covariance --------------------------------------------------------------

    def _scaled_sqdist(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        """Pairwise squared distances after dividing by the length scales."""
        A = X1 / self.lengthscales
        B = X2 / self.lengthscales
        sq = (
            np.sum(A**2, axis=1)[:, None]
            + np.sum(B**2, axis=1)[None, :]
            - 2.0 * A @ B.T
        )
        return np.maximum(sq, 0.0)

    def _scaled_sqdist_per_dim(self, X: np.ndarray) -> np.ndarray:
        """``(d, n, n)`` per-dimension scaled squared distances.

        Entry ``[i, a, b]`` is ``((X[a,i] - X[b,i]) / lengthscale_i)^2`` —
        the pieces the length-scale derivatives of every stationary ARD
        kernel are built from.
        """
        A = X / self.lengthscales
        diff = A.T[:, :, None] - A.T[:, None, :]
        return diff**2

    @abstractmethod
    def __call__(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        """Covariance matrix between two point sets."""

    @abstractmethod
    def value_and_grad(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Gram matrix ``K(X, X)`` and its gradient w.r.t. ``theta``.

        Returns ``(K, dK)`` where ``dK`` has shape ``(n_params, n, n)``
        and ``dK[j]`` is the derivative of ``K`` w.r.t. the ``j``-th
        *log-space* hyper-parameter (the same parameterisation
        :meth:`get_theta`/:meth:`set_theta` use), so the marginal-likelihood
        optimiser can consume it directly.
        """

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Prior variances at each point (the matrix diagonal, cheaply)."""
        X = np.asarray(X, dtype=float)
        _validate_inputs(X, X, self.input_dim)
        return np.full(X.shape[0], self.variance)

    def spectral_weights(
        self, n_features: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``(n_features, input_dim)`` draws from the spectral density.

        Bochner's theorem: a stationary kernel is the Fourier transform of
        a probability measure, so ``k(x, x') ≈ (2 variance / m) Σ_j
        cos(ω_j·x + b_j) cos(ω_j·x' + b_j)`` with ``ω_j`` drawn from that
        measure and ``b_j ~ U(0, 2π)`` — the random-Fourier-feature map
        used by :class:`repro.gp.sparse.RandomFourierGP`.  Weights are for
        the *unit-length-scale* kernel; the feature map divides inputs by
        the ARD length scales, so the same draws serve every length-scale
        setting (which is what keeps hyper-parameter fits differentiable
        through a fixed feature basis).
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no spectral density sampler"
        )

    def copy(self) -> "Kernel":
        """An independent kernel with the same hyper-parameters."""
        return type(self)(
            self.input_dim, self.variance, self.lengthscales.copy()
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(dim={self.input_dim}, "
            f"variance={self.variance:.4g}, "
            f"lengthscales={np.array2string(self.lengthscales, precision=3)})"
        )


class Matern52(Kernel):
    """ARD Matérn-5/2 kernel — Spearmint's default for hyper-parameter
    surfaces (twice-differentiable, not implausibly smooth)."""

    def __init__(self, input_dim: int, variance: float = 1.0, lengthscales=0.3):
        super().__init__(input_dim, variance, lengthscales)

    def __call__(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        X1 = np.atleast_2d(np.asarray(X1, dtype=float))
        X2 = np.atleast_2d(np.asarray(X2, dtype=float))
        _validate_inputs(X1, X2, self.input_dim)
        r = np.sqrt(self._scaled_sqdist(X1, X2))
        sqrt5_r = np.sqrt(5.0) * r
        return (
            self.variance
            * (1.0 + sqrt5_r + (5.0 / 3.0) * r**2)
            * np.exp(-sqrt5_r)
        )

    def value_and_grad(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        _validate_inputs(X, X, self.input_dim)
        sq_dims = self._scaled_sqdist_per_dim(X)
        r = np.sqrt(np.sum(sq_dims, axis=0))
        sqrt5_r = np.sqrt(5.0) * r
        decay = np.exp(-sqrt5_r)
        K = self.variance * (1.0 + sqrt5_r + (5.0 / 3.0) * r**2) * decay
        dK = np.empty((self.n_params,) + K.shape)
        # d K / d log variance = K.
        dK[0] = K
        # d K / d r = -(5/3) variance * r * (1 + sqrt5 r) * decay and
        # d r / d log l_i = -sq_dims[i] / r; the 1/r cancels, so the
        # length-scale derivative is smooth through r = 0.
        scale_factor = (5.0 / 3.0) * self.variance * (1.0 + sqrt5_r) * decay
        dK[1:] = scale_factor[None, :, :] * sq_dims
        return K, dK

    def spectral_weights(
        self, n_features: int, rng: np.random.Generator
    ) -> np.ndarray:
        # The Matérn-ν spectral density is a multivariate Student-t with
        # 2ν degrees of freedom; for ν = 5/2 that is ω = z √(5 / u) with
        # z ~ N(0, I) and u ~ χ²_5.
        z = rng.standard_normal((n_features, self.input_dim))
        u = rng.chisquare(5.0, size=n_features)
        return z * np.sqrt(5.0 / u)[:, None]


class RBF(Kernel):
    """ARD squared-exponential kernel (infinitely smooth)."""

    def __init__(self, input_dim: int, variance: float = 1.0, lengthscales=0.3):
        super().__init__(input_dim, variance, lengthscales)

    def __call__(self, X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
        X1 = np.atleast_2d(np.asarray(X1, dtype=float))
        X2 = np.atleast_2d(np.asarray(X2, dtype=float))
        _validate_inputs(X1, X2, self.input_dim)
        return self.variance * np.exp(-0.5 * self._scaled_sqdist(X1, X2))

    def value_and_grad(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        _validate_inputs(X, X, self.input_dim)
        sq_dims = self._scaled_sqdist_per_dim(X)
        K = self.variance * np.exp(-0.5 * np.sum(sq_dims, axis=0))
        dK = np.empty((self.n_params,) + K.shape)
        dK[0] = K
        # d K / d log l_i = K * sq_dims[i].
        dK[1:] = K[None, :, :] * sq_dims
        return K, dK

    def spectral_weights(
        self, n_features: int, rng: np.random.Generator
    ) -> np.ndarray:
        # The RBF spectral density is a standard Gaussian.
        return rng.standard_normal((n_features, self.input_dim))
