"""Gaussian-process regression (paper Section 3.1).

Implements the surrogate model ``M``: a GP prior ``f | X ~ N(m, K)`` with
noisy observations ``y | f, sigma^2 ~ N(f, sigma^2 I)``, refined by exact
Bayesian posterior updating after each new observation.  Hyper-parameters
(kernel variance, ARD length scales, noise variance) are point-estimated by
maximising the log marginal likelihood with multi-restart L-BFGS-B, the
standard Spearmint-style treatment.

Two hot-path optimisations keep the surrogate cheap inside the
optimization loop:

* the marginal-likelihood optimiser consumes **analytic gradients**
  (a fused value-and-gradient objective built from the kernels'
  ``dK/dtheta``), so each L-BFGS-B step costs one Cholesky factorisation
  instead of the ``p + 1`` factorisations of finite differencing;
* :meth:`GaussianProcess.append` conditions on a new observation with the
  hyper-parameters held fixed via a **rank-1 Cholesky update** —
  ``O(n^2)`` instead of the ``O(n^3)`` full refactorisation, with the
  posterior agreeing with a from-scratch recompute to tight tolerance.

Inputs are expected in the unit hyper-cube; targets are standardised
internally and predictions returned in original units.
"""

from __future__ import annotations

import logging
from contextlib import nullcontext

import numpy as np
from scipy import linalg, optimize

from .kernels import Kernel, Matern52
from .normalize import Standardizer
from .profile import SurrogateProfile

__all__ = ["GaussianProcess", "NonFiniteObservationError"]

_log = logging.getLogger(__name__)


class NonFiniteObservationError(ValueError):
    """Raised when a non-finite target would be conditioned on.

    Mirrors :meth:`repro.core.parallel.TrialCache.put`'s rejection of
    non-finite errors: a NaN/inf target silently corrupts the Cholesky
    factor (every subsequent prediction becomes NaN), so the surrogate
    refuses it at the door with a typed error the caller can handle.
    """

#: Diagonal jitter added to keep Cholesky factorisations stable.
_JITTER = 1e-8

#: Ceiling of the jitter escalation ladder: on a failed factorisation the
#: jitter is raised tenfold at a time up to this value before giving up
#: (near-duplicate rows in the candidate pool can make ``K`` numerically
#: singular at the base jitter).
_MAX_JITTER = 1e-4

#: Log-space bounds on the observation-noise variance (standardised units).
_NOISE_LOG_BOUNDS = (np.log(1e-8), np.log(1.0))

#: Objective value returned for numerically infeasible hyper-parameters.
_BAD_NLML = 1e25


class GaussianProcess:
    """Exact GP regression with marginal-likelihood hyper-parameter fitting.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to an ARD Matérn-5/2 when first
        fitted (built to match the data dimensionality).
    noise_variance:
        Initial observation-noise variance in *standardised* target units.
    normalize_y:
        Standardise targets before fitting (recommended).
    profile:
        Optional :class:`~repro.gp.profile.SurrogateProfile` accumulating
        per-stage wall-clock timings (kernel, Cholesky, hyper-opt, append).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise_variance: float = 1e-2,
        normalize_y: bool = True,
        profile: SurrogateProfile | None = None,
    ):
        if noise_variance <= 0:
            raise ValueError("noise variance must be positive")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.normalize_y = normalize_y
        self.profile = profile
        self._standardizer = Standardizer()
        self._X: np.ndarray | None = None
        self._y_std: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        #: Jitter backing the current factorisation (may have escalated).
        self._jitter = _JITTER

    def _stage(self, name: str):
        """Timing context for one profiled stage (no-op without profile)."""
        return self.profile.timeit(name) if self.profile is not None else nullcontext()

    def _count(self, op: str) -> None:
        """Count one interface-level op (no-op without profile)."""
        if self.profile is not None:
            self.profile.count_op(op)

    # -- fitting -------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether the model holds a posterior."""
        return self._chol is not None

    @property
    def n_observations(self) -> int:
        """Number of training observations."""
        return 0 if self._X is None else self._X.shape[0]

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        optimize_hypers: bool = True,
        restarts: int = 3,
        rng: np.random.Generator | None = None,
        gradient: str = "analytic",
    ) -> "GaussianProcess":
        """Condition on data, optionally re-fitting hyper-parameters.

        Parameters
        ----------
        X:
            ``(n, d)`` inputs in the unit hyper-cube.
        y:
            ``(n,)`` targets.
        optimize_hypers:
            Maximise the log marginal likelihood over kernel and noise
            hyper-parameters.
        restarts:
            Extra random restarts of the optimiser (the first start is the
            current hyper-parameter setting, which is what refit scheduling
            warm-starts from).
        rng:
            Source of restart starting points.
        gradient:
            ``'analytic'`` (default) drives L-BFGS-B with the fused
            value-and-gradient marginal likelihood; ``'numeric'`` falls
            back to finite differencing (kept as the benchmark baseline).
        """
        if gradient not in ("analytic", "numeric"):
            raise ValueError(
                f"gradient must be 'analytic' or 'numeric', got {gradient!r}"
            )
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if X.shape[0] == 0:
            raise ValueError("need at least one observation")
        if self.kernel is None:
            self.kernel = Matern52(X.shape[1])
        if self.kernel.input_dim != X.shape[1]:
            raise ValueError(
                f"kernel dimension {self.kernel.input_dim} != data "
                f"dimension {X.shape[1]}"
            )

        self._count("fits")
        if self.profile is not None:
            self.profile.record_tier("exact", X.shape[0])
        self._X = X
        if self.normalize_y:
            self._standardizer.fit(y)
            self._y_std = self._standardizer.transform(y)
        else:
            self._standardizer = Standardizer.identity()
            self._y_std = y.copy()

        if optimize_hypers and X.shape[0] >= 3:
            with self._stage("hyperopt"):
                self._optimize_hypers(
                    restarts, rng or np.random.default_rng(0), gradient
                )
        self._recompute_posterior()
        return self

    def append(self, x: np.ndarray, y: float) -> "GaussianProcess":
        """Condition on one new observation at fixed hyper-parameters.

        Extends the Cholesky factor by one row (``O(n^2)``) instead of
        refactorising (``O(n^3)``); the target standardisation is the one
        of the last :meth:`fit`, so the posterior is exactly the one a full
        recompute at the current hyper-parameters would produce.  Falls
        back to a full (jitter-escalating) refactorisation if the new row
        makes the extended matrix numerically non-positive-definite.
        """
        if not self.is_fitted:
            raise RuntimeError("append() before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape != (1, self.kernel.input_dim):
            raise ValueError(
                f"expected one {self.kernel.input_dim}-dimensional input, "
                f"got shape {x.shape}"
            )
        y = float(y)
        if not np.isfinite(y):
            raise NonFiniteObservationError(
                f"refusing to append non-finite observation {y!r} at "
                f"n={self.n_observations}"
            )
        y_std = float(self._standardizer.transform(np.array([y]))[0])

        self._count("appends")
        with self._stage("append"):
            k = self.kernel(self._X, x)[:, 0]
            k_self = float(self.kernel.diag(x)[0]) + self.noise_variance + self._jitter
            c = linalg.solve_triangular(self._chol, k, lower=True)
            d_sq = k_self - float(c @ c)
            self._X = np.vstack((self._X, x))
            self._y_std = np.concatenate((self._y_std, [y_std]))
            if d_sq <= 0.0:
                # The extended matrix lost positive-definiteness at this
                # jitter; rebuild from scratch (escalating as needed).
                _log.warning(
                    "rank-1 Cholesky update failed (pivot %.3g <= 0 at "
                    "n=%d); falling back to a full refactorisation",
                    d_sq,
                    self._X.shape[0],
                )
                self._recompute_posterior()
                return self
            n = self._chol.shape[0]
            chol = np.zeros((n + 1, n + 1))
            chol[:n, :n] = self._chol
            chol[n, :n] = c
            chol[n, n] = np.sqrt(d_sq)
            self._chol = chol
            self._alpha = linalg.cho_solve((self._chol, True), self._y_std)
        return self

    def _pack(self) -> np.ndarray:
        return np.concatenate(
            (self.kernel.get_theta(), [np.log(self.noise_variance)])
        )

    def _unpack(self, packed: np.ndarray) -> None:
        self.kernel.set_theta(packed[:-1])
        self.noise_variance = float(np.exp(packed[-1]))

    def _neg_log_marginal_likelihood(self, packed: np.ndarray) -> float:
        self._unpack(packed)
        n = self._X.shape[0]
        K = self.kernel(self._X, self._X)
        K[np.diag_indices_from(K)] += self.noise_variance + _JITTER
        try:
            chol = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return _BAD_NLML
        alpha = linalg.cho_solve((chol, True), self._y_std)
        lml = (
            -0.5 * float(self._y_std @ alpha)
            - float(np.sum(np.log(np.diag(chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if not np.isfinite(lml):
            return _BAD_NLML
        return -lml

    def _nlml_value_and_grad(
        self, packed: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Fused negative log marginal likelihood and its analytic gradient.

        One kernel evaluation and one Cholesky factorisation per call —
        the gradient reuses both via the standard identity
        ``d LML / d theta_j = 0.5 tr((alpha alpha^T - K^{-1}) dK/dtheta_j)``
        — where finite differencing would cost ``p + 1`` factorisations.
        """
        self._unpack(packed)
        n = self._X.shape[0]
        bad = (_BAD_NLML, np.zeros(packed.shape[0]))
        K, dK = self.kernel.value_and_grad(self._X)
        K[np.diag_indices_from(K)] += self.noise_variance + _JITTER
        try:
            chol = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return bad
        alpha = linalg.cho_solve((chol, True), self._y_std)
        lml = (
            -0.5 * float(self._y_std @ alpha)
            - float(np.sum(np.log(np.diag(chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if not np.isfinite(lml):
            return bad
        # A = alpha alpha^T - K^{-1}; grad_j = -0.5 sum(A * dK_j).
        K_inv = linalg.cho_solve((chol, True), np.eye(n))
        A = np.outer(alpha, alpha) - K_inv
        grad = np.empty(packed.shape[0])
        grad[:-1] = -0.5 * np.einsum("ij,kij->k", A, dK)
        # dK/d log noise_variance = noise_variance * I.
        grad[-1] = -0.5 * self.noise_variance * float(np.trace(A))
        if not np.all(np.isfinite(grad)):
            return bad
        return -lml, grad

    def _optimize_hypers(
        self, restarts: int, rng: np.random.Generator, gradient: str
    ) -> None:
        bounds = self.kernel.theta_bounds() + [_NOISE_LOG_BOUNDS]
        lows = np.array([b[0] for b in bounds])
        highs = np.array([b[1] for b in bounds])

        starts = [self._pack()]
        for _ in range(max(0, restarts)):
            starts.append(rng.uniform(lows, highs))

        if gradient == "analytic":
            objective, jac = self._nlml_value_and_grad, True
        else:
            objective, jac = self._neg_log_marginal_likelihood, None

        best_packed = None
        best_value = np.inf
        for start in starts:
            start = np.clip(start, lows, highs)
            result = optimize.minimize(
                objective,
                start,
                method="L-BFGS-B",
                jac=jac,
                bounds=bounds,
            )
            if result.fun < best_value:
                best_value = float(result.fun)
                best_packed = result.x
        if best_packed is not None:
            self._unpack(best_packed)

    def _recompute_posterior(self) -> None:
        with self._stage("kernel"):
            K_base = self.kernel(self._X, self._X)
        jitter = _JITTER
        while True:
            K = K_base.copy()
            K[np.diag_indices_from(K)] += self.noise_variance + jitter
            try:
                with self._stage("cholesky"):
                    self._chol = linalg.cholesky(K, lower=True)
                break
            except linalg.LinAlgError:
                if jitter >= _MAX_JITTER:
                    raise
                jitter *= 10.0
                _log.warning(
                    "Cholesky factorisation failed at n=%d; escalating "
                    "jitter to %.1e (near-duplicate inputs?)",
                    self._X.shape[0],
                    jitter,
                )
        self._jitter = jitter
        self._alpha = linalg.cho_solve((self._chol, True), self._y_std)

    # -- prediction ------------------------------------------------------------

    def predict(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance of the *latent* function at ``Xs``.

        Returns a ``(mean, variance)`` pair in original target units.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        self._count("predicts")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        with self._stage("kernel"):
            Ks = self.kernel(self._X, Xs)
        mean_std = Ks.T @ self._alpha
        v = linalg.solve_triangular(self._chol, Ks, lower=True)
        var_std = self.kernel.diag(Xs) - np.sum(v**2, axis=0)
        var_std = np.maximum(var_std, 1e-12)
        mean = self._standardizer.inverse_mean(mean_std)
        var = self._standardizer.inverse_variance(var_std)
        return mean, var

    def predict_noisy(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance of a new *observation* at ``Xs``."""
        mean, var = self.predict(Xs)
        noise = self._standardizer.inverse_variance(
            np.full(var.shape, self.noise_variance)
        )
        return mean, var + noise

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood at the current hyper-parameters."""
        if not self.is_fitted:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        return -self._neg_log_marginal_likelihood(self._pack())
