"""Gaussian-process regression (paper Section 3.1).

Implements the surrogate model ``M``: a GP prior ``f | X ~ N(m, K)`` with
noisy observations ``y | f, sigma^2 ~ N(f, sigma^2 I)``, refined by exact
Bayesian posterior updating after each new observation.  Hyper-parameters
(kernel variance, ARD length scales, noise variance) are point-estimated by
maximising the log marginal likelihood with multi-restart L-BFGS-B, the
standard Spearmint-style treatment.

Inputs are expected in the unit hyper-cube; targets are standardised
internally and predictions returned in original units.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg, optimize

from .kernels import Kernel, Matern52
from .normalize import Standardizer

__all__ = ["GaussianProcess"]

#: Diagonal jitter added to keep Cholesky factorisations stable.
_JITTER = 1e-8

#: Log-space bounds on the observation-noise variance (standardised units).
_NOISE_LOG_BOUNDS = (np.log(1e-8), np.log(1.0))


class GaussianProcess:
    """Exact GP regression with marginal-likelihood hyper-parameter fitting.

    Parameters
    ----------
    kernel:
        Covariance function; defaults to an ARD Matérn-5/2 when first
        fitted (built to match the data dimensionality).
    noise_variance:
        Initial observation-noise variance in *standardised* target units.
    normalize_y:
        Standardise targets before fitting (recommended).
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise_variance: float = 1e-2,
        normalize_y: bool = True,
    ):
        if noise_variance <= 0:
            raise ValueError("noise variance must be positive")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.normalize_y = normalize_y
        self._standardizer = Standardizer()
        self._X: np.ndarray | None = None
        self._y_std: np.ndarray | None = None
        self._chol: np.ndarray | None = None
        self._alpha: np.ndarray | None = None

    # -- fitting -------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether the model holds a posterior."""
        return self._chol is not None

    @property
    def n_observations(self) -> int:
        """Number of training observations."""
        return 0 if self._X is None else self._X.shape[0]

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        optimize_hypers: bool = True,
        restarts: int = 3,
        rng: np.random.Generator | None = None,
    ) -> "GaussianProcess":
        """Condition on data, optionally re-fitting hyper-parameters.

        Parameters
        ----------
        X:
            ``(n, d)`` inputs in the unit hyper-cube.
        y:
            ``(n,)`` targets.
        optimize_hypers:
            Maximise the log marginal likelihood over kernel and noise
            hyper-parameters.
        restarts:
            Extra random restarts of the optimiser (the first start is the
            current hyper-parameter setting).
        rng:
            Source of restart starting points.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if X.shape[0] == 0:
            raise ValueError("need at least one observation")
        if self.kernel is None:
            self.kernel = Matern52(X.shape[1])
        if self.kernel.input_dim != X.shape[1]:
            raise ValueError(
                f"kernel dimension {self.kernel.input_dim} != data "
                f"dimension {X.shape[1]}"
            )

        self._X = X
        if self.normalize_y:
            self._standardizer.fit(y)
            self._y_std = self._standardizer.transform(y)
        else:
            self._standardizer.mean_ = 0.0
            self._standardizer.std_ = 1.0
            self._standardizer._fitted = True
            self._y_std = y.copy()

        if optimize_hypers and X.shape[0] >= 3:
            self._optimize_hypers(restarts, rng or np.random.default_rng(0))
        self._recompute_posterior()
        return self

    def _pack(self) -> np.ndarray:
        return np.concatenate(
            (self.kernel.get_theta(), [np.log(self.noise_variance)])
        )

    def _unpack(self, packed: np.ndarray) -> None:
        self.kernel.set_theta(packed[:-1])
        self.noise_variance = float(np.exp(packed[-1]))

    def _neg_log_marginal_likelihood(self, packed: np.ndarray) -> float:
        self._unpack(packed)
        n = self._X.shape[0]
        K = self.kernel(self._X, self._X)
        K[np.diag_indices_from(K)] += self.noise_variance + _JITTER
        try:
            chol = linalg.cholesky(K, lower=True)
        except linalg.LinAlgError:
            return 1e25
        alpha = linalg.cho_solve((chol, True), self._y_std)
        lml = (
            -0.5 * float(self._y_std @ alpha)
            - float(np.sum(np.log(np.diag(chol))))
            - 0.5 * n * np.log(2.0 * np.pi)
        )
        if not np.isfinite(lml):
            return 1e25
        return -lml

    def _optimize_hypers(self, restarts: int, rng: np.random.Generator) -> None:
        bounds = self.kernel.theta_bounds() + [_NOISE_LOG_BOUNDS]
        lows = np.array([b[0] for b in bounds])
        highs = np.array([b[1] for b in bounds])

        starts = [self._pack()]
        for _ in range(max(0, restarts)):
            starts.append(rng.uniform(lows, highs))

        best_packed = None
        best_value = np.inf
        for start in starts:
            start = np.clip(start, lows, highs)
            result = optimize.minimize(
                self._neg_log_marginal_likelihood,
                start,
                method="L-BFGS-B",
                bounds=bounds,
            )
            if result.fun < best_value:
                best_value = float(result.fun)
                best_packed = result.x
        if best_packed is not None:
            self._unpack(best_packed)

    def _recompute_posterior(self) -> None:
        K = self.kernel(self._X, self._X)
        K[np.diag_indices_from(K)] += self.noise_variance + _JITTER
        self._chol = linalg.cholesky(K, lower=True)
        self._alpha = linalg.cho_solve((self._chol, True), self._y_std)

    # -- prediction ------------------------------------------------------------

    def predict(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance of the *latent* function at ``Xs``.

        Returns a ``(mean, variance)`` pair in original target units.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        Ks = self.kernel(self._X, Xs)
        mean_std = Ks.T @ self._alpha
        v = linalg.solve_triangular(self._chol, Ks, lower=True)
        var_std = self.kernel.diag(Xs) - np.sum(v**2, axis=0)
        var_std = np.maximum(var_std, 1e-12)
        mean = self._standardizer.inverse_mean(mean_std)
        var = self._standardizer.inverse_variance(var_std)
        return mean, var

    def predict_noisy(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance of a new *observation* at ``Xs``."""
        mean, var = self.predict(Xs)
        noise = self._standardizer.inverse_variance(
            np.full(var.shape, self.noise_variance)
        )
        return mean, var + noise

    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood at the current hyper-parameters."""
        if not self.is_fitted:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        return -self._neg_log_marginal_likelihood(self._pack())
