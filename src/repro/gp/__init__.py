"""Gaussian-process substrate (Spearmint analog)."""

from .gp import GaussianProcess
from .kernels import RBF, Kernel, Matern52
from .normalize import Standardizer
from .profile import SurrogateProfile

__all__ = [
    "GaussianProcess",
    "Kernel",
    "Matern52",
    "RBF",
    "Standardizer",
    "SurrogateProfile",
]
