"""Gaussian-process substrate (Spearmint analog)."""

from .gp import GaussianProcess, NonFiniteObservationError
from .kernels import RBF, Kernel, Matern52
from .normalize import Standardizer
from .profile import SurrogateProfile
from .sparse import (
    SURROGATE_TIERS,
    AutoSurrogate,
    NystromGP,
    RandomFourierGP,
    make_surrogate,
)

__all__ = [
    "AutoSurrogate",
    "GaussianProcess",
    "Kernel",
    "Matern52",
    "NonFiniteObservationError",
    "NystromGP",
    "RBF",
    "RandomFourierGP",
    "SURROGATE_TIERS",
    "Standardizer",
    "SurrogateProfile",
    "make_surrogate",
]
