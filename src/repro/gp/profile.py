"""Per-stage wall-clock profiling of the GP surrogate hot path.

The fixed-runtime experiments charge GP work to the *simulated* clock; this
module measures the *real* cost of the surrogate so speedups (analytic
gradients, rank-1 updates, refit scheduling, sparse tiers) are observable.
A :class:`SurrogateProfile` is threaded through
:class:`~repro.gp.gp.GaussianProcess`, the sparse surrogates in
:mod:`repro.gp.sparse`, and :class:`~repro.core.methods.BayesianOptimizer`
and accumulates three kinds of evidence:

* **stages** — seconds and call counts per internal stage:

  - ``kernel``      — Gram-matrix / cross-covariance / feature-map work;
  - ``cholesky``    — factorisations (full ``O(n^3)``, rank-1 ``O(n^2)``
    and the sparse tiers' ``O(m^2)`` updates);
  - ``hyperopt``    — marginal-likelihood optimisation, inclusive of the
    kernel/Cholesky work performed inside the optimiser's objective;
  - ``append``      — incremental posterior updates;
  - ``acquisition`` — candidate scoring during proposals.

* **ops** — counts of the surrogate's *interface-level* operations
  (``fits`` / ``appends`` / ``predicts``), so benchmarks can report
  amortized per-op cost (seconds divided by the op count) instead of
  inferring it from stage call counts that nest and overlap.

* **tier** — the active surrogate tier (``exact`` / ``rff`` /
  ``nystrom``) and the history of tier transitions with the observation
  count at which each switch happened.

Timings are diagnostics: they are reported on
:class:`~repro.core.result.RunResult` but deliberately excluded from its
JSON serialisation, which must stay byte-identical across re-runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["SurrogateProfile"]


class SurrogateProfile:
    """Accumulates wall-clock seconds, op counts and tier history."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.ops: dict[str, int] = {}
        #: Active surrogate tier (``None`` until a model records one).
        self.tier: str | None = None
        #: ``{"from": ..., "to": ..., "n_obs": ...}`` per tier switch.
        self.tier_transitions: list[dict] = []

    def add(self, stage: str, seconds: float) -> None:
        """Record one timed call of ``stage``."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + float(seconds)
        self.counts[stage] = self.counts.get(stage, 0) + 1

    @contextmanager
    def timeit(self, stage: str):
        """Context manager timing one call of ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - start)

    def count_op(self, op: str, n: int = 1) -> None:
        """Count ``n`` interface-level operations (fit/append/predict)."""
        self.ops[op] = self.ops.get(op, 0) + int(n)

    def record_tier(self, tier: str, n_obs: int) -> None:
        """Record the active tier, logging a transition when it changes."""
        if tier != self.tier:
            self.tier_transitions.append(
                {"from": self.tier, "to": tier, "n_obs": int(n_obs)}
            )
            self.tier = tier

    def total_seconds(self) -> float:
        """Seconds across all stages (``hyperopt`` overlaps its inner
        kernel/Cholesky work, so this over-counts nested stages)."""
        return sum(self.seconds.values())

    def as_dict(self) -> dict:
        """JSON-ready view of stages, op counts and tier history.

        Shape::

            {
                "stages": {stage: {"seconds": ..., "calls": ...}},
                "ops": {op: count},
                "tier": "exact" | "rff" | "nystrom" | None,
                "tier_transitions": [{"from": ..., "to": ..., "n_obs": ...}],
            }
        """
        return {
            "stages": {
                stage: {
                    "seconds": self.seconds[stage],
                    "calls": self.counts.get(stage, 0),
                }
                for stage in sorted(self.seconds)
            },
            "ops": {op: self.ops[op] for op in sorted(self.ops)},
            "tier": self.tier,
            "tier_transitions": [dict(t) for t in self.tier_transitions],
        }

    def merge(self, other: "SurrogateProfile") -> None:
        """Fold another profile's accumulators into this one."""
        for stage, seconds in other.seconds.items():
            self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
        for stage, calls in other.counts.items():
            self.counts[stage] = self.counts.get(stage, 0) + calls
        for op, count in other.ops.items():
            self.ops[op] = self.ops.get(op, 0) + count
        self.tier_transitions.extend(dict(t) for t in other.tier_transitions)
        if other.tier is not None:
            self.tier = other.tier

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{stage}={self.seconds[stage] * 1e3:.1f}ms/"
            f"{self.counts.get(stage, 0)}"
            for stage in sorted(self.seconds)
        )
        tier = f", tier={self.tier}" if self.tier is not None else ""
        return f"SurrogateProfile({parts}{tier})"
