"""Per-stage wall-clock profiling of the GP surrogate hot path.

The fixed-runtime experiments charge GP work to the *simulated* clock; this
module measures the *real* cost of the surrogate so speedups (analytic
gradients, rank-1 updates, refit scheduling) are observable.  A
:class:`SurrogateProfile` is threaded through
:class:`~repro.gp.gp.GaussianProcess` and
:class:`~repro.core.methods.BayesianOptimizer` and accumulates seconds and
call counts per stage:

* ``kernel``      — Gram-matrix / cross-covariance evaluations;
* ``cholesky``    — factorisations (full ``O(n^3)`` and rank-1 ``O(n^2)``);
* ``hyperopt``    — marginal-likelihood optimisation, inclusive of the
  kernel/Cholesky work performed inside the optimiser's objective;
* ``append``      — incremental posterior updates;
* ``acquisition`` — candidate scoring during proposals.

Timings are diagnostics: they are reported on
:class:`~repro.core.result.RunResult` but deliberately excluded from its
JSON serialisation, which must stay byte-identical across re-runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["SurrogateProfile"]


class SurrogateProfile:
    """Accumulates wall-clock seconds and call counts per surrogate stage."""

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    def add(self, stage: str, seconds: float) -> None:
        """Record one timed call of ``stage``."""
        self.seconds[stage] = self.seconds.get(stage, 0.0) + float(seconds)
        self.counts[stage] = self.counts.get(stage, 0) + 1

    @contextmanager
    def timeit(self, stage: str):
        """Context manager timing one call of ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - start)

    def total_seconds(self) -> float:
        """Seconds across all stages (``hyperopt`` overlaps its inner
        kernel/Cholesky work, so this over-counts nested stages)."""
        return sum(self.seconds.values())

    def as_dict(self) -> dict:
        """JSON-ready ``{stage: {"seconds": ..., "calls": ...}}`` view."""
        return {
            stage: {
                "seconds": self.seconds[stage],
                "calls": self.counts.get(stage, 0),
            }
            for stage in sorted(self.seconds)
        }

    def merge(self, other: "SurrogateProfile") -> None:
        """Fold another profile's accumulators into this one."""
        for stage, seconds in other.seconds.items():
            self.seconds[stage] = self.seconds.get(stage, 0.0) + seconds
        for stage, calls in other.counts.items():
            self.counts[stage] = self.counts.get(stage, 0) + calls

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{stage}={self.seconds[stage] * 1e3:.1f}ms/"
            f"{self.counts.get(stage, 0)}"
            for stage in sorted(self.seconds)
        )
        return f"SurrogateProfile({parts})"
