"""Sparse surrogate tiers: scale BO proposals from hundreds to 10^5 trials.

The exact :class:`~repro.gp.gp.GaussianProcess` costs ``O(n^3)`` per refit
and ``O(n^2)`` per rank-1 append, which caps practical study length at a
few hundred trials.  This module adds two *weight-space* approximations
whose per-operation cost depends on a fixed basis size ``m`` instead of
the observation count ``n``:

* :class:`RandomFourierGP` — random Fourier features (Rahimi & Recht):
  ``phi(x) = sqrt(2 variance / m) cos((x / l) Omega^T + b)`` with
  ``Omega`` drawn from the kernel's spectral density (Matérn-5/2 is a
  multivariate Student-t with 5 degrees of freedom, RBF a Gaussian), so
  ``phi(x)^T phi(x') ~= k(x, x')``.
* :class:`NystromGP` — an inducing-point (Nyström / subset-of-regressors)
  variant: ``phi(x) = L_mm^{-1} k(Z, x)`` with ``K_mm = L_mm L_mm^T`` over
  ``m`` inducing points ``Z`` drawn from the training set, plus the DTC
  variance correction ``max(k(x,x) - phi^T phi, 0)`` so predictive
  variance converges to the exact GP's as ``Z`` densifies.

Both reduce to Bayesian linear regression over the feature map: with
``Phi`` the ``(n, m)`` design matrix, the posterior is captured by the
``m x m`` sufficient statistics ``A = noise I + Phi^T Phi`` (held as a
Cholesky factor), ``b = Phi^T y``, ``y^T y`` and ``n``:

* **fit** is ``O(n m^2)`` — one pass over the data;
* **append** is ``O(m^2)`` — a rank-1 Cholesky update of ``A``,
  *independent of n*;
* **predict** is ``O(k m^2)`` for ``k`` candidates — independent of n;
* the weight-space negative log marginal likelihood and its **analytic
  gradients** (w.r.t. log variance, log length scales, log noise) cost
  ``O(n m^2 + n m d)`` per optimiser step, so hyper-parameter fits keep
  the fused value-and-gradient treatment of the exact tier.

Every class exposes the exact GP's ``fit`` / ``append`` / ``predict`` /
``predict_noisy`` interface (same signatures, same standardisation
semantics, copy-then-append fantasy safety), so
:class:`~repro.core.methods.BayesianOptimizer`, the constant-liar fantasy
path and :class:`~repro.core.constraints.GPConstraintModel` swap tiers
without code changes.  :class:`AutoSurrogate` layers budget-aware
switching on top: exact below ``switch_at`` observations (byte-identical
to the plain exact tier, including RNG consumption), sparse above, with a
logged tier-transition event and a
:class:`~repro.gp.profile.SurrogateProfile` record of the active tier.
"""

from __future__ import annotations

import copy
import logging
from contextlib import nullcontext

import numpy as np
from scipy import linalg, optimize

from .gp import (
    _BAD_NLML,
    _JITTER,
    _MAX_JITTER,
    _NOISE_LOG_BOUNDS,
    GaussianProcess,
    NonFiniteObservationError,
)
from .kernels import Kernel, Matern52
from .normalize import Standardizer
from .profile import SurrogateProfile

__all__ = [
    "RandomFourierGP",
    "NystromGP",
    "AutoSurrogate",
    "make_surrogate",
    "SURROGATE_TIERS",
]

_log = logging.getLogger(__name__)

#: Tier names accepted by :func:`make_surrogate` (and the CLI).
SURROGATE_TIERS = ("exact", "rff", "nystrom", "auto")

#: Default feature / inducing-point count for the sparse tiers.
DEFAULT_FEATURES = 256

#: Default observation count at which :class:`AutoSurrogate` goes sparse.
DEFAULT_SWITCH_AT = 1000


def cholupdate(L: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Rank-1 update of a lower Cholesky factor: ``L' L'^T = L L^T + v v^T``.

    Returns a **new** factor (the input is not mutated), which is what
    keeps ``copy.copy(model); model.append(...)`` fantasy-safe.  ``O(m^2)``
    via Givens-style rotations; adding ``v v^T`` to a positive-definite
    matrix cannot lose definiteness, so the update never fails.
    """
    L = np.array(L, dtype=float)
    v = np.array(v, dtype=float).ravel()
    m = L.shape[0]
    for k in range(m):
        r = np.hypot(L[k, k], v[k])
        c = r / L[k, k]
        s = v[k] / L[k, k]
        L[k, k] = r
        if k + 1 < m:
            L[k + 1 :, k] = (L[k + 1 :, k] + s * v[k + 1 :]) / c
            v[k + 1 :] = c * v[k + 1 :] - s * L[k + 1 :, k]
    return L


class _WeightSpaceGP:
    """Shared Bayesian-linear-regression core of the sparse tiers.

    Subclasses provide the feature map (:meth:`_prepare_basis` /
    :meth:`_features`), the hyper-parameter fit, and an optional additive
    variance correction; everything else — sufficient statistics, rank-1
    appends, prediction, standardisation — lives here.
    """

    #: Tier name recorded on the profile (subclasses override).
    tier = "sparse"

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise_variance: float = 1e-2,
        normalize_y: bool = True,
        profile: SurrogateProfile | None = None,
        feature_seed: int = 0,
    ):
        if noise_variance <= 0:
            raise ValueError("noise variance must be positive")
        self.kernel = kernel
        self.noise_variance = float(noise_variance)
        self.normalize_y = normalize_y
        self.profile = profile
        #: Seed of the basis draws (kept separate from the proposal RNG so
        #: sparse tiers never perturb the caller's random stream).
        self.feature_seed = int(feature_seed)
        self._standardizer = Standardizer()
        #: Lower Cholesky factor of ``A = noise I + Phi^T Phi``.
        self._A_chol: np.ndarray | None = None
        self._b: np.ndarray | None = None
        self._beta: np.ndarray | None = None
        self._yty = 0.0
        self._n = 0

    # -- profiling hooks (mirror GaussianProcess) ------------------------------

    def _stage(self, name: str):
        return (
            self.profile.timeit(name) if self.profile is not None else nullcontext()
        )

    def _count(self, op: str) -> None:
        if self.profile is not None:
            self.profile.count_op(op)

    # -- subclass API ----------------------------------------------------------

    def _prepare_basis(self, X: np.ndarray) -> None:
        """Set up the feature basis for a fit on ``X``."""
        raise NotImplementedError

    def _features(self, X: np.ndarray) -> np.ndarray:
        """``(k, m)`` feature matrix at the current hyper-parameters."""
        raise NotImplementedError

    def _optimize_hypers(
        self,
        X: np.ndarray,
        y_std: np.ndarray,
        restarts: int,
        rng: np.random.Generator,
        gradient: str,
    ) -> None:
        raise NotImplementedError

    def _extra_variance(self, Xs: np.ndarray, Phi: np.ndarray) -> float:
        """Additive latent-variance correction (0 unless overridden)."""
        return 0.0

    # -- fitting ---------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether the model holds a posterior."""
        return self._A_chol is not None

    @property
    def n_observations(self) -> int:
        """Number of observations conditioned on (fit + appends)."""
        return self._n

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        optimize_hypers: bool = True,
        restarts: int = 3,
        rng: np.random.Generator | None = None,
        gradient: str = "analytic",
    ) -> "_WeightSpaceGP":
        """Condition on data, optionally re-fitting hyper-parameters.

        Same contract as :meth:`repro.gp.gp.GaussianProcess.fit`; cost is
        ``O(n m^2)`` instead of ``O(n^3)``.
        """
        if gradient not in ("analytic", "numeric"):
            raise ValueError(
                f"gradient must be 'analytic' or 'numeric', got {gradient!r}"
            )
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {X.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if X.shape[0] == 0:
            raise ValueError("need at least one observation")
        if self.kernel is None:
            self.kernel = Matern52(X.shape[1])
        if self.kernel.input_dim != X.shape[1]:
            raise ValueError(
                f"kernel dimension {self.kernel.input_dim} != data "
                f"dimension {X.shape[1]}"
            )

        self._count("fits")
        if self.profile is not None:
            self.profile.record_tier(self.tier, X.shape[0])

        if self.normalize_y:
            self._standardizer.fit(y)
            y_std = self._standardizer.transform(y)
        else:
            self._standardizer = Standardizer.identity()
            y_std = y.copy()

        self._prepare_basis(X)
        if optimize_hypers and X.shape[0] >= 3:
            with self._stage("hyperopt"):
                self._optimize_hypers(
                    X, y_std, restarts, rng or np.random.default_rng(0), gradient
                )
        self._recompute_posterior(X, y_std)
        return self

    def append(self, x: np.ndarray, y: float) -> "_WeightSpaceGP":
        """Condition on one new observation at fixed hyper-parameters.

        ``O(m^2)`` — a rank-1 Cholesky update of the ``m x m`` information
        matrix, independent of how many observations came before.  All
        state is rebound (never mutated in place), so a ``copy.copy`` of
        the model can be appended to without disturbing the original —
        the contract the constant-liar fantasy path relies on.
        """
        if not self.is_fitted:
            raise RuntimeError("append() before fit()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape != (1, self.kernel.input_dim):
            raise ValueError(
                f"expected one {self.kernel.input_dim}-dimensional input, "
                f"got shape {x.shape}"
            )
        y = float(y)
        if not np.isfinite(y):
            raise NonFiniteObservationError(
                f"refusing to append non-finite observation {y!r} at "
                f"n={self.n_observations}"
            )
        y_std = float(self._standardizer.transform(np.array([y]))[0])

        self._count("appends")
        with self._stage("append"):
            phi = self._features(x)[0]
            self._A_chol = cholupdate(self._A_chol, phi)
            self._b = self._b + phi * y_std
            self._yty = self._yty + y_std * y_std
            self._n = self._n + 1
            self._beta = linalg.cho_solve((self._A_chol, True), self._b)
        return self

    def _recompute_posterior(self, X: np.ndarray, y_std: np.ndarray) -> None:
        with self._stage("kernel"):
            Phi = self._features(X)
        m = Phi.shape[1]
        jitter = 0.0
        while True:
            A = Phi.T @ Phi
            A[np.diag_indices_from(A)] += self.noise_variance + jitter
            try:
                with self._stage("cholesky"):
                    self._A_chol = linalg.cholesky(A, lower=True)
                break
            except linalg.LinAlgError:
                # A = noise I + Phi^T Phi is PD in exact arithmetic; a
                # failure here is pure round-off, cured by tiny jitter.
                if jitter >= _MAX_JITTER:
                    raise
                jitter = _JITTER if jitter == 0.0 else jitter * 10.0
                _log.warning(
                    "sparse information matrix lost definiteness at m=%d; "
                    "escalating jitter to %.1e",
                    m,
                    jitter,
                )
        self._b = Phi.T @ y_std
        self._yty = float(y_std @ y_std)
        self._n = X.shape[0]
        self._beta = linalg.cho_solve((self._A_chol, True), self._b)

    # -- hyper-parameter packing (mirror GaussianProcess) ----------------------

    def _pack(self) -> np.ndarray:
        return np.concatenate(
            (self.kernel.get_theta(), [np.log(self.noise_variance)])
        )

    def _unpack(self, packed: np.ndarray) -> None:
        self.kernel.set_theta(packed[:-1])
        self.noise_variance = float(np.exp(packed[-1]))

    # -- prediction ------------------------------------------------------------

    def predict(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance of the *latent* function at ``Xs``.

        Returns a ``(mean, variance)`` pair in original target units;
        ``O(k m^2)`` for ``k`` query points regardless of n.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        self._count("predicts")
        Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
        with self._stage("kernel"):
            Phi = self._features(Xs)
        mean_std = Phi @ self._beta
        v = linalg.solve_triangular(self._A_chol, Phi.T, lower=True)
        var_std = self.noise_variance * np.sum(v**2, axis=0)
        var_std = var_std + self._extra_variance(Xs, Phi)
        var_std = np.maximum(var_std, 1e-12)
        mean = self._standardizer.inverse_mean(mean_std)
        var = self._standardizer.inverse_variance(var_std)
        return mean, var

    def predict_noisy(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance of a new *observation* at ``Xs``."""
        mean, var = self.predict(Xs)
        noise = self._standardizer.inverse_variance(
            np.full(var.shape, self.noise_variance)
        )
        return mean, var + noise

    def log_marginal_likelihood(self) -> float:
        """Weight-space log marginal likelihood at the current posterior.

        Computed from the sufficient statistics alone (no pass over the
        data): with ``A = noise I + Phi^T Phi``, the matrix determinant
        lemma gives ``log|Phi Phi^T + noise I_n| = log|A| +
        (n - m) log noise`` and the Woodbury identity gives
        ``y^T C^{-1} y = (y^T y - b^T beta) / noise``.
        """
        if not self.is_fitted:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        m = self._A_chol.shape[0]
        quad = (self._yty - float(self._b @ self._beta)) / self.noise_variance
        logdet_a = 2.0 * float(np.sum(np.log(np.diag(self._A_chol))))
        return -(
            0.5 * quad
            + 0.5 * logdet_a
            + 0.5 * (self._n - m) * np.log(self.noise_variance)
            + 0.5 * self._n * np.log(2.0 * np.pi)
        )


class RandomFourierGP(_WeightSpaceGP):
    """Random-Fourier-feature GP approximation (Rahimi & Recht 2007).

    The spectral basis (``Omega``, phases) is drawn **once** from
    ``feature_seed`` for the unit-length-scale kernel; length scales enter
    by rescaling inputs and the signal variance by rescaling amplitudes,
    so the weight-space marginal likelihood stays differentiable in every
    hyper-parameter through a *fixed* basis — which is what lets the
    analytic-gradient L-BFGS-B treatment of the exact tier carry over.
    """

    tier = "rff"

    def __init__(
        self,
        kernel: Kernel | None = None,
        n_features: int = DEFAULT_FEATURES,
        noise_variance: float = 1e-2,
        normalize_y: bool = True,
        profile: SurrogateProfile | None = None,
        feature_seed: int = 0,
    ):
        if n_features < 1:
            raise ValueError("n_features must be >= 1")
        super().__init__(kernel, noise_variance, normalize_y, profile, feature_seed)
        self.n_features = int(n_features)
        self._omega: np.ndarray | None = None
        self._phases: np.ndarray | None = None

    def _prepare_basis(self, X: np.ndarray) -> None:
        if self._omega is None:
            rng = np.random.default_rng(self.feature_seed)
            self._omega = self.kernel.spectral_weights(self.n_features, rng)
            self._phases = rng.uniform(0.0, 2.0 * np.pi, self.n_features)

    def _features(self, X: np.ndarray) -> np.ndarray:
        amp = np.sqrt(2.0 * self.kernel.variance / self.n_features)
        arg = (X / self.kernel.lengthscales) @ self._omega.T + self._phases
        return amp * np.cos(arg)

    # -- weight-space marginal likelihood --------------------------------------

    def _nlml_pieces(self, X: np.ndarray, y_std: np.ndarray, packed: np.ndarray):
        """Shared forward pass of the NLML value / gradient objectives."""
        self._unpack(packed)
        m = self.n_features
        n = X.shape[0]
        amp = np.sqrt(2.0 * self.kernel.variance / m)
        arg = (X / self.kernel.lengthscales) @ self._omega.T + self._phases
        Phi = amp * np.cos(arg)
        A = Phi.T @ Phi
        A[np.diag_indices_from(A)] += self.noise_variance
        try:
            L = linalg.cholesky(A, lower=True)
        except linalg.LinAlgError:
            return None
        b = Phi.T @ y_std
        beta = linalg.cho_solve((L, True), b)
        yty = float(y_std @ y_std)
        quad = (yty - float(b @ beta)) / self.noise_variance
        nlml = (
            0.5 * quad
            + float(np.sum(np.log(np.diag(L))))
            + 0.5 * (n - m) * np.log(self.noise_variance)
            + 0.5 * n * np.log(2.0 * np.pi)
        )
        if not np.isfinite(nlml):
            return None
        return nlml, arg, amp, Phi, L, beta

    def _nlml_value(self, packed, X, y_std) -> float:
        pieces = self._nlml_pieces(X, y_std, packed)
        return _BAD_NLML if pieces is None else pieces[0]

    def _nlml_value_and_grad(self, packed, X, y_std):
        """Fused weight-space NLML and analytic gradient.

        With ``alpha = (y - Phi beta) / noise`` and ``B = Phi A^{-1}``,
        the matrix derivative is ``dNLML/dPhi = B - alpha beta^T``; the
        chain rule through ``Phi = amp cos((X/l) Omega^T + phase)``
        contracts it against ``T = amp sin(arg)`` in one ``(n,m) @ (m,d)``
        product per step — ``O(n m (m + d))`` total, versus the ``p + 1``
        full passes of finite differencing.
        """
        bad = (_BAD_NLML, np.zeros(packed.shape[0]))
        pieces = self._nlml_pieces(X, y_std, packed)
        if pieces is None:
            return bad
        nlml, arg, amp, Phi, L, beta = pieces
        m = self.n_features
        n = X.shape[0]
        noise = self.noise_variance
        L_inv = linalg.solve_triangular(L, np.eye(m), lower=True)
        tr_a_inv = float(np.sum(L_inv**2))
        alpha = (y_std - Phi @ beta) / noise
        B = linalg.cho_solve((L, True), Phi.T).T
        grad = np.empty(packed.shape[0])
        # d/d log variance: Phi scales with sqrt(variance), so
        # d(Phi Phi^T)/d log variance = Phi Phi^T.
        grad[0] = -0.5 * float(beta @ beta) + 0.5 * (m - noise * tr_a_inv)
        # d/d log lengthscale_j via the feature-map chain rule.
        T = amp * np.sin(arg)
        M = (B - np.outer(alpha, beta)) * T
        grad[1:-1] = (
            np.sum(X * (M @ self._omega), axis=0) / self.kernel.lengthscales
        )
        # d/d log noise.
        grad[-1] = 0.5 * (
            -noise * float(alpha @ alpha) + (n - m) + noise * tr_a_inv
        )
        if not np.all(np.isfinite(grad)):
            return bad
        return nlml, grad

    def _optimize_hypers(self, X, y_std, restarts, rng, gradient) -> None:
        bounds = self.kernel.theta_bounds() + [_NOISE_LOG_BOUNDS]
        lows = np.array([b[0] for b in bounds])
        highs = np.array([b[1] for b in bounds])

        starts = [self._pack()]
        for _ in range(max(0, restarts)):
            starts.append(rng.uniform(lows, highs))

        if gradient == "analytic":
            objective, jac = self._nlml_value_and_grad, True
        else:
            objective, jac = self._nlml_value, None

        best_packed = None
        best_value = np.inf
        for start in starts:
            start = np.clip(start, lows, highs)
            result = optimize.minimize(
                objective,
                start,
                args=(X, y_std),
                method="L-BFGS-B",
                jac=jac,
                bounds=bounds,
            )
            if result.fun < best_value:
                best_value = float(result.fun)
                best_packed = result.x
        if best_packed is not None:
            self._unpack(best_packed)


class NystromGP(_WeightSpaceGP):
    """Inducing-point (Nyström / SoR) GP with the DTC variance correction.

    Inducing points ``Z`` are an ``m``-point subset of the training data
    (drawn deterministically from ``feature_seed``); features are
    ``phi(x) = L_mm^{-1} k(Z, x)`` so ``phi(x)^T phi(x')`` is the Nyström
    kernel.  Subset-of-regressors variance collapses far from ``Z``, so
    prediction adds the DTC correction ``max(k(x,x) - phi^T phi, 0)`` —
    with ``Z`` equal to the full training set the posterior matches the
    exact GP's.  Hyper-parameters are fitted by exact marginal likelihood
    on the inducing subset (subset-of-data), reusing the exact tier's
    analytic-gradient machinery through a shared kernel object.
    """

    tier = "nystrom"

    def __init__(
        self,
        kernel: Kernel | None = None,
        n_inducing: int = DEFAULT_FEATURES,
        noise_variance: float = 1e-2,
        normalize_y: bool = True,
        profile: SurrogateProfile | None = None,
        feature_seed: int = 0,
    ):
        if n_inducing < 1:
            raise ValueError("n_inducing must be >= 1")
        super().__init__(kernel, noise_variance, normalize_y, profile, feature_seed)
        self.n_inducing = int(n_inducing)
        self._Z: np.ndarray | None = None
        self._L_mm: np.ndarray | None = None
        self._subset_idx: np.ndarray | None = None

    def _prepare_basis(self, X: np.ndarray) -> None:
        n = X.shape[0]
        if n <= self.n_inducing:
            idx = np.arange(n)
        else:
            rng = np.random.default_rng(self.feature_seed)
            idx = np.sort(rng.choice(n, size=self.n_inducing, replace=False))
        self._subset_idx = idx
        self._Z = X[idx].copy()
        self._L_mm = None  # refreshed after hyper-parameters settle

    def _factor_inducing(self) -> None:
        K_mm = self.kernel(self._Z, self._Z)
        jitter = _JITTER
        while True:
            K = K_mm.copy()
            K[np.diag_indices_from(K)] += jitter
            try:
                self._L_mm = linalg.cholesky(K, lower=True)
                break
            except linalg.LinAlgError:
                if jitter >= _MAX_JITTER:
                    raise
                jitter *= 10.0
                _log.warning(
                    "inducing Gram factorisation failed at m=%d; escalating "
                    "jitter to %.1e (near-duplicate inducing points?)",
                    self._Z.shape[0],
                    jitter,
                )

    def _features(self, X: np.ndarray) -> np.ndarray:
        if self._L_mm is None:
            self._factor_inducing()
        K_mx = self.kernel(self._Z, X)
        return linalg.solve_triangular(self._L_mm, K_mx, lower=True).T

    def _extra_variance(self, Xs: np.ndarray, Phi: np.ndarray) -> np.ndarray:
        # DTC correction: restore the prior variance the subset-of-
        # regressors approximation loses away from the inducing set.
        return np.maximum(self.kernel.diag(Xs) - np.sum(Phi**2, axis=1), 0.0)

    def _optimize_hypers(self, X, y_std, restarts, rng, gradient) -> None:
        # Subset-of-data: exact marginal likelihood on the inducing subset,
        # sharing this model's kernel object so theta is written back.
        sub = GaussianProcess(
            kernel=self.kernel,
            noise_variance=self.noise_variance,
            normalize_y=False,
        )
        sub.fit(
            X[self._subset_idx],
            y_std[self._subset_idx],
            optimize_hypers=True,
            restarts=restarts,
            rng=rng,
            gradient=gradient,
        )
        self.noise_variance = sub.noise_variance
        self._L_mm = None  # kernel hypers moved; refactor on next use


class AutoSurrogate:
    """Budget-aware surrogate: exact GP below ``switch_at``, sparse above.

    Below the threshold this constructs (and consumes RNG) **exactly** as
    the plain exact tier does, so runs that never cross ``switch_at`` are
    byte-identical to ``surrogate="exact"``.  Crossing the threshold at a
    refit logs a tier-transition event and records it on the profile; the
    exact posterior's hyper-parameters carry over through the shared
    warm-start path (the sparse fit starts from its own defaults, then
    optimises on the full data).
    """

    def __init__(
        self,
        switch_at: int = DEFAULT_SWITCH_AT,
        sparse_tier: str = "rff",
        n_features: int = DEFAULT_FEATURES,
        noise_variance: float = 1e-2,
        normalize_y: bool = True,
        profile: SurrogateProfile | None = None,
        feature_seed: int = 0,
    ):
        if switch_at < 1:
            raise ValueError("switch_at must be >= 1")
        if sparse_tier not in ("rff", "nystrom"):
            raise ValueError(
                f"sparse_tier must be 'rff' or 'nystrom', got {sparse_tier!r}"
            )
        self.switch_at = int(switch_at)
        self.sparse_tier = sparse_tier
        self.n_features = int(n_features)
        self.noise_variance_init = float(noise_variance)
        self.normalize_y = normalize_y
        self.profile = profile
        self.feature_seed = int(feature_seed)
        self._model = None
        self._tier: str | None = None

    @property
    def tier(self) -> str | None:
        """Currently active tier (``None`` before the first fit)."""
        return self._tier

    @property
    def model(self):
        """The active underlying surrogate (``None`` before the first fit)."""
        return self._model

    def _build(self, tier: str, input_dim: int):
        if tier == "exact":
            return GaussianProcess(
                kernel=Matern52(input_dim),
                noise_variance=self.noise_variance_init,
                normalize_y=self.normalize_y,
                profile=self.profile,
            )
        return make_surrogate(
            tier,
            input_dim,
            profile=self.profile,
            n_features=self.n_features,
            noise_variance=self.noise_variance_init,
            normalize_y=self.normalize_y,
            feature_seed=self.feature_seed,
        )

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        optimize_hypers: bool = True,
        restarts: int = 3,
        rng: np.random.Generator | None = None,
        gradient: str = "analytic",
    ) -> "AutoSurrogate":
        """Fit the tier the observation count calls for."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        tier = "exact" if X.shape[0] < self.switch_at else self.sparse_tier
        if self._model is None or tier != self._tier:
            if self._tier is not None:
                _log.info(
                    "surrogate tier transition: %s -> %s at n=%d "
                    "(switch_at=%d)",
                    self._tier,
                    tier,
                    X.shape[0],
                    self.switch_at,
                )
            self._model = self._build(tier, X.shape[1])
            self._tier = tier
        self._model.fit(
            X,
            y,
            optimize_hypers=optimize_hypers,
            restarts=restarts,
            rng=rng,
            gradient=gradient,
        )
        return self

    # -- delegation ------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._model is not None and self._model.is_fitted

    @property
    def n_observations(self) -> int:
        return 0 if self._model is None else self._model.n_observations

    @property
    def kernel(self):
        return None if self._model is None else self._model.kernel

    @property
    def noise_variance(self) -> float:
        if self._model is None:
            return self.noise_variance_init
        return self._model.noise_variance

    def _require_model(self, op: str):
        if self._model is None:
            raise RuntimeError(f"{op}() before fit()")
        return self._model

    def append(self, x: np.ndarray, y: float) -> "AutoSurrogate":
        self._require_model("append").append(x, y)
        return self

    def predict(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self._require_model("predict").predict(Xs)

    def predict_noisy(self, Xs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self._require_model("predict_noisy").predict_noisy(Xs)

    def log_marginal_likelihood(self) -> float:
        return self._require_model("log_marginal_likelihood").log_marginal_likelihood()

    def __copy__(self) -> "AutoSurrogate":
        # The fantasy path does copy.copy(model) then append(); a plain
        # shallow copy would share the *inner* model, whose appends —
        # though rebinding — would land on the original's attribute.  Copy
        # one level deeper so fantasies stay isolated.
        clone = object.__new__(type(self))
        clone.__dict__.update(self.__dict__)
        clone._model = copy.copy(self._model)
        return clone


def make_surrogate(
    tier: str,
    input_dim: int,
    profile: SurrogateProfile | None = None,
    n_features: int = DEFAULT_FEATURES,
    switch_at: int = DEFAULT_SWITCH_AT,
    noise_variance: float = 1e-2,
    normalize_y: bool = True,
    feature_seed: int = 0,
    sparse_tier: str = "rff",
):
    """Build a surrogate for ``tier`` (``exact|rff|nystrom|auto``).

    The ``exact`` branch constructs the same
    ``GaussianProcess(kernel=Matern52(input_dim), profile=...)`` the
    optimizer always built, so the default tier is byte-identical to the
    pre-sparse code path.
    """
    if tier == "exact":
        return GaussianProcess(
            kernel=Matern52(input_dim),
            noise_variance=noise_variance,
            normalize_y=normalize_y,
            profile=profile,
        )
    if tier == "rff":
        return RandomFourierGP(
            kernel=Matern52(input_dim),
            n_features=n_features,
            noise_variance=noise_variance,
            normalize_y=normalize_y,
            profile=profile,
            feature_seed=feature_seed,
        )
    if tier == "nystrom":
        return NystromGP(
            kernel=Matern52(input_dim),
            n_inducing=n_features,
            noise_variance=noise_variance,
            normalize_y=normalize_y,
            profile=profile,
            feature_seed=feature_seed,
        )
    if tier == "auto":
        return AutoSurrogate(
            switch_at=switch_at,
            sparse_tier=sparse_tier,
            n_features=n_features,
            noise_variance=noise_variance,
            normalize_y=normalize_y,
            profile=profile,
            feature_seed=feature_seed,
        )
    raise ValueError(
        f"unknown surrogate tier {tier!r}; expected one of {SURROGATE_TIERS}"
    )
