"""The multi-tenant study service.

Layers the open ask/tell core (:class:`~repro.core.study.Study`) into a
long-lived, many-study server: a crash-safe :class:`StudyStore` rooted at
a directory, per-study quotas, a stdlib JSON-RPC-over-HTTP front end
(``repro serve``) and a typed client.
"""

from .client import StudyClient
from .errors import (
    InvalidParamsError,
    QuotaExceededError,
    ServiceError,
    StudyExistsError,
    UnknownStudyError,
    UnknownTicketError,
)
from .quotas import StudyQuota, TokenBucket
from .server import StudyServer, WallClock, serve
from .store import STUDY_JOURNAL_FORMAT, ManagedStudy, StudySpec, StudyStore

__all__ = [
    "STUDY_JOURNAL_FORMAT",
    "InvalidParamsError",
    "ManagedStudy",
    "QuotaExceededError",
    "ServiceError",
    "StudyClient",
    "StudyExistsError",
    "StudyQuota",
    "StudyServer",
    "StudySpec",
    "StudyStore",
    "TokenBucket",
    "UnknownStudyError",
    "UnknownTicketError",
    "WallClock",
    "serve",
]
