"""The multi-tenant study service.

Layers the open ask/tell core (:class:`~repro.core.study.Study`) into a
long-lived, many-study server: a crash-safe :class:`StudyStore` rooted at
a directory, per-study quotas, a stdlib JSON-RPC-over-HTTP front end
(``repro serve``) and a typed client — hardened end-to-end against
storage chaos (typed retryable errors, idempotent retries, snapshot
compaction) and overload (bounded admission, health endpoints, graceful
drain).
"""

from .client import ClientRetryPolicy, StudyClient
from .errors import (
    InvalidParamsError,
    OverloadedError,
    QuotaExceededError,
    ServiceError,
    StorageError,
    StudyExistsError,
    UnknownStudyError,
    UnknownTicketError,
)
from .quotas import StudyQuota, TokenBucket
from .server import StudyServer, WallClock, serve
from .store import (
    STUDY_JOURNAL_FORMAT,
    STUDY_SNAPSHOT_FORMAT,
    ManagedStudy,
    StudySpec,
    StudyStore,
)

__all__ = [
    "STUDY_JOURNAL_FORMAT",
    "STUDY_SNAPSHOT_FORMAT",
    "ClientRetryPolicy",
    "InvalidParamsError",
    "ManagedStudy",
    "OverloadedError",
    "QuotaExceededError",
    "ServiceError",
    "StorageError",
    "StudyClient",
    "StudyExistsError",
    "StudyQuota",
    "StudyServer",
    "StudySpec",
    "StudyStore",
    "TokenBucket",
    "UnknownStudyError",
    "UnknownTicketError",
    "WallClock",
    "serve",
]
