"""The multi-tenant study store.

A :class:`StudyStore` holds many named, long-lived ask/tell studies —
each a :class:`~repro.core.study.Study` wrapped in a :class:`ManagedStudy`
that adds per-study locking, quota enforcement and a crash-safe event
journal.  The journal (``<root>/<name>/study.jsonl``, format
``repro-study/1``) reuses the run-journal machinery: a header line
carrying the full :class:`StudySpec`, then one fsynced line per
suggest/observe event, with torn tails truncated on reopen.

Resume is *recomputed*, like the driver journal's: suggest events replay
by re-asking the rebuilt study (all RNG draws, clock charges and
surrogate updates recompute identically) and are verified against the
journaled configurations via the canonical configuration hash — with the
values coerced back through the search space first, because JSON blurs
``3``/``3.0`` and the hash does not.  Observe events substitute the
journaled reports and verify the resulting trial record byte for byte.
A study killed at any request boundary therefore resumes bit-exactly.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.clock import SimClock
from ..core.constraints import ConstraintSpec
from ..core.parallel import canonical_config_key
from ..core.study import Study, TrialReport
from ..io import trial_to_dict
from ..space.space import SearchSpace
from ..telemetry.jsonl import JsonlWriter, scan_jsonl
from ..telemetry.metrics import NOOP_METRICS
from .errors import (
    InvalidParamsError,
    QuotaExceededError,
    StudyExistsError,
    UnknownStudyError,
    UnknownTicketError,
)
from .quotas import StudyQuota, TokenBucket, check_request

__all__ = ["STUDY_JOURNAL_FORMAT", "StudySpec", "ManagedStudy", "StudyStore"]

#: Format tag of the per-study event journal.
STUDY_JOURNAL_FORMAT = "repro-study/1"

#: Study names must be filesystem- and URL-safe.
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or not (1 <= len(name) <= 64):
        raise InvalidParamsError("study name must be 1-64 characters")
    if name.startswith(".") or not set(name) <= _NAME_CHARS:
        raise InvalidParamsError(
            f"invalid study name {name!r}: use letters, digits, '.', '_', "
            "'-' and do not start with '.'"
        )
    return name


@dataclass(frozen=True)
class StudySpec:
    """Everything needed to (re)build one service study deterministically.

    The spec is journaled in the study's header line, so a store restart
    rebuilds the exact same method, search space, constraint spec and
    proposal RNG.  Service studies have no in-process objective: the
    ``default`` variant's methods learn feasibility from the measurements
    clients report, which is the natural service-side counterpart of the
    paper's a-priori screening.
    """

    name: str
    space: SearchSpace
    solver: str = "Rand"
    variant: str = "default"
    seed: int = 0
    power_budget_w: float | None = None
    memory_budget_bytes: float | None = None
    latency_budget_s: float | None = None
    quota: StudyQuota = field(default_factory=StudyQuota)
    #: Extra ``build_method`` keywords (``sigma``, ``n_init``, ``gp_*``…).
    method_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _validate_name(self.name)

    def constraint_spec(self) -> ConstraintSpec:
        return ConstraintSpec(
            power_budget_w=self.power_budget_w,
            memory_budget_bytes=self.memory_budget_bytes,
            latency_budget_s=self.latency_budget_s,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "space": self.space.to_dict(),
            "solver": self.solver,
            "variant": self.variant,
            "seed": self.seed,
            "power_budget_w": self.power_budget_w,
            "memory_budget_bytes": self.memory_budget_bytes,
            "latency_budget_s": self.latency_budget_s,
            "quota": self.quota.to_dict(),
            "method_options": dict(self.method_options),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StudySpec":
        if not isinstance(data, dict):
            raise InvalidParamsError("study spec must be an object")
        extra = set(data) - set(cls.__dataclass_fields__)
        if extra:
            raise InvalidParamsError(f"unknown spec fields {sorted(extra)}")
        kwargs = dict(data)
        try:
            kwargs["space"] = SearchSpace.from_dict(kwargs["space"])
        except KeyError:
            raise InvalidParamsError("study spec missing 'space'") from None
        except ValueError as exc:
            raise InvalidParamsError(str(exc)) from None
        if "quota" in kwargs:
            try:
                kwargs["quota"] = StudyQuota.from_dict(kwargs["quota"])
            except ValueError as exc:
                raise InvalidParamsError(str(exc)) from None
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise InvalidParamsError(str(exc)) from None


def _build_study(spec: StudySpec) -> Study:
    """Deterministically rebuild the core study a spec describes."""
    # Imported here: hyperpower imports the study module this depends on.
    from ..core.hyperpower import build_method

    # A-priori hardware models are fitted from device profiling the
    # service never has, so the ``hyperpower`` variant's method proposes
    # without model screening; the study still enforces budgets on the
    # *measured* values clients report.  The ``default`` variant keeps
    # the full spec — its learned constraint GPs fit those same
    # measurements, exactly as in the closed loop.
    method_spec = spec.constraint_spec()
    if spec.variant == "hyperpower":
        method_spec = ConstraintSpec()
    try:
        method = build_method(
            spec.solver,
            spec.variant,
            spec.space,
            method_spec,
            **dict(spec.method_options),
        )
    except (TypeError, ValueError) as exc:
        raise InvalidParamsError(str(exc)) from None
    # The name tag decorrelates same-seed studies, like the experiment
    # harness's solver/variant tag does for its repeat streams.
    name_tag = zlib.crc32(spec.name.encode("utf-8"))
    rng = np.random.default_rng(
        np.random.SeedSequence([int(spec.seed), 9, name_tag])
    )
    return Study(
        method,
        spec.variant,
        clock=SimClock(),
        rng=rng,
        spec=spec.constraint_spec(),
        dataset=spec.name,
        device="service",
    )


class ManagedStudy:
    """One named study: core ask/tell state + lock + quotas + journal."""

    def __init__(self, spec: StudySpec, directory: Path, *, fsync: bool = True,
                 timer=time.monotonic):
        self.spec = spec
        self.directory = Path(directory)
        self.journal_path = self.directory / "study.jsonl"
        self.study = _build_study(spec)
        self.lock = threading.RLock()
        self._fsync = fsync
        self._event = 0
        self._writer: JsonlWriter | None = None
        self._bucket = None
        if spec.quota.requests_per_s is not None:
            self._bucket = TokenBucket(
                spec.quota.requests_per_s, spec.quota.request_burst, timer
            )

    # -- creation and resume ---------------------------------------------------------

    @classmethod
    def create(cls, spec: StudySpec, directory: Path, *, fsync: bool = True,
               timer=time.monotonic) -> "ManagedStudy":
        """Create a fresh study and durably write its journal header."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        managed = cls(spec, directory, fsync=fsync, timer=timer)
        managed._writer = JsonlWriter(managed.journal_path, fsync=fsync)
        managed._writer.write(
            {"format": STUDY_JOURNAL_FORMAT, "meta": {"spec": spec.to_dict()}}
        )
        return managed

    @classmethod
    def load(cls, directory: Path, *, fsync: bool = True,
             timer=time.monotonic) -> "ManagedStudy":
        """Resume a study from its journal, bit-exactly.

        The valid line prefix is replayed through a freshly rebuilt
        study (verifying every recomputed suggestion and recorded trial
        against the journal), any torn tail is truncated, and the
        journal reopens for appending.
        """
        directory = Path(directory)
        path = directory / "study.jsonl"
        records = scan_jsonl(path.read_bytes())
        if not records:
            raise ValueError(f"{path}: no intact journal header")
        header, keep = records[0]
        if header.get("format") != STUDY_JOURNAL_FORMAT:
            raise ValueError(
                f"{path}: not a study journal (format "
                f"{header.get('format')!r})"
            )
        spec = StudySpec.from_dict(header.get("meta", {}).get("spec", {}))
        managed = cls(spec, directory, fsync=fsync, timer=timer)
        for record, end in records[1:]:
            managed._replay_event(record)
            keep = end
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        managed._writer = JsonlWriter(path, append=True, fsync=fsync)
        return managed

    def _replay_event(self, record: dict) -> None:
        expected = self._event
        if record.get("event") != expected:
            raise ValueError(
                f"{self.journal_path}: journal event {record.get('event')!r} "
                f"out of order (expected {expected})"
            )
        op = record.get("op")
        if op == "suggest":
            tickets = record["tickets"]
            configs = record["configs"]
            suggestions = self.study.suggest(len(tickets))
            if len(suggestions) != len(tickets):
                raise ValueError(
                    f"{self.journal_path}: replayed suggest produced "
                    f"{len(suggestions)} proposals, journal has {len(tickets)}"
                )
            for suggestion, ticket, config in zip(suggestions, tickets, configs):
                recomputed = canonical_config_key(suggestion.config)
                journaled = canonical_config_key(self.spec.space.coerce(config))
                if suggestion.ticket != ticket or recomputed != journaled:
                    raise ValueError(
                        f"{self.journal_path}: replayed suggestion "
                        f"{suggestion.ticket} diverged from the journal "
                        "(non-deterministic method or corrupted journal)"
                    )
        elif op == "observe":
            report = TrialReport.from_dict(record["report"])
            trial = self.study.observe(int(record["ticket"]), report)
            recorded = json.dumps(trial_to_dict(trial), sort_keys=True)
            journaled = json.dumps(record["trial"], sort_keys=True)
            if recorded != journaled:
                raise ValueError(
                    f"{self.journal_path}: replayed trial "
                    f"{trial.index} diverged from the journal"
                )
        else:
            raise ValueError(
                f"{self.journal_path}: unknown journal op {op!r}"
            )
        self._event += 1

    def _append(self, record: dict) -> None:
        if self._writer is None:
            raise ValueError(f"study {self.spec.name!r} is closed")
        record = {"event": self._event, **record}
        self._writer.write(record)
        self._event += 1

    # -- the ask/tell surface --------------------------------------------------------

    def suggest(self, n: int = 1) -> list[dict]:
        """Issue ``n`` pending-aware suggestions, quota-checked, journaled."""
        if not isinstance(n, int) or n < 1:
            raise InvalidParamsError("n must be a positive integer")
        with self.lock:
            check_request(self._bucket, self.spec.name)
            quota = self.spec.quota
            if (
                quota.max_pending is not None
                and self.study.n_pending + n > quota.max_pending
            ):
                raise QuotaExceededError(
                    f"study {self.spec.name!r} would exceed max_pending",
                    data={
                        "quota": "max_pending",
                        "limit": quota.max_pending,
                        "pending": self.study.n_pending,
                        "requested": n,
                    },
                )
            if (
                quota.max_trials is not None
                and self.study.n_issued + n > quota.max_trials
            ):
                raise QuotaExceededError(
                    f"study {self.spec.name!r} would exceed max_trials",
                    data={
                        "quota": "max_trials",
                        "limit": quota.max_trials,
                        "issued": self.study.n_issued,
                        "requested": n,
                    },
                )
            suggestions = self.study.suggest(n)
            self._append(
                {
                    "op": "suggest",
                    "tickets": [s.ticket for s in suggestions],
                    "configs": [dict(s.config) for s in suggestions],
                }
            )
            return [
                {
                    "ticket": s.ticket,
                    "config": dict(s.config),
                    "duplicate_of": s.duplicate_of,
                }
                for s in suggestions
            ]

    def observe(self, ticket, report) -> dict:
        """Fold one reported result back; returns the recorded trial."""
        try:
            ticket = int(ticket)
        except (TypeError, ValueError):
            raise InvalidParamsError("ticket must be an integer") from None
        if isinstance(report, dict):
            try:
                report = TrialReport.from_dict(report)
            except (TypeError, ValueError) as exc:
                raise InvalidParamsError(str(exc)) from None
        elif not isinstance(report, TrialReport):
            raise InvalidParamsError("report must be a trial-report object")
        with self.lock:
            check_request(self._bucket, self.spec.name)
            try:
                self.study.get_pending(ticket)
            except KeyError:
                raise UnknownTicketError(
                    f"study {self.spec.name!r} has no pending ticket {ticket}",
                    data={"ticket": ticket, "study": self.spec.name},
                ) from None
            trial = self.study.observe(ticket, report)
            trial_dict = trial_to_dict(trial)
            self._append(
                {
                    "op": "observe",
                    "ticket": ticket,
                    "report": report.to_dict(),
                    "trial": trial_dict,
                }
            )
            return trial_dict

    def status(self) -> dict:
        """Durable-state summary of the study."""
        with self.lock:
            study = self.study
            best = study.best_trial()
            return {
                "name": self.spec.name,
                "solver": self.spec.solver,
                "variant": self.spec.variant,
                "n_issued": study.n_issued,
                "n_pending": study.n_pending,
                "n_trained": study.n_trained,
                "n_samples": study.n_samples,
                "wall_time_s": study.clock.now_s,
                "best": None
                if best is None
                else {"config": dict(best.config), "error": best.error},
                "quota": self.spec.quota.to_dict(),
            }

    def trials(self) -> list[dict]:
        """Every recorded trial, in order (the run-result record)."""
        with self.lock:
            return [trial_to_dict(t) for t in self.study.result.trials]

    def close(self) -> None:
        with self.lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None


class StudyStore:
    """Thread-safe store of many named studies rooted at one directory.

    Studies load lazily: a store pointed at an existing root resumes each
    study from its journal on first access.  The per-study lock spans the
    state mutation *and* its journal append, so concurrent clients of one
    study serialize while different studies progress in parallel.
    """

    def __init__(self, root, *, fsync: bool = True, timer=time.monotonic,
                 metrics=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._timer = timer
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_creates = self.metrics.counter("store.creates")
        self._m_resumes = self.metrics.counter("store.resumes")
        self._m_suggests = self.metrics.counter("store.suggests")
        self._m_observes = self.metrics.counter("store.observes")
        self._studies: dict[str, ManagedStudy] = {}
        self._lock = threading.Lock()
        self._closed = False

    # -- lifecycle -------------------------------------------------------------------

    def create_study(self, spec) -> dict:
        """Create (and durably journal) a new named study."""
        if isinstance(spec, dict):
            spec = StudySpec.from_dict(spec)
        name = spec.name
        with self._lock:
            self._check_open()
            if name in self._studies or (
                self.root / name / "study.jsonl"
            ).exists():
                raise StudyExistsError(
                    f"study {name!r} already exists", data={"study": name}
                )
            managed = ManagedStudy.create(
                spec, self.root / name, fsync=self._fsync, timer=self._timer
            )
            self._studies[name] = managed
        self._m_creates.inc()
        return managed.status()

    def get(self, name: str) -> ManagedStudy:
        """The managed study, resumed from disk on first access."""
        _validate_name(name)
        with self._lock:
            self._check_open()
            managed = self._studies.get(name)
            if managed is not None:
                return managed
            directory = self.root / name
            if not (directory / "study.jsonl").exists():
                raise UnknownStudyError(
                    f"no study named {name!r}", data={"study": name}
                )
            managed = ManagedStudy.load(
                directory, fsync=self._fsync, timer=self._timer
            )
            self._studies[name] = managed
            self._m_resumes.inc()
            return managed

    def list_studies(self) -> list[str]:
        """Names of every study, on disk or in memory, sorted."""
        with self._lock:
            self._check_open()
            names = set(self._studies)
        for path in self.root.iterdir() if self.root.exists() else ():
            if (path / "study.jsonl").exists():
                names.add(path.name)
        return sorted(names)

    def close(self) -> None:
        """Close every study's journal; further calls are rejected."""
        with self._lock:
            self._closed = True
            studies = list(self._studies.values())
            self._studies.clear()
        for managed in studies:
            managed.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("study store is closed")

    # -- the ask/tell surface --------------------------------------------------------

    def suggest(self, name: str, n: int = 1) -> list[dict]:
        suggestions = self.get(name).suggest(n)
        self._m_suggests.inc(len(suggestions))
        return suggestions

    def observe(self, name: str, ticket, report) -> dict:
        trial = self.get(name).observe(ticket, report)
        self._m_observes.inc()
        return trial

    def status(self, name: str) -> dict:
        return self.get(name).status()

    def trials(self, name: str) -> list[dict]:
        return self.get(name).trials()
