"""The multi-tenant study store.

A :class:`StudyStore` holds many named, long-lived ask/tell studies —
each a :class:`~repro.core.study.Study` wrapped in a :class:`ManagedStudy`
that adds per-study locking, quota enforcement and a crash-safe event
journal.  The journal (``<root>/<name>/study.jsonl``, format
``repro-study/1``) reuses the run-journal machinery: a header line
carrying the full :class:`StudySpec`, then one fsynced line per
suggest/observe event, with torn tails truncated on reopen.

Resume is *recomputed*, like the driver journal's: suggest events replay
by re-asking the rebuilt study (all RNG draws, clock charges and
surrogate updates recompute identically) and are verified against the
journaled configurations via the canonical configuration hash — with the
values coerced back through the search space first, because JSON blurs
``3``/``3.0`` and the hash does not.  Observe events substitute the
journaled reports and verify the resulting trial record byte for byte.
A study killed at any request boundary therefore resumes bit-exactly.

Three hardening layers ride on top of that contract:

* **Exactly-once retries.**  ``suggest``/``observe`` accept an optional
  idempotency ``key``.  Keys are journaled with their event and remembered
  in a bounded per-study window (:attr:`~repro.service.quotas.StudyQuota.
  dedupe_window`), so an at-least-once retry — after a timeout, a dropped
  connection or a shed request — replays the recorded response instead of
  issuing a duplicate ticket or double-observing a trial.  The window is
  rebuilt on resume from the journaled keys, so exactly-once survives
  restarts.
* **Crash-only writes.**  A failed journal append (typed
  :class:`~repro.telemetry.jsonl.JournalWriteError`, real or chaos-
  injected) *poisons* the study: the in-memory state — which already
  advanced past the un-journaled event — is discarded and the store
  reloads the study from the intact journal on next access, exactly like
  a process crash and restart, but scoped to one study.  The caller sees
  a retryable :class:`~repro.service.errors.StorageError`.
* **Snapshot compaction.**  :meth:`ManagedStudy.snapshot` writes the full
  study state (a pickle whose resume behavior is verified bit-exact
  against replay) to ``study.snap`` via the classic two-phase dance —
  temp file, fsync, atomic rename, directory fsync — then truncates the
  event journal back to its header.  Recovery cost drops from O(all
  events) to O(events since the last snapshot); a torn or stale snapshot
  is detected by CRC and ignored in favor of full replay.
"""

from __future__ import annotations

import copy
import json
import os
import pickle
import threading
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.clock import SimClock
from ..core.constraints import ConstraintSpec
from ..core.parallel import canonical_config_key
from ..core.study import Study, TrialReport
from ..io import trial_to_dict
from ..space.space import SearchSpace
from ..telemetry.jsonl import JournalWriteError, JsonlWriter, scan_jsonl
from ..telemetry.metrics import NOOP_METRICS
from ..telemetry.tracer import NOOP_TRACER
from .errors import (
    InvalidParamsError,
    QuotaExceededError,
    StorageError,
    StudyExistsError,
    UnknownStudyError,
    UnknownTicketError,
)
from .quotas import StudyQuota, TokenBucket, check_request

__all__ = [
    "STUDY_JOURNAL_FORMAT",
    "STUDY_SNAPSHOT_FORMAT",
    "StudySpec",
    "ManagedStudy",
    "StudyStore",
]

#: Format tag of the per-study event journal.
STUDY_JOURNAL_FORMAT = "repro-study/1"

#: Format tag of the per-study snapshot file.
STUDY_SNAPSHOT_FORMAT = "repro-study-snap/1"

#: Pickle protocol pinned for snapshot payload stability.
_SNAPSHOT_PICKLE_PROTOCOL = 4

#: Study names must be filesystem- and URL-safe.
_NAME_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def _validate_name(name: str) -> str:
    if not isinstance(name, str) or not (1 <= len(name) <= 64):
        raise InvalidParamsError("study name must be 1-64 characters")
    if name.startswith(".") or not set(name) <= _NAME_CHARS:
        raise InvalidParamsError(
            f"invalid study name {name!r}: use letters, digits, '.', '_', "
            "'-' and do not start with '.'"
        )
    return name


def _validate_key(key) -> str | None:
    """Validate an optional idempotency key."""
    if key is None:
        return None
    if not isinstance(key, str) or not (1 <= len(key) <= 128):
        raise InvalidParamsError(
            "idempotency key must be a string of 1-128 characters"
        )
    return key


@dataclass(frozen=True)
class StudySpec:
    """Everything needed to (re)build one service study deterministically.

    The spec is journaled in the study's header line, so a store restart
    rebuilds the exact same method, search space, constraint spec and
    proposal RNG.  Service studies have no in-process objective: the
    ``default`` variant's methods learn feasibility from the measurements
    clients report, which is the natural service-side counterpart of the
    paper's a-priori screening.
    """

    name: str
    space: SearchSpace
    solver: str = "Rand"
    variant: str = "default"
    seed: int = 0
    power_budget_w: float | None = None
    memory_budget_bytes: float | None = None
    latency_budget_s: float | None = None
    quota: StudyQuota = field(default_factory=StudyQuota)
    #: Extra ``build_method`` keywords (``sigma``, ``n_init``, ``gp_*``…).
    method_options: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        _validate_name(self.name)

    def constraint_spec(self) -> ConstraintSpec:
        return ConstraintSpec(
            power_budget_w=self.power_budget_w,
            memory_budget_bytes=self.memory_budget_bytes,
            latency_budget_s=self.latency_budget_s,
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "space": self.space.to_dict(),
            "solver": self.solver,
            "variant": self.variant,
            "seed": self.seed,
            "power_budget_w": self.power_budget_w,
            "memory_budget_bytes": self.memory_budget_bytes,
            "latency_budget_s": self.latency_budget_s,
            "quota": self.quota.to_dict(),
            "method_options": dict(self.method_options),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StudySpec":
        if not isinstance(data, dict):
            raise InvalidParamsError("study spec must be an object")
        extra = set(data) - set(cls.__dataclass_fields__)
        if extra:
            raise InvalidParamsError(f"unknown spec fields {sorted(extra)}")
        kwargs = dict(data)
        try:
            kwargs["space"] = SearchSpace.from_dict(kwargs["space"])
        except KeyError:
            raise InvalidParamsError("study spec missing 'space'") from None
        except ValueError as exc:
            raise InvalidParamsError(str(exc)) from None
        if "quota" in kwargs:
            try:
                kwargs["quota"] = StudyQuota.from_dict(kwargs["quota"])
            except ValueError as exc:
                raise InvalidParamsError(str(exc)) from None
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as exc:
            raise InvalidParamsError(str(exc)) from None


def _build_study(spec: StudySpec) -> Study:
    """Deterministically rebuild the core study a spec describes."""
    # Imported here: hyperpower imports the study module this depends on.
    from ..core.hyperpower import build_method

    # A-priori hardware models are fitted from device profiling the
    # service never has, so the ``hyperpower`` variant's method proposes
    # without model screening; the study still enforces budgets on the
    # *measured* values clients report.  The ``default`` variant keeps
    # the full spec — its learned constraint GPs fit those same
    # measurements, exactly as in the closed loop.
    method_spec = spec.constraint_spec()
    if spec.variant == "hyperpower":
        method_spec = ConstraintSpec()
    try:
        method = build_method(
            spec.solver,
            spec.variant,
            spec.space,
            method_spec,
            **dict(spec.method_options),
        )
    except (TypeError, ValueError) as exc:
        raise InvalidParamsError(str(exc)) from None
    # The name tag decorrelates same-seed studies, like the experiment
    # harness's solver/variant tag does for its repeat streams.
    name_tag = zlib.crc32(spec.name.encode("utf-8"))
    rng = np.random.default_rng(
        np.random.SeedSequence([int(spec.seed), 9, name_tag])
    )
    return Study(
        method,
        spec.variant,
        clock=SimClock(),
        rng=rng,
        spec=spec.constraint_spec(),
        dataset=spec.name,
        device="service",
    )


class ManagedStudy:
    """One named study: core ask/tell state + lock + quotas + journal."""

    def __init__(self, spec: StudySpec, directory: Path, *, fsync: bool = True,
                 timer=time.monotonic, chaos=None, snapshot_every: int | None = None,
                 metrics=None, tracer=None, trace_lock=None):
        if snapshot_every is not None and snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1 (or None)")
        self.spec = spec
        self.directory = Path(directory)
        self.journal_path = self.directory / "study.jsonl"
        self.snapshot_path = self.directory / "study.snap"
        self.study = _build_study(spec)
        self.lock = threading.RLock()
        self._fsync = fsync
        self._chaos = chaos
        self._snapshot_every = snapshot_every
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        # Shared across studies of one store: the tracer's span-id counter
        # is not thread-safe and studies trace from many handler threads.
        self._trace_lock = trace_lock if trace_lock is not None else threading.Lock()
        self._m_write_errors = self.metrics.counter("journal.write_errors")
        self._m_retries = self.metrics.counter("service.retries")
        self._m_snapshots = self.metrics.counter("journal.snapshots")
        self._event = 0
        #: Journal events below this are captured by ``study.snap``.
        self._snap_event = 0
        #: Byte offset just past the journal's header line.
        self._header_end = 0
        #: Bounded idempotency window: key -> {"op", "response"}.
        self._dedupe: OrderedDict[str, dict] = OrderedDict()
        self._poisoned = False
        self._writer: JsonlWriter | None = None
        self._bucket = None
        if spec.quota.requests_per_s is not None:
            self._bucket = TokenBucket(
                spec.quota.requests_per_s, spec.quota.request_burst, timer
            )

    # -- creation and resume ---------------------------------------------------------

    @classmethod
    def create(cls, spec: StudySpec, directory: Path, *, fsync: bool = True,
               timer=time.monotonic, chaos=None, snapshot_every: int | None = None,
               metrics=None, tracer=None, trace_lock=None) -> "ManagedStudy":
        """Create a fresh study and durably write its journal header.

        If the header write itself fails (chaos or a real full disk), the
        partial journal is removed before the typed error propagates, so
        a retried create does not collide with its own debris.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        managed = cls(spec, directory, fsync=fsync, timer=timer, chaos=chaos,
                      snapshot_every=snapshot_every, metrics=metrics,
                      tracer=tracer, trace_lock=trace_lock)
        managed._writer = JsonlWriter(
            managed.journal_path, fsync=fsync, chaos=chaos
        )
        try:
            managed._writer.write(
                {"format": STUDY_JOURNAL_FORMAT, "meta": {"spec": spec.to_dict()}}
            )
        except JournalWriteError as exc:
            managed._m_write_errors.inc()
            try:
                managed._writer.close()
            except OSError:
                pass
            managed._writer = None
            try:
                managed.journal_path.unlink()
            except OSError:
                pass
            raise StorageError(
                f"study {spec.name!r} could not be created: journal "
                f"{exc.op} failed ({exc.kind})",
                data={"study": spec.name, "op": exc.op, "kind": exc.kind,
                      "retryable": True},
            ) from exc
        managed._header_end = managed._writer.visible_offset
        return managed

    @classmethod
    def load(cls, directory: Path, *, fsync: bool = True,
             timer=time.monotonic, chaos=None, snapshot_every: int | None = None,
             metrics=None, tracer=None, trace_lock=None) -> "ManagedStudy":
        """Resume a study from its snapshot + journal, bit-exactly.

        A valid ``study.snap`` restores the state through its captured
        event in O(1); the journal's valid line prefix then replays only
        the events past the snapshot through a freshly rebuilt study
        (verifying every recomputed suggestion and recorded trial against
        the journal).  Any torn journal tail is truncated, a torn or
        corrupt snapshot is ignored in favor of full replay, and the
        journal reopens for appending.
        """
        directory = Path(directory)
        path = directory / "study.jsonl"
        records = scan_jsonl(path.read_bytes())
        if not records:
            raise ValueError(f"{path}: no intact journal header")
        header, keep = records[0]
        if header.get("format") != STUDY_JOURNAL_FORMAT:
            raise ValueError(
                f"{path}: not a study journal (format "
                f"{header.get('format')!r})"
            )
        spec = StudySpec.from_dict(header.get("meta", {}).get("spec", {}))
        managed = cls(spec, directory, fsync=fsync, timer=timer, chaos=chaos,
                      snapshot_every=snapshot_every, metrics=metrics,
                      tracer=tracer, trace_lock=trace_lock)
        managed._header_end = keep
        snapshot = cls._read_snapshot(managed.snapshot_path)
        if snapshot is not None:
            managed.study = snapshot["study"]
            managed._dedupe = OrderedDict(snapshot["dedupe"])
            managed._event = managed._snap_event = snapshot["event"]
        elif len(records) > 1 and records[1][0].get("event", 0) > 0:
            # The journal was compacted past its missing/corrupt
            # snapshot: the events below the compaction point are gone
            # and replay cannot reconstruct the study.
            raise ValueError(
                f"{path}: journal is compacted (first event "
                f"{records[1][0].get('event')!r}) but "
                f"{managed.snapshot_path.name} is missing or corrupt"
            )
        for record, end in records[1:]:
            event = record.get("event")
            if isinstance(event, int) and event < managed._snap_event:
                # Pre-snapshot event surviving a crash between the
                # snapshot rename and the journal truncation: already
                # captured by the snapshot state, skip it.
                keep = end
                continue
            managed._replay_event(record)
            keep = end
        with open(path, "r+b") as fh:
            fh.truncate(keep)
        managed._writer = JsonlWriter(path, append=True, fsync=fsync,
                                      chaos=chaos)
        return managed

    @staticmethod
    def _read_snapshot(path: Path) -> dict | None:
        """Parse and validate a snapshot file; None if absent/corrupt."""
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        newline = raw.find(b"\n")
        if newline < 0:
            return None
        try:
            header = json.loads(raw[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if (
            not isinstance(header, dict)
            or header.get("format") != STUDY_SNAPSHOT_FORMAT
        ):
            return None
        payload = raw[newline + 1:]
        if (
            len(payload) != header.get("payload_bytes")
            or zlib.crc32(payload) != header.get("crc32")
        ):
            return None
        try:
            state = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any corruption falls back to replay
            return None
        if not isinstance(state, dict) or "study" not in state:
            return None
        return {
            "event": int(header.get("event", 0)),
            "study": state["study"],
            "dedupe": state.get("dedupe", []),
        }

    def _replay_event(self, record: dict) -> None:
        expected = self._event
        if record.get("event") != expected:
            raise ValueError(
                f"{self.journal_path}: journal event {record.get('event')!r} "
                f"out of order (expected {expected})"
            )
        op = record.get("op")
        if op == "suggest":
            tickets = record["tickets"]
            configs = record["configs"]
            suggestions = self.study.suggest(len(tickets))
            if len(suggestions) != len(tickets):
                raise ValueError(
                    f"{self.journal_path}: replayed suggest produced "
                    f"{len(suggestions)} proposals, journal has {len(tickets)}"
                )
            for suggestion, ticket, config in zip(suggestions, tickets, configs):
                recomputed = canonical_config_key(suggestion.config)
                journaled = canonical_config_key(self.spec.space.coerce(config))
                if suggestion.ticket != ticket or recomputed != journaled:
                    raise ValueError(
                        f"{self.journal_path}: replayed suggestion "
                        f"{suggestion.ticket} diverged from the journal "
                        "(non-deterministic method or corrupted journal)"
                    )
            response = [
                {
                    "ticket": s.ticket,
                    "config": dict(s.config),
                    "duplicate_of": s.duplicate_of,
                }
                for s in suggestions
            ]
        elif op == "observe":
            report = TrialReport.from_dict(record["report"])
            trial = self.study.observe(int(record["ticket"]), report)
            recorded = json.dumps(trial_to_dict(trial), sort_keys=True)
            journaled = json.dumps(record["trial"], sort_keys=True)
            if recorded != journaled:
                raise ValueError(
                    f"{self.journal_path}: replayed trial "
                    f"{trial.index} diverged from the journal"
                )
            response = record["trial"]
        else:
            raise ValueError(
                f"{self.journal_path}: unknown journal op {op!r}"
            )
        self._event += 1
        self._remember(record.get("key"), op, response)

    # -- durability plumbing ---------------------------------------------------------

    @property
    def poisoned(self) -> bool:
        """Whether a failed journal write invalidated the in-memory state."""
        return self._poisoned

    def _poison(self) -> None:
        """Discard this instance after a failed append (crash-only).

        The in-memory study advanced past an event the journal never
        recorded; rolling that back piecemeal is exactly the kind of
        subtle state surgery that drifts.  Instead the instance is marked
        dead and the store reloads the study from its intact journal —
        a micro-crash-and-restart scoped to one study.
        """
        self._poisoned = True
        if self._writer is not None:
            try:
                # Plain close (not crash): acknowledged delayed records
                # still flush — only the failed, unacknowledged event is
                # lost, which is the point.
                self._writer.close()
            except OSError:
                pass
            self._writer = None

    def _append(self, record: dict) -> None:
        if self._writer is None:
            state = "poisoned" if self._poisoned else "closed"
            raise StorageError(
                f"study {self.spec.name!r} is {state}; retry the request",
                data={"study": self.spec.name, "retryable": True},
            )
        record = {"event": self._event, **record}
        try:
            self._writer.write(record)
        except JournalWriteError as exc:
            self._m_write_errors.inc()
            self._poison()
            raise StorageError(
                f"study {self.spec.name!r} journal {exc.op} failed "
                f"({exc.kind}); state reloaded, retry the request",
                data={"study": self.spec.name, "op": exc.op,
                      "kind": exc.kind, "retryable": True},
            ) from exc
        self._event += 1

    def _remember(self, key: str | None, op: str, response) -> None:
        """Record a response in the bounded idempotency window."""
        window = self.spec.quota.dedupe_window
        if key is None or window == 0:
            return
        self._dedupe[key] = {"op": op, "response": response}
        self._dedupe.move_to_end(key)
        while len(self._dedupe) > window:
            self._dedupe.popitem(last=False)

    def _replay_response(self, key: str, op: str):
        """The remembered response for a retried key, or a miss marker."""
        cached = self._dedupe.get(key)
        if cached is None:
            return None
        if cached["op"] != op:
            raise InvalidParamsError(
                f"idempotency key {key!r} was already used for "
                f"{cached['op']!r}, not {op!r}"
            )
        self._m_retries.inc()
        return {"response": copy.deepcopy(cached["response"])}

    # -- snapshot compaction ---------------------------------------------------------

    def snapshot(self) -> int:
        """Write a crash-safe snapshot and compact the event journal.

        Two-phase: the full study state (whose pickle round-trip is
        resume-equivalent to journal replay) is written to a temp file,
        fsynced, atomically renamed over ``study.snap``, and the
        directory entry fsynced — only then is the journal truncated back
        to its header.  A crash at any point leaves a loadable pair:
        before the rename the old snapshot (or none) plus the full
        journal; after it, the new snapshot plus a journal whose stale
        prefix the loader skips.  Returns the snapshot's event count.
        """
        with self.lock:
            if self._writer is None:
                state = "poisoned" if self._poisoned else "closed"
                raise StorageError(
                    f"study {self.spec.name!r} is {state}; cannot snapshot",
                    data={"study": self.spec.name, "retryable": True},
                )
            with self._trace_lock:
                span = self.tracer.span(
                    "journal.snapshot", study=self.spec.name, event=self._event
                )
                span.__enter__()
            try:
                event = self._snapshot_locked()
            finally:
                with self._trace_lock:
                    span.__exit__(None, None, None)
            return event

    def _snapshot_locked(self) -> int:
        # Acknowledged-but-delayed records must land before the journal
        # is truncated, or compaction would turn them into losses.
        self._writer.flush()
        payload = pickle.dumps(
            {"study": self.study, "dedupe": list(self._dedupe.items())},
            protocol=_SNAPSHOT_PICKLE_PROTOCOL,
        )
        header = {
            "format": STUDY_SNAPSHOT_FORMAT,
            "event": self._event,
            "payload_bytes": len(payload),
            "crc32": zlib.crc32(payload),
        }
        tmp = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                fh.write(json.dumps(header).encode("utf-8") + b"\n")
                fh.write(payload)
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.snapshot_path)
            if self._fsync:
                dir_fd = os.open(self.directory, os.O_RDONLY)
                try:
                    os.fsync(dir_fd)
                finally:
                    os.close(dir_fd)
        except OSError as exc:
            try:
                tmp.unlink()
            except OSError:
                pass
            self._m_write_errors.inc()
            raise StorageError(
                f"study {self.spec.name!r} snapshot failed: {exc}",
                data={"study": self.spec.name, "op": "snapshot",
                      "kind": "os", "retryable": True},
            ) from exc
        # The snapshot is durable; compact the journal back to its
        # header.  A failure past this point must not lose the (already
        # safe) state: reopen or, failing that, poison for reload.
        self._writer.close()
        self._writer = None
        try:
            with open(self.journal_path, "r+b") as fh:
                fh.truncate(self._header_end)
                fh.flush()
                if self._fsync:
                    os.fsync(fh.fileno())
            self._writer = JsonlWriter(
                self.journal_path, append=True, fsync=self._fsync,
                chaos=self._chaos,
            )
        except OSError as exc:
            self._m_write_errors.inc()
            self._poison()
            raise StorageError(
                f"study {self.spec.name!r} journal compaction failed: {exc}",
                data={"study": self.spec.name, "op": "snapshot",
                      "kind": "os", "retryable": True},
            ) from exc
        self._snap_event = self._event
        self._m_snapshots.inc()
        return self._event

    def _maybe_snapshot(self) -> None:
        """Auto-compact after enough events since the last snapshot.

        Called with the request already journaled and acknowledged, so a
        snapshot failure here must not fail the request — unless it
        poisoned the study, the journal is intact and the next request
        simply retries the compaction.
        """
        if self._snapshot_every is None:
            return
        if self._event - self._snap_event < self._snapshot_every:
            return
        try:
            self.snapshot()
        except StorageError:
            pass

    # -- the ask/tell surface --------------------------------------------------------

    def suggest(self, n: int = 1, key: str | None = None) -> list[dict]:
        """Issue ``n`` pending-aware suggestions, quota-checked, journaled.

        With an idempotency ``key``, a retry of a previously acknowledged
        call returns the recorded response without issuing new tickets —
        and without charging the rate bucket, so retry storms cannot
        starve first-time requests.
        """
        if not isinstance(n, int) or n < 1:
            raise InvalidParamsError("n must be a positive integer")
        key = _validate_key(key)
        with self.lock:
            if key is not None:
                cached = self._replay_response(key, "suggest")
                if cached is not None:
                    return cached["response"]
            check_request(self._bucket, self.spec.name)
            quota = self.spec.quota
            if (
                quota.max_pending is not None
                and self.study.n_pending + n > quota.max_pending
            ):
                raise QuotaExceededError(
                    f"study {self.spec.name!r} would exceed max_pending",
                    data={
                        "quota": "max_pending",
                        "limit": quota.max_pending,
                        "pending": self.study.n_pending,
                        "requested": n,
                    },
                )
            if (
                quota.max_trials is not None
                and self.study.n_issued + n > quota.max_trials
            ):
                raise QuotaExceededError(
                    f"study {self.spec.name!r} would exceed max_trials",
                    data={
                        "quota": "max_trials",
                        "limit": quota.max_trials,
                        "issued": self.study.n_issued,
                        "requested": n,
                    },
                )
            suggestions = self.study.suggest(n)
            record = {
                "op": "suggest",
                "tickets": [s.ticket for s in suggestions],
                "configs": [dict(s.config) for s in suggestions],
            }
            if key is not None:
                record["key"] = key
            self._append(record)
            response = [
                {
                    "ticket": s.ticket,
                    "config": dict(s.config),
                    "duplicate_of": s.duplicate_of,
                }
                for s in suggestions
            ]
            self._remember(key, "suggest", response)
            self._maybe_snapshot()
            return response

    def observe(self, ticket, report, key: str | None = None) -> dict:
        """Fold one reported result back; returns the recorded trial.

        With an idempotency ``key``, a retry of an already-recorded
        observe returns the recorded trial instead of failing with
        :class:`UnknownTicketError` (the ticket is no longer pending) or
        double-counting.
        """
        try:
            ticket = int(ticket)
        except (TypeError, ValueError):
            raise InvalidParamsError("ticket must be an integer") from None
        if isinstance(report, dict):
            try:
                report = TrialReport.from_dict(report)
            except (TypeError, ValueError) as exc:
                raise InvalidParamsError(str(exc)) from None
        elif not isinstance(report, TrialReport):
            raise InvalidParamsError("report must be a trial-report object")
        key = _validate_key(key)
        with self.lock:
            if key is not None:
                cached = self._replay_response(key, "observe")
                if cached is not None:
                    return cached["response"]
            check_request(self._bucket, self.spec.name)
            try:
                self.study.get_pending(ticket)
            except KeyError:
                raise UnknownTicketError(
                    f"study {self.spec.name!r} has no pending ticket {ticket}",
                    data={"ticket": ticket, "study": self.spec.name},
                ) from None
            trial = self.study.observe(ticket, report)
            trial_dict = trial_to_dict(trial)
            record = {
                "op": "observe",
                "ticket": ticket,
                "report": report.to_dict(),
                "trial": trial_dict,
            }
            if key is not None:
                record["key"] = key
            self._append(record)
            self._remember(key, "observe", trial_dict)
            self._maybe_snapshot()
            return trial_dict

    def status(self) -> dict:
        """Durable-state summary of the study."""
        with self.lock:
            study = self.study
            best = study.best_trial()
            return {
                "name": self.spec.name,
                "solver": self.spec.solver,
                "variant": self.spec.variant,
                "n_issued": study.n_issued,
                "n_pending": study.n_pending,
                "n_trained": study.n_trained,
                "n_samples": study.n_samples,
                "wall_time_s": study.clock.now_s,
                "best": None
                if best is None
                else {"config": dict(best.config), "error": best.error},
                "quota": self.spec.quota.to_dict(),
            }

    def trials(self) -> list[dict]:
        """Every recorded trial, in order (the run-result record)."""
        with self.lock:
            return [trial_to_dict(t) for t in self.study.result.trials]

    def flush(self) -> None:
        """Push any delayed journal records durably to disk (drain)."""
        with self.lock:
            if self._writer is not None:
                self._writer.flush()

    def close(self) -> None:
        with self.lock:
            if self._writer is not None:
                self._writer.close()
                self._writer = None


class StudyStore:
    """Thread-safe store of many named studies rooted at one directory.

    Studies load lazily: a store pointed at an existing root resumes each
    study from its snapshot + journal on first access — and a study
    poisoned by a failed journal write is transparently reloaded the same
    way, so one bad append degrades to a scoped micro-restart rather than
    a corrupted server.  The per-study lock spans the state mutation
    *and* its journal append, so concurrent clients of one study
    serialize while different studies progress in parallel.
    """

    def __init__(self, root, *, fsync: bool = True, timer=time.monotonic,
                 metrics=None, tracer=None, chaos=None,
                 snapshot_every: int | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._timer = timer
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self.tracer = tracer if tracer is not None else NOOP_TRACER
        self.chaos = chaos
        self.snapshot_every = snapshot_every
        self._m_creates = self.metrics.counter("store.creates")
        self._m_resumes = self.metrics.counter("store.resumes")
        self._m_reloads = self.metrics.counter("store.reloads")
        self._m_suggests = self.metrics.counter("store.suggests")
        self._m_observes = self.metrics.counter("store.observes")
        self._studies: dict[str, ManagedStudy] = {}
        self._lock = threading.Lock()
        self._trace_lock = threading.Lock()
        self._closed = False

    def _managed_kwargs(self) -> dict:
        return {
            "fsync": self._fsync,
            "timer": self._timer,
            "chaos": self.chaos,
            "snapshot_every": self.snapshot_every,
            "metrics": self.metrics,
            "tracer": self.tracer,
            "trace_lock": self._trace_lock,
        }

    # -- lifecycle -------------------------------------------------------------------

    def create_study(self, spec) -> dict:
        """Create (and durably journal) a new named study."""
        if isinstance(spec, dict):
            spec = StudySpec.from_dict(spec)
        name = spec.name
        with self._lock:
            self._check_open()
            if name in self._studies or (
                self.root / name / "study.jsonl"
            ).exists():
                raise StudyExistsError(
                    f"study {name!r} already exists", data={"study": name}
                )
            managed = ManagedStudy.create(
                spec, self.root / name, **self._managed_kwargs()
            )
            self._studies[name] = managed
        self._m_creates.inc()
        return managed.status()

    def get(self, name: str) -> ManagedStudy:
        """The managed study, resumed from disk on first access.

        A poisoned study (failed journal append) is dropped and reloaded
        from its intact journal — the store-level equivalent of a crash
        and restart, scoped to the one study.
        """
        _validate_name(name)
        with self._lock:
            self._check_open()
            managed = self._studies.get(name)
            if managed is not None and managed.poisoned:
                managed.close()
                del self._studies[name]
                managed = None
                self._m_reloads.inc()
            if managed is not None:
                return managed
            directory = self.root / name
            if not (directory / "study.jsonl").exists():
                raise UnknownStudyError(
                    f"no study named {name!r}", data={"study": name}
                )
            managed = ManagedStudy.load(directory, **self._managed_kwargs())
            self._studies[name] = managed
            self._m_resumes.inc()
            return managed

    def list_studies(self) -> list[str]:
        """Names of every study, on disk or in memory, sorted."""
        with self._lock:
            self._check_open()
            names = set(self._studies)
        for path in self.root.iterdir() if self.root.exists() else ():
            if (path / "study.jsonl").exists():
                names.add(path.name)
        return sorted(names)

    def flush(self) -> None:
        """Durably flush every open journal (the drain path)."""
        with self._lock:
            studies = list(self._studies.values())
        for managed in studies:
            managed.flush()

    def close(self) -> None:
        """Close every study's journal; further calls are rejected."""
        with self._lock:
            self._closed = True
            studies = list(self._studies.values())
            self._studies.clear()
        for managed in studies:
            managed.close()

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError("study store is closed")

    # -- the ask/tell surface --------------------------------------------------------

    def suggest(self, name: str, n: int = 1, key: str | None = None) -> list[dict]:
        suggestions = self.get(name).suggest(n, key=key)
        self._m_suggests.inc(len(suggestions))
        return suggestions

    def observe(self, name: str, ticket, report, key: str | None = None) -> dict:
        trial = self.get(name).observe(ticket, report, key=key)
        self._m_observes.inc()
        return trial

    def status(self, name: str) -> dict:
        return self.get(name).status()

    def trials(self, name: str) -> list[dict]:
        return self.get(name).trials()
