"""The stdlib JSON-RPC 2.0 HTTP front end of the study store.

One ``POST /`` endpoint accepts single or batched JSON-RPC requests:

========================  =====================================================
``study.create``          ``{"spec": {...}}`` — create a named study
``study.suggest``         ``{"study": name, "n": k, "key": id?}``
``study.observe``         ``{"study": name, "ticket": t, "report": {...},
                          "key": id?}``
``study.status``          ``{"study": name}`` — progress + best + quota
``study.trials``          ``{"study": name}`` — full trial record
``study.list``            ``{}`` — names of every study
``service.stats``         ``{}`` — metrics snapshot + study names
========================  =====================================================

plus two GET health endpoints: ``/healthz`` (liveness — 200 whenever the
process can answer) and ``/readyz`` (readiness — 503 with a
``Retry-After`` header while draining or saturated, so load balancers
steer new work away before the server has to shed it).

Expected failures are JSON-RPC *error objects* with the typed codes of
:mod:`repro.service.errors`, always under HTTP 200 — an over-quota
suggest is a protocol answer, not a server failure; unexpected exceptions
map to code -32603 rather than a 500 so clients always get JSON back.

Overload protection is *bounded admission*: at most ``max_inflight``
payloads execute concurrently, and excess (or post-drain) requests are
shed with a typed :class:`~repro.service.errors.OverloadedError`
carrying ``retry_after_s`` — nothing executed, so the client may blindly
retry after the suggested backoff.  :meth:`StudyServer.drain` implements
graceful shutdown: stop admitting, wait for in-flight requests, then
durably flush every journal — an accepted (journaled) request is never
lost.

Requests are traced into the shared telemetry subsystem: each dispatch
records an ``rpc`` span (the server's tracer runs on a wall clock — a
service has no simulated time of its own; the *studies'* clocks stay
simulated) and bumps ``rpc.requests``/``rpc.errors``/``service.shed``
counters alongside the store's own metrics.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..telemetry.jsonl import JournalWriteError
from ..telemetry.metrics import NOOP_METRICS
from ..telemetry.tracer import NOOP_TRACER
from .errors import (
    INTERNAL_ERROR,
    INVALID_REQUEST,
    METHOD_NOT_FOUND,
    PARSE_ERROR,
    InvalidParamsError,
    OverloadedError,
    ServiceError,
    StorageError,
    error_to_dict,
)
from .store import StudySpec, StudyStore

__all__ = ["WallClock", "StudyServer", "StudyRequestHandler", "serve"]


class WallClock:
    """Monotonic wall time with the tracer's ``now_s`` interface.

    Service spans measure real request latency; study clocks remain
    simulated and advance only by reported trial costs.
    """

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    @property
    def now_s(self) -> float:
        return time.monotonic() - self._t0


class StudyRequestHandler(BaseHTTPRequestHandler):
    """One JSON-RPC-over-HTTP exchange (keep-alive friendly)."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-study/1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the tracer records requests; stderr chatter helps nobody

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length)
        except (TypeError, ValueError):
            raw = b""
        response = self.server.handle_payload(raw)
        body = json.dumps(response).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._send_health(200, self.server.health())
        elif self.path == "/readyz":
            status, body = self.server.readiness()
            self._send_health(status, body)
        else:
            self._send_health(404, {"error": f"unknown path {self.path!r}"})

    def _send_health(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status == 503:
            self.send_header(
                "Retry-After",
                str(payload.get("retry_after_s", 1.0)),
            )
        self.end_headers()
        self.wfile.write(body)


class StudyServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`StudyStore`.

    Bind to port 0 to let the OS pick; the chosen port is
    ``server.server_address[1]``.  ``max_inflight`` bounds concurrently
    executing payloads (``None`` disables shedding); :meth:`drain`
    performs the graceful-shutdown handshake.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, store: StudyStore, *, telemetry=None,
                 max_inflight: int | None = None, retry_after_s: float = 0.5):
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be >= 1 (or None)")
        super().__init__(tuple(address), StudyRequestHandler)
        self.store = store
        self.telemetry = telemetry
        if telemetry is None:
            self.tracer = NOOP_TRACER
            self.metrics = NOOP_METRICS
        else:
            self.tracer = telemetry.tracer
            self.metrics = telemetry.metrics
            if self.tracer.clock is None:
                self.tracer.clock = WallClock()
        self._m_requests = self.metrics.counter("rpc.requests")
        self._m_errors = self.metrics.counter("rpc.errors")
        self._m_shed = self.metrics.counter("service.shed")
        self.max_inflight = max_inflight
        self.retry_after_s = float(retry_after_s)
        self._inflight = 0
        self._inflight_lock = threading.Lock()
        self._draining = False
        # Span records interleave across handler threads; the tracer's
        # list append is atomic but the id counter is not.
        self._trace_lock = threading.Lock()
        self._methods = {
            "study.create": self._rpc_create,
            "study.suggest": self._rpc_suggest,
            "study.observe": self._rpc_observe,
            "study.status": self._rpc_status,
            "study.trials": self._rpc_trials,
            "study.list": self._rpc_list,
            "service.stats": self._rpc_stats,
        }

    # -- admission and drain ---------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def _admit(self) -> bool:
        """Reserve an execution slot; False sheds the payload."""
        with self._inflight_lock:
            if self._draining:
                return False
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                return False
            self._inflight += 1
            return True

    def _release(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def _shed_error(self) -> OverloadedError:
        reason = "draining" if self._draining else "overloaded"
        return OverloadedError(
            f"server is {reason}; retry after "
            f"{self.retry_after_s:g}s",
            data={"retry_after_s": self.retry_after_s, "reason": reason},
        )

    def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful shutdown: stop admitting, finish in-flight, flush.

        New payloads shed with a typed ``Overloaded`` error (reason
        ``draining``) the moment this is called; in-flight requests run
        to completion (bounded by ``timeout_s``), then every open
        journal is durably flushed.  Returns whether in-flight work
        fully quiesced before the timeout.
        """
        with self._inflight_lock:
            self._draining = True
        deadline = time.monotonic() + timeout_s
        quiesced = False
        while True:
            with self._inflight_lock:
                if self._inflight == 0:
                    quiesced = True
                    break
            if time.monotonic() >= deadline:
                break
            time.sleep(0.005)
        self.store.flush()
        return quiesced

    def health(self) -> dict:
        """Liveness payload: the process is up and answering."""
        return {"status": "ok", "draining": self._draining}

    def readiness(self) -> tuple[int, dict]:
        """Readiness (status, payload): 503 while draining/saturated."""
        with self._inflight_lock:
            draining = self._draining
            saturated = (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            )
        if draining or saturated:
            return 503, {
                "status": "draining" if draining else "overloaded",
                "retry_after_s": self.retry_after_s,
            }
        return 200, {"status": "ready"}

    # -- JSON-RPC plumbing -----------------------------------------------------------

    def handle_payload(self, raw: bytes):
        """Parse and answer one HTTP body (single request or batch).

        Admission is per payload: a shed batch answers every entry with
        the same typed ``Overloaded`` error — nothing in it executed.
        """
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return _error_response(None, PARSE_ERROR, "request is not JSON")
        admitted = self._admit()
        try:
            if isinstance(payload, list):
                if not payload:
                    return _error_response(
                        None, INVALID_REQUEST, "empty batch request"
                    )
                if not admitted:
                    return [self._shed_response(item) for item in payload]
                return [self._handle_one(item) for item in payload]
            if not admitted:
                return self._shed_response(payload)
            return self._handle_one(payload)
        finally:
            if admitted:
                self._release()

    def _shed_response(self, request) -> dict:
        self._m_shed.inc()
        request_id = request.get("id") if isinstance(request, dict) else None
        return {
            "jsonrpc": "2.0",
            "id": request_id,
            "error": error_to_dict(self._shed_error()),
        }

    def _handle_one(self, request) -> dict:
        if not isinstance(request, dict):
            return _error_response(
                None, INVALID_REQUEST, "request must be an object"
            )
        request_id = request.get("id")
        method = request.get("method")
        params = request.get("params") or {}
        if not isinstance(method, str):
            return _error_response(
                request_id, INVALID_REQUEST, "missing method name"
            )
        if not isinstance(params, dict):
            return _error_response(
                request_id, INVALID_REQUEST, "params must be an object"
            )
        handler = self._methods.get(method)
        if handler is None:
            return _error_response(
                request_id, METHOD_NOT_FOUND, f"unknown method {method!r}"
            )
        self._m_requests.inc()
        with self._trace_lock:
            span = self.tracer.span("rpc", method=method)
            span.__enter__()
        error = None
        try:
            result = handler(params)
            response = {"jsonrpc": "2.0", "id": request_id, "result": result}
        except ServiceError as exc:
            error = error_to_dict(exc)
        except JournalWriteError as exc:
            # A storage failure that escaped the store's own wrapping
            # (e.g. a run-journal path) still answers typed, not -32603.
            error = error_to_dict(
                StorageError(
                    f"journal {exc.op} failed ({exc.kind})",
                    data={"op": exc.op, "kind": exc.kind, "retryable": True},
                )
            )
        except Exception as exc:  # noqa: BLE001 - never a 500, always JSON
            error = {
                "code": INTERNAL_ERROR,
                "message": f"{type(exc).__name__}: {exc}",
            }
        if error is not None:
            self._m_errors.inc()
            response = {"jsonrpc": "2.0", "id": request_id, "error": error}
        with self._trace_lock:
            if error is not None:
                span.set(error_code=error["code"])
            span.__exit__(None, None, None)
        return response

    # -- method handlers -------------------------------------------------------------

    @staticmethod
    def _param(params: dict, key: str):
        try:
            return params[key]
        except KeyError:
            raise InvalidParamsError(f"missing parameter {key!r}") from None

    def _rpc_create(self, params: dict) -> dict:
        spec = StudySpec.from_dict(self._param(params, "spec"))
        return self.store.create_study(spec)

    def _rpc_suggest(self, params: dict) -> list:
        name = self._param(params, "study")
        n = params.get("n", 1)
        if not isinstance(n, int) or isinstance(n, bool) or n < 1:
            raise InvalidParamsError("n must be a positive integer")
        return self.store.suggest(name, n, key=params.get("key"))

    def _rpc_observe(self, params: dict) -> dict:
        name = self._param(params, "study")
        ticket = self._param(params, "ticket")
        report = self._param(params, "report")
        if not isinstance(report, dict):
            raise InvalidParamsError("report must be an object")
        return self.store.observe(name, ticket, report, key=params.get("key"))

    def _rpc_status(self, params: dict) -> dict:
        return self.store.status(self._param(params, "study"))

    def _rpc_trials(self, params: dict) -> list:
        return self.store.trials(self._param(params, "study"))

    def _rpc_list(self, params: dict) -> list:
        return self.store.list_studies()

    def _rpc_stats(self, params: dict) -> dict:
        return {
            "studies": self.store.list_studies(),
            "metrics": self.metrics.snapshot(),
            "inflight": self.inflight,
            "draining": self._draining,
        }


def _error_response(request_id, code: int, message: str) -> dict:
    return {
        "jsonrpc": "2.0",
        "id": request_id,
        "error": {"code": code, "message": message},
    }


def serve(store: StudyStore, host: str = "127.0.0.1", port: int = 0,
          *, telemetry=None, max_inflight: int | None = None,
          retry_after_s: float = 0.5) -> StudyServer:
    """Bind a :class:`StudyServer`; the caller runs ``serve_forever``."""
    return StudyServer((host, port), store, telemetry=telemetry,
                       max_inflight=max_inflight, retry_after_s=retry_after_s)
