"""Per-study quotas: trial/pending caps and token-bucket rate limits.

Quotas protect a multi-tenant :class:`~repro.service.store.StudyStore`
from any single study monopolising it: ``max_trials`` bounds the total
number of suggestions a study may ever issue, ``max_pending`` bounds its
outstanding (suggested-but-unobserved) set, and ``requests_per_s`` meters
its request rate through a classic token bucket.  Every breach raises
:class:`~repro.service.errors.QuotaExceededError` — a typed error the
HTTP front end reports with a stable JSON-RPC code, never a 500.

The bucket's time source is injectable so tests (and the simulated-clock
philosophy of this repo) can drive it deterministically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .errors import QuotaExceededError

__all__ = ["StudyQuota", "TokenBucket", "check_request"]


@dataclass(frozen=True)
class StudyQuota:
    """Per-study limits; ``None`` disables the corresponding check."""

    #: Lifetime cap on issued suggestions (and therefore trials).
    max_trials: int | None = None
    #: Cap on suggestions outstanding at any moment.
    max_pending: int | None = None
    #: Sustained request rate (suggest/observe calls per second).
    requests_per_s: float | None = None
    #: Bucket capacity: how many requests may burst above the rate.
    request_burst: int = 20
    #: Idempotency keys remembered per study (exactly-once retries);
    #: 0 disables the dedupe window entirely.
    dedupe_window: int = 256

    def __post_init__(self) -> None:
        if self.max_trials is not None and self.max_trials < 1:
            raise ValueError("max_trials must be >= 1")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if self.requests_per_s is not None and self.requests_per_s <= 0:
            raise ValueError("requests_per_s must be positive")
        if self.request_burst < 1:
            raise ValueError("request_burst must be >= 1")
        if self.dedupe_window < 0:
            raise ValueError("dedupe_window must be >= 0")

    def to_dict(self) -> dict:
        return {
            "max_trials": self.max_trials,
            "max_pending": self.max_pending,
            "requests_per_s": self.requests_per_s,
            "request_burst": self.request_burst,
            "dedupe_window": self.dedupe_window,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StudyQuota":
        known = {f: data[f] for f in cls.__dataclass_fields__ if f in data}
        extra = set(data) - set(cls.__dataclass_fields__)
        if extra:
            raise ValueError(f"unknown quota fields {sorted(extra)}")
        return cls(**known)


class TokenBucket:
    """A token bucket: ``rate`` tokens/s refill up to ``burst`` capacity."""

    def __init__(self, rate: float, burst: int, timer=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._timer = timer
        self._tokens = float(burst)
        self._last = timer()

    @property
    def tokens(self) -> float:
        """Tokens available right now (refilled lazily)."""
        self._refill()
        return self._tokens

    def _refill(self) -> None:
        now = self._timer()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, n: int = 1) -> bool:
        """Take ``n`` tokens if available; returns whether it succeeded."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False


def check_request(bucket: TokenBucket | None, study_name: str) -> None:
    """Charge one request against the study's bucket, raising typed."""
    if bucket is not None and not bucket.try_acquire():
        raise QuotaExceededError(
            f"study {study_name!r} exceeded its request rate",
            data={
                "quota": "requests_per_s",
                "limit": bucket.rate,
                "study": study_name,
            },
        )
