"""Typed service errors with stable JSON-RPC error codes.

Every expected failure of the study service — unknown study, exhausted
quota, bad parameters — is a :class:`ServiceError` subclass carrying a
stable numeric code from the JSON-RPC server-error range.  The HTTP
front end maps them onto JSON-RPC error objects with status 200 (a
protocol-level error is a *successful* transport exchange — clients must
never see a 500 for an over-quota suggest), and :class:`~repro.service.
client.StudyClient` re-raises the matching typed exception from the code.
"""

from __future__ import annotations

__all__ = [
    "PARSE_ERROR",
    "INVALID_REQUEST",
    "METHOD_NOT_FOUND",
    "INVALID_PARAMS",
    "INTERNAL_ERROR",
    "ServiceError",
    "UnknownStudyError",
    "StudyExistsError",
    "UnknownTicketError",
    "QuotaExceededError",
    "InvalidParamsError",
    "StorageError",
    "OverloadedError",
    "error_to_dict",
    "error_from_dict",
]

# Standard JSON-RPC 2.0 protocol codes.
PARSE_ERROR = -32700
INVALID_REQUEST = -32600
METHOD_NOT_FOUND = -32601
INVALID_PARAMS = -32602
INTERNAL_ERROR = -32603


class ServiceError(Exception):
    """Base class of all expected study-service failures."""

    #: JSON-RPC error code (subclasses use the -32000..-32099 range).
    code = -32000

    def __init__(self, message: str, data: dict | None = None):
        super().__init__(message)
        self.message = message
        self.data = dict(data) if data else {}


class UnknownStudyError(ServiceError):
    """The named study exists neither in memory nor on disk."""

    code = -32001


class StudyExistsError(ServiceError):
    """``create`` collided with an existing study of the same name."""

    code = -32002


class UnknownTicketError(ServiceError):
    """``observe`` referenced a ticket that is not pending."""

    code = -32003


class QuotaExceededError(ServiceError):
    """A per-study quota (max trials, max pending, request rate) denied
    the call.  ``data['quota']`` names the quota that fired."""

    code = -32004


class InvalidParamsError(ServiceError):
    """Malformed request parameters (standard JSON-RPC code)."""

    code = INVALID_PARAMS


class StorageError(ServiceError):
    """A journal append, fsync or snapshot failed on the server.

    The mutation was *not* durably recorded — the server discards its
    in-memory state for the study and reloads from the intact journal, so
    a client may safely retry the exact same call (with the same
    idempotency key) and it will execute exactly once.
    ``data['retryable']`` is always true; ``data['kind']`` carries the
    storage failure kind (``fsync``/``enospc``/``torn``/``os``).
    """

    code = -32005


class OverloadedError(ServiceError):
    """The server shed this request to protect itself (or is draining).

    Nothing was executed.  ``data['retry_after_s']`` suggests a backoff;
    :class:`~repro.service.client.StudyClient`'s retry policy honours it.
    """

    code = -32006

    @property
    def retry_after_s(self) -> float:
        return float(self.data.get("retry_after_s", 1.0))


_TYPED_ERRORS = {
    cls.code: cls
    for cls in (
        UnknownStudyError,
        StudyExistsError,
        UnknownTicketError,
        QuotaExceededError,
        InvalidParamsError,
        StorageError,
        OverloadedError,
    )
}


def error_to_dict(exc: ServiceError) -> dict:
    """The JSON-RPC error object for a typed service error."""
    error = {"code": exc.code, "message": exc.message}
    if exc.data:
        error["data"] = exc.data
    return error


def error_from_dict(error: dict) -> ServiceError:
    """Rebuild the typed exception a JSON-RPC error object encodes.

    Unknown codes fall back to the :class:`ServiceError` base with the
    original code preserved on the instance.
    """
    code = int(error.get("code", -32000))
    message = str(error.get("message", "service error"))
    data = error.get("data") or {}
    cls = _TYPED_ERRORS.get(code)
    if cls is None:
        exc = ServiceError(message, data)
        exc.code = code
        return exc
    return cls(message, data)
