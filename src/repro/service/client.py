"""The stdlib HTTP client of the study service.

:class:`StudyClient` speaks the JSON-RPC 2.0 dialect of
:class:`~repro.service.server.StudyServer` over persistent HTTP/1.1
connections (one per calling thread, so threaded trainers share a single
client safely).  JSON-RPC error objects re-raise as the matching typed
:class:`~repro.service.errors.ServiceError` subclass — an over-quota
suggest lands as :class:`~repro.service.errors.QuotaExceededError`, never
as a transport failure.

Retries are governed by a :class:`ClientRetryPolicy` and respect the
server's exactly-once semantics:

* a stale keep-alive connection (``RemoteDisconnected``/``BadStatusLine``
  after a server restart or idle timeout) reconnects and retries
  transparently inside :meth:`StudyClient._post`;
* a typed ``Overloaded`` answer backs off by the server's
  ``retry_after_s`` (plus jitter) and retries — the shed request never
  executed, so this is always safe;
* a typed retryable ``StorageError`` retries the same call — the server
  guarantees the mutation was not recorded and reloads its state;
* other transport failures (timeouts, connection resets) retry only when
  the call is *safe*: read-only methods, or mutating calls carrying an
  idempotency ``key`` (the server's dedupe window makes the retry
  exactly-once).  A keyless mutating call propagates the ambiguous
  failure instead of risking a duplicate.
"""

from __future__ import annotations

import http.client
import json
import random
import threading
from dataclasses import dataclass

from ..telemetry.metrics import NOOP_METRICS
from .errors import OverloadedError, ServiceError, StorageError, error_from_dict

__all__ = ["ClientRetryPolicy", "StudyClient"]

#: Methods that never mutate server state — always safe to retry.
_READ_ONLY_METHODS = frozenset(
    {"study.status", "study.trials", "study.list", "service.stats"}
)


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Bounded retries with exponential backoff + jitter for one client.

    ``max_attempts`` counts the first try; backoff before retry ``k``
    (1-based) is ``min(backoff_max_s, backoff_base_s * factor**(k-1))``,
    stretched by up to ``jitter`` (a fraction) of itself so synchronized
    clients do not stampede a recovering server.  An ``Overloaded``
    answer's ``retry_after_s`` takes precedence over the computed
    backoff when larger.
    """

    #: Total attempts per call (first try included).
    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    #: Fraction of the backoff randomized on top of it (0 disables).
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if not (0 <= self.jitter <= 1):
            raise ValueError("jitter must be in [0, 1]")

    def backoff_s(self, retry: int, rng: random.Random,
                  floor_s: float = 0.0) -> float:
        """The wait before the ``retry``-th retry (1-based), jittered."""
        if retry < 1:
            raise ValueError("retry must be >= 1")
        base = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (retry - 1),
        )
        base = max(base, floor_s)
        return base * (1.0 + self.jitter * rng.random())


class StudyClient:
    """A thread-safe JSON-RPC client for one study server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 30.0, retry: ClientRetryPolicy | None = None,
                 metrics=None, sleep=None):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self.retry = retry if retry is not None else ClientRetryPolicy()
        self.metrics = metrics if metrics is not None else NOOP_METRICS
        self._m_retries = self.metrics.counter("service.retries")
        # Jitter only shapes wall-clock waits, never payload bytes, so a
        # per-client PRNG keeps the request stream itself deterministic.
        self._rng = random.Random(0x52455452)
        self._sleep = sleep if sleep is not None else _default_sleep
        self._local = threading.local()
        self._conns: list[http.client.HTTPConnection] = []
        self._conns_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_id = 0

    # -- transport -------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def _reset_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
        self._local.conn = None

    def _post(self, payload) -> object:
        body = json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        # One transparent reconnect-retry on a *stale keep-alive*
        # connection — the server restarted or idle-timed the socket
        # before reading our request, so nothing executed and the resend
        # is unconditionally safe.  Anything else propagates to the
        # caller's (idempotency-aware) retry loop.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request("POST", "/", body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.RemoteDisconnected,
                    http.client.BadStatusLine,
                    ConnectionRefusedError,
                    ConnectionResetError,
                    BrokenPipeError) as exc:
                self._reset_connection()
                if attempt:
                    raise ConnectionError(
                        f"{self.host}:{self.port}: {exc}"
                    ) from exc
            except (http.client.HTTPException, OSError):
                self._reset_connection()
                raise
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"malformed server response: {exc}") from None

    def _request_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    # -- the retrying call path ------------------------------------------------------

    def call(self, method: str, params: dict | None = None):
        """One JSON-RPC call; returns the result or raises typed.

        Retries per the client's :class:`ClientRetryPolicy`: shed
        (``Overloaded``) and storage-failed (retryable ``StorageError``)
        calls always — the server guarantees they did not execute or
        record — and ambiguous transport failures only when the call is
        read-only or carries an idempotency key in ``params['key']``.
        """
        params = params or {}
        payload = {
            "jsonrpc": "2.0",
            "id": self._request_id(),
            "method": method,
            "params": params,
        }
        safe = method in _READ_ONLY_METHODS or params.get("key") is not None
        attempt = 0
        while True:
            attempt += 1
            try:
                return _unwrap(self._post(payload))
            except OverloadedError as exc:
                if attempt >= self.retry.max_attempts:
                    raise
                floor = exc.retry_after_s
            except StorageError as exc:
                if (
                    attempt >= self.retry.max_attempts
                    or not exc.data.get("retryable")
                ):
                    raise
                floor = 0.0
            except (ConnectionError, TimeoutError, OSError,
                    http.client.HTTPException):
                if not safe or attempt >= self.retry.max_attempts:
                    raise
                floor = 0.0
            self._m_retries.inc()
            self._sleep(self.retry.backoff_s(attempt, self._rng, floor))

    def call_batch(self, calls: list[tuple[str, dict]]) -> list:
        """Send several calls in one HTTP exchange.

        Returns one entry per call, in order: the result, or the typed
        :class:`ServiceError` instance (not raised) for failed entries.
        Batches are not retried — per-entry retry semantics belong to
        the caller, who sees each entry's typed error.
        """
        payload = [
            {
                "jsonrpc": "2.0",
                "id": self._request_id(),
                "method": method,
                "params": params or {},
            }
            for method, params in calls
        ]
        responses = self._post(payload)
        if not isinstance(responses, list):
            return [_unwrap(responses)]
        results = []
        for response in responses:
            try:
                results.append(_unwrap(response))
            except ServiceError as exc:
                results.append(exc)
        return results

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()
        self._local = threading.local()

    def __enter__(self) -> "StudyClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- health ----------------------------------------------------------------------

    def health(self, path: str = "/healthz") -> tuple[int, dict]:
        """GET a health endpoint; returns ``(status, payload)``."""
        conn = self._connection()
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, OSError):
            self._reset_connection()
            raise
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {}
        return response.status, payload

    # -- the study API ---------------------------------------------------------------

    def create_study(self, spec) -> dict:
        """``spec`` is a :class:`~repro.service.store.StudySpec` or dict."""
        if hasattr(spec, "to_dict"):
            spec = spec.to_dict()
        return self.call("study.create", {"spec": spec})

    def suggest(self, study: str, n: int = 1,
                key: str | None = None) -> list[dict]:
        params = {"study": study, "n": n}
        if key is not None:
            params["key"] = key
        return self.call("study.suggest", params)

    def observe(self, study: str, ticket: int, report,
                key: str | None = None) -> dict:
        if hasattr(report, "to_dict"):
            report = report.to_dict()
        params = {"study": study, "ticket": ticket, "report": report}
        if key is not None:
            params["key"] = key
        return self.call("study.observe", params)

    def status(self, study: str) -> dict:
        return self.call("study.status", {"study": study})

    def trials(self, study: str) -> list[dict]:
        return self.call("study.trials", {"study": study})

    def list_studies(self) -> list[str]:
        return self.call("study.list")

    def stats(self) -> dict:
        return self.call("service.stats")


def _default_sleep(seconds: float) -> None:
    import time

    time.sleep(seconds)


def _unwrap(response) -> object:
    if not isinstance(response, dict):
        raise ServiceError("malformed server response (not an object)")
    error = response.get("error")
    if error is not None:
        raise error_from_dict(error)
    return response.get("result")
