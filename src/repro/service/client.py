"""The stdlib HTTP client of the study service.

:class:`StudyClient` speaks the JSON-RPC 2.0 dialect of
:class:`~repro.service.server.StudyServer` over persistent HTTP/1.1
connections (one per calling thread, so threaded trainers share a single
client safely).  JSON-RPC error objects re-raise as the matching typed
:class:`~repro.service.errors.ServiceError` subclass — an over-quota
suggest lands as :class:`~repro.service.errors.QuotaExceededError`, never
as a transport failure.
"""

from __future__ import annotations

import http.client
import json
import threading

from .errors import ServiceError, error_from_dict

__all__ = ["StudyClient"]


class StudyClient:
    """A thread-safe JSON-RPC client for one study server."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 30.0):
        self.host = host
        self.port = int(port)
        self.timeout = timeout
        self._local = threading.local()
        self._conns: list[http.client.HTTPConnection] = []
        self._conns_lock = threading.Lock()
        self._id_lock = threading.Lock()
        self._next_id = 0

    # -- transport -------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.conn = conn
            with self._conns_lock:
                self._conns.append(conn)
        return conn

    def _reset_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            with self._conns_lock:
                if conn in self._conns:
                    self._conns.remove(conn)
        self._local.conn = None

    def _post(self, payload) -> object:
        body = json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        # One retry on a stale keep-alive connection (server restarted,
        # idle timeout); a second failure propagates.
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request("POST", "/", body=body, headers=headers)
                response = conn.getresponse()
                data = response.read()
                break
            except (http.client.HTTPException, ConnectionError, OSError):
                self._reset_connection()
                if attempt:
                    raise
        try:
            return json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"malformed server response: {exc}") from None

    def _request_id(self) -> int:
        with self._id_lock:
            self._next_id += 1
            return self._next_id

    def call(self, method: str, params: dict | None = None):
        """One JSON-RPC call; returns the result or raises typed."""
        response = self._post(
            {
                "jsonrpc": "2.0",
                "id": self._request_id(),
                "method": method,
                "params": params or {},
            }
        )
        return _unwrap(response)

    def call_batch(self, calls: list[tuple[str, dict]]) -> list:
        """Send several calls in one HTTP exchange.

        Returns one entry per call, in order: the result, or the typed
        :class:`ServiceError` instance (not raised) for failed entries.
        """
        payload = [
            {
                "jsonrpc": "2.0",
                "id": self._request_id(),
                "method": method,
                "params": params or {},
            }
            for method, params in calls
        ]
        responses = self._post(payload)
        if not isinstance(responses, list):
            return [_unwrap(responses)]
        results = []
        for response in responses:
            try:
                results.append(_unwrap(response))
            except ServiceError as exc:
                results.append(exc)
        return results

    def close(self) -> None:
        with self._conns_lock:
            conns, self._conns = self._conns, []
        for conn in conns:
            conn.close()
        self._local = threading.local()

    def __enter__(self) -> "StudyClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the study API ---------------------------------------------------------------

    def create_study(self, spec) -> dict:
        """``spec`` is a :class:`~repro.service.store.StudySpec` or dict."""
        if hasattr(spec, "to_dict"):
            spec = spec.to_dict()
        return self.call("study.create", {"spec": spec})

    def suggest(self, study: str, n: int = 1) -> list[dict]:
        return self.call("study.suggest", {"study": study, "n": n})

    def observe(self, study: str, ticket: int, report) -> dict:
        if hasattr(report, "to_dict"):
            report = report.to_dict()
        return self.call(
            "study.observe",
            {"study": study, "ticket": ticket, "report": report},
        )

    def status(self, study: str) -> dict:
        return self.call("study.status", {"study": study})

    def trials(self, study: str) -> list[dict]:
        return self.call("study.trials", {"study": study})

    def list_studies(self) -> list[str]:
        return self.call("study.list")

    def stats(self) -> dict:
        return self.call("service.stats")


def _unwrap(response) -> object:
    if not isinstance(response, dict):
        raise ServiceError("malformed server response (not an object)")
    error = response.get("error")
    if error is not None:
        raise error_from_dict(error)
    return response.get("result")
