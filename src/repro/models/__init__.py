"""Predictive power/memory models (paper Section 3.3, Equations 1-2)."""

from .crossval import cross_validate, kfold_indices, mape, rmse, rmspe
from .hw_models import (
    HardwareModel,
    LatencyModel,
    MemoryModel,
    PowerModel,
    fit_hardware_models,
    fit_latency_model,
)
from .layerwise import (
    LayerwiseEnergyModel,
    LayerwiseRuntimeModel,
    collect_layer_profiles,
    layer_features,
)
from .linear import LinearModel
from .selection import (
    DEFAULT_FORMS,
    CandidateForm,
    FormSelection,
    QuadraticFeatureModel,
    select_model_form,
)
from .profiling import ProfilingDataset, run_profiling_campaign

__all__ = [
    "LinearModel",
    "rmspe",
    "rmse",
    "mape",
    "kfold_indices",
    "cross_validate",
    "ProfilingDataset",
    "run_profiling_campaign",
    "HardwareModel",
    "PowerModel",
    "MemoryModel",
    "fit_hardware_models",
    "LatencyModel",
    "fit_latency_model",
    "LayerwiseRuntimeModel",
    "LayerwiseEnergyModel",
    "collect_layer_profiles",
    "layer_features",
    "CandidateForm",
    "QuadraticFeatureModel",
    "DEFAULT_FORMS",
    "FormSelection",
    "select_model_form",
]
