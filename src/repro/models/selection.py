"""Cross-validation-driven choice of the predictor's regression form.

The paper states it "experimented with nonlinear regression formulations
which can be plugged-in to the models ... these linear functions provide
sufficient accuracy".  This module automates that experiment: evaluate a
set of candidate forms by k-fold CV and keep the simplest one within a
tolerance of the best score (a parsimony tie-break, so the linear form
wins whenever it is genuinely sufficient — the paper's conclusion).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from .crossval import cross_validate, rmspe
from .linear import LinearModel

__all__ = [
    "CandidateForm",
    "QuadraticFeatureModel",
    "DEFAULT_FORMS",
    "FormSelection",
    "select_model_form",
]


class QuadraticFeatureModel:
    """Linear regression over ``[z, z^2, pairwise products]`` + intercept."""

    def __init__(self) -> None:
        self._inner = LinearModel(fit_intercept=True)

    @staticmethod
    def expand(Z: np.ndarray) -> np.ndarray:
        """The quadratic feature map."""
        Z = np.atleast_2d(np.asarray(Z, dtype=float))
        columns = [Z, Z**2]
        for i in range(Z.shape[1]):
            for j in range(i + 1, Z.shape[1]):
                columns.append((Z[:, i] * Z[:, j])[:, None])
        return np.hstack(columns)

    def fit(self, Z: np.ndarray, y: np.ndarray) -> "QuadraticFeatureModel":
        self._inner.fit(self.expand(Z), y)
        return self

    def predict(self, Z: np.ndarray) -> np.ndarray:
        return self._inner.predict(self.expand(Z))


@dataclass(frozen=True)
class CandidateForm:
    """One regression form under consideration."""

    #: Human-readable name.
    name: str
    #: Zero-argument factory producing a fresh fit/predict model.
    factory: Callable[[], object]
    #: Complexity rank — lower is simpler (used by the parsimony rule).
    complexity: int


#: The forms the paper's discussion spans: its pure-linear Eq. 1-2, the
#: intercept-augmented linear this reproduction defaults to, and a
#: quadratic expansion standing in for "nonlinear formulations".
DEFAULT_FORMS = (
    CandidateForm(
        "linear", lambda: LinearModel(fit_intercept=False), complexity=0
    ),
    CandidateForm(
        "linear+intercept", lambda: LinearModel(fit_intercept=True), complexity=1
    ),
    CandidateForm("quadratic", QuadraticFeatureModel, complexity=2),
)


@dataclass(frozen=True)
class FormSelection:
    """Outcome of a form-selection experiment."""

    #: The selected form.
    chosen: CandidateForm
    #: CV score (RMSPE, %) per form name.
    scores: dict[str, float]

    @property
    def chosen_score(self) -> float:
        """CV score of the selected form."""
        return self.scores[self.chosen.name]


def select_model_form(
    Z: np.ndarray,
    y: np.ndarray,
    forms: Sequence[CandidateForm] = DEFAULT_FORMS,
    k: int = 10,
    rng: np.random.Generator | None = None,
    tolerance_rel: float = 0.10,
) -> FormSelection:
    """Pick the simplest form within ``tolerance_rel`` of the best CV score.

    With the default 10% tolerance, a linear model scoring 4.4% RMSPE
    beats a quadratic scoring 4.1% — the paper's "sufficient accuracy"
    judgement, made reproducible.
    """
    if not forms:
        raise ValueError("need at least one candidate form")
    if tolerance_rel < 0:
        raise ValueError("tolerance must be non-negative")
    rng = rng or np.random.default_rng(0)
    scores: dict[str, float] = {}
    for form in forms:
        # Same fold split for every form (fair comparison).
        fold_rng = np.random.default_rng(rng.integers(2**63))
        score, _ = cross_validate(form.factory, Z, y, k=k, rng=fold_rng, metric=rmspe)
        scores[form.name] = score
    best_score = min(scores.values())
    admissible = [
        form
        for form in forms
        if scores[form.name] <= best_score * (1.0 + tolerance_rel)
    ]
    chosen = min(admissible, key=lambda form: form.complexity)
    return FormSelection(chosen=chosen, scores=scores)
