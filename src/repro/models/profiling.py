"""Offline random-sampling profiling campaign (paper Section 3.3).

"We employ offline random sampling by generating different configurations
based on the ranges of the considered hyper-parameters z ... for each
candidate design z_l we measure the hardware platform's power P_l and
memory M_l values during inference" — this module is that campaign: draw
``L`` configurations uniformly, build each network, deploy it on the
target's :class:`~repro.hwsim.profiler.HardwareProfiler`, and collect the
dataset ``{(z_l, P_l, M_l)}`` the predictive models are trained on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hwsim.profiler import HardwareProfiler
from ..nn.builder import build_network
from ..space.space import Configuration, SearchSpace

__all__ = ["ProfilingDataset", "run_profiling_campaign"]


@dataclass(frozen=True)
class ProfilingDataset:
    """The profiled dataset ``{(z_l, P_l, M_l)}_{l=1..L}``."""

    #: Benchmark the networks were built for (``'mnist'``/``'cifar10'``).
    dataset_name: str
    #: Target platform the measurements were taken on.
    device_name: str
    #: The sampled configurations, in measurement order.
    configs: tuple[Configuration, ...]
    #: ``(L, J)`` structural design matrix.
    Z: np.ndarray
    #: ``(L,)`` measured inference power, W.
    power_w: np.ndarray
    #: ``(L,)`` measured memory footprint, bytes — ``None`` on platforms
    #: without a memory API (Tegra TX1).
    memory_bytes: np.ndarray | None
    #: Total wall-clock cost of the campaign, s.
    total_time_s: float
    #: ``(L,)`` measured batch inference latency, s.
    latency_s: np.ndarray | None = None

    def __post_init__(self) -> None:
        L = len(self.configs)
        if self.Z.shape[0] != L or self.power_w.shape[0] != L:
            raise ValueError("inconsistent profiling dataset sizes")
        if self.memory_bytes is not None and self.memory_bytes.shape[0] != L:
            raise ValueError("inconsistent memory column size")
        if self.latency_s is not None and self.latency_s.shape[0] != L:
            raise ValueError("inconsistent latency column size")

    def __len__(self) -> int:
        return len(self.configs)

    @property
    def has_memory(self) -> bool:
        """Whether memory measurements are available."""
        return self.memory_bytes is not None


def run_profiling_campaign(
    space: SearchSpace,
    dataset_name: str,
    profiler: HardwareProfiler,
    n_samples: int,
    rng: np.random.Generator,
    method: str = "random",
) -> ProfilingDataset:
    """Profile ``n_samples`` sampled configurations.

    Parameters
    ----------
    space:
        The hyper-parameter space whose structural sub-vector defines ``z``.
    dataset_name:
        Benchmark whose AlexNet variant is built (``'mnist'``/``'cifar10'``).
    profiler:
        Target-platform profiler providing measurements (and their cost).
    n_samples:
        ``L``, the campaign size.
    rng:
        Sampling randomness (measurement noise comes from the profiler).
    method:
        ``'random'`` — the paper's i.i.d. offline random sampling;
        ``'lhs'`` — Latin-hypercube, better space-filling per sample.
    """
    if n_samples < 1:
        raise ValueError("need at least one sample")
    if method == "random":
        configs = space.sample_many(n_samples, rng)
    elif method == "lhs":
        configs = space.sample_lhs(n_samples, rng)
    else:
        raise ValueError(
            f"unknown sampling method {method!r}; expected 'random' or 'lhs'"
        )
    Z = space.structural_matrix(configs)
    power = np.empty(n_samples)
    latency = np.empty(n_samples)
    supports_memory = profiler.device.supports_memory_query
    memory = np.empty(n_samples) if supports_memory else None
    total_time = 0.0
    for index, config in enumerate(configs):
        network = build_network(dataset_name, config)
        measurement = profiler.profile(network)
        power[index] = measurement.power_w
        latency[index] = measurement.latency_s
        if supports_memory:
            memory[index] = measurement.memory_bytes
        total_time += measurement.duration_s
    return ProfilingDataset(
        dataset_name=dataset_name,
        device_name=profiler.device.name,
        configs=tuple(configs),
        Z=Z,
        power_w=power,
        memory_bytes=memory,
        total_time_s=total_time,
        latency_s=latency,
    )
