"""Linear regression for the power/memory predictors (Equations 1-2).

The paper models power and memory as functions *linear in both* the
structural hyper-parameter vector ``z`` and the weights:

``P(z) = sum_j w_j z_j``        ``M(z) = sum_j m_j z_j``

:class:`LinearModel` implements exactly that least-squares fit, with two
documented extensions used by the ablation benches:

* ``fit_intercept`` — adds a constant feature.  The paper's formulation has
  no intercept; it works because ``z`` never vanishes on the sampled
  ranges, so the constant platform power/overhead is absorbed into the
  feature weights.
* ``nonnegative`` — constrains weights to be >= 0 via NNLS, a physically
  sensible prior (more features can't reduce power).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = ["LinearModel"]


class LinearModel:
    """Least-squares linear regression ``y ~ X @ w (+ b)``."""

    def __init__(self, fit_intercept: bool = False, nonnegative: bool = False):
        self.fit_intercept = fit_intercept
        self.nonnegative = nonnegative
        self.weights_: np.ndarray | None = None
        self.intercept_: float = 0.0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self.weights_ is not None

    def _design(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self.fit_intercept:
            ones = np.ones((X.shape[0], 1))
            return np.hstack([X, ones])
        return X

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearModel":
        """Fit the model on design matrix ``X`` and targets ``y``."""
        y = np.asarray(y, dtype=float).ravel()
        design = self._design(X)
        if design.shape[0] != y.shape[0]:
            raise ValueError(
                f"X has {design.shape[0]} rows but y has {y.shape[0]} entries"
            )
        if design.shape[0] < design.shape[1]:
            raise ValueError(
                f"under-determined fit: {design.shape[0]} samples for "
                f"{design.shape[1]} coefficients"
            )
        if self.nonnegative:
            coef, _ = optimize.nnls(design, y)
        else:
            coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        if self.fit_intercept:
            self.weights_ = coef[:-1]
            self.intercept_ = float(coef[-1])
        else:
            self.weights_ = coef
            self.intercept_ = 0.0
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for design matrix ``X``."""
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self.weights_.shape[0]:
            raise ValueError(
                f"model has {self.weights_.shape[0]} features, input has "
                f"{X.shape[1]}"
            )
        return X @ self.weights_ + self.intercept_

    def predict_one(self, z: np.ndarray) -> float:
        """Predict the target for a single feature vector."""
        return float(self.predict(np.atleast_2d(z))[0])
