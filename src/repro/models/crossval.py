"""Cross-validation and error metrics for the predictive models.

The paper trains the power/memory models "by employing a 10-fold cross
validation" and reports Root Mean Square *Percentage* Error (RMSPE,
Table 1), which is always below 7% in its measurements.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

__all__ = ["rmspe", "rmse", "mape", "kfold_indices", "cross_validate"]


def rmspe(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean square percentage error, in percent (Table 1's metric)."""
    actual = np.asarray(actual, dtype=float).ravel()
    predicted = np.asarray(predicted, dtype=float).ravel()
    if actual.shape != predicted.shape:
        raise ValueError("actual and predicted must have the same shape")
    if actual.size == 0:
        raise ValueError("empty inputs")
    if np.any(actual == 0):
        raise ValueError("RMSPE undefined when an actual value is zero")
    return float(np.sqrt(np.mean(((actual - predicted) / actual) ** 2)) * 100.0)


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Root mean square error in the target's units."""
    actual = np.asarray(actual, dtype=float).ravel()
    predicted = np.asarray(predicted, dtype=float).ravel()
    if actual.shape != predicted.shape:
        raise ValueError("actual and predicted must have the same shape")
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute percentage error, in percent."""
    actual = np.asarray(actual, dtype=float).ravel()
    predicted = np.asarray(predicted, dtype=float).ravel()
    if actual.shape != predicted.shape:
        raise ValueError("actual and predicted must have the same shape")
    if np.any(actual == 0):
        raise ValueError("MAPE undefined when an actual value is zero")
    return float(np.mean(np.abs((actual - predicted) / actual)) * 100.0)


def kfold_indices(
    n: int, k: int, rng: np.random.Generator
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Shuffled k-fold split of ``range(n)`` into (train, test) index pairs."""
    if k < 2:
        raise ValueError("need at least 2 folds")
    if n < k:
        raise ValueError(f"cannot split {n} samples into {k} folds")
    order = rng.permutation(n)
    folds = np.array_split(order, k)
    splits = []
    for i, test in enumerate(folds):
        train = np.concatenate([folds[j] for j in range(k) if j != i])
        splits.append((train, test))
    return splits


def cross_validate(
    model_factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 10,
    rng: np.random.Generator | None = None,
    metric: Callable[[np.ndarray, np.ndarray], float] = rmspe,
) -> tuple[float, np.ndarray]:
    """K-fold cross-validation of a fit/predict model.

    Returns ``(pooled_metric, out_of_fold_predictions)`` where the metric is
    computed over the pooled out-of-fold predictions — the paper's protocol
    for the Table 1 RMSPE values.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    y = np.asarray(y, dtype=float).ravel()
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y disagree on the number of samples")
    rng = rng or np.random.default_rng(0)
    predictions = np.empty_like(y)
    for train_idx, test_idx in kfold_indices(len(y), k, rng):
        model = model_factory()
        model.fit(X[train_idx], y[train_idx])
        predictions[test_idx] = model.predict(X[test_idx])
    return metric(y, predictions), predictions
