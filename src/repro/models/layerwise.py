"""Layer-wise runtime and energy predictors (NeuralPower-style, ref. [10]).

The paper's related-work section positions its network-level linear models
against "more elaborate (layer-wise) predictive models for runtime and
energy, which can be incorporated into HyperPower [10]".  This module
implements that refinement:

* one regression per *layer kind* maps per-layer workload features (FLOPs,
  bytes moved) to the layer's measured runtime;
* the network's **runtime** is the sum of its layers' predicted runtimes;
* the network's **energy** per batch follows NeuralPower's decomposition
  ``E = sum_i P_i * T_i`` with per-layer power modeled from the layer's
  achieved compute/byte rates, and the network's **average power** is the
  runtime-weighted mean ``E / T``.

Training data comes from per-layer profiles
(:meth:`repro.hwsim.profiler.HardwareProfiler.profile_layers` — the
nvprof-granularity measurement), so the models never peek at the
simulator's internals.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from ..hwsim.power import LayerTiming
from ..hwsim.profiler import HardwareProfiler
from ..nn.builder import build_network
from ..nn.network import NetworkSpec
from ..space.space import SearchSpace
from .crossval import mape
from .linear import LinearModel

__all__ = [
    "layer_features",
    "LayerwiseRuntimeModel",
    "LayerwiseEnergyModel",
    "collect_layer_profiles",
]


def layer_features(timing: LayerTiming) -> np.ndarray:
    """Workload features of one profiled layer.

    ``[flops, bytes, sqrt(flops * bytes), 1-ish]`` — the linear terms give
    the roofline's two asymptotes, the geometric-mean term lets the fit
    bend around the ridge.  (The constant comes from the regressor's
    intercept.)
    """
    flops = float(timing.flops)
    moved = float(timing.bytes_moved)
    return np.array([flops, moved, np.sqrt(flops * moved)])


def collect_layer_profiles(
    space: SearchSpace,
    dataset_name: str,
    profiler: HardwareProfiler,
    n_samples: int,
    rng: np.random.Generator,
) -> list[list[LayerTiming]]:
    """Per-layer runtime profiles of ``n_samples`` random configurations."""
    if n_samples < 1:
        raise ValueError("need at least one sample")
    profiles = []
    for config in space.sample_many(n_samples, rng):
        network = build_network(dataset_name, config)
        profiles.append(profiler.profile_layers(network))
    return profiles


class LayerwiseRuntimeModel:
    """Per-layer-kind runtime regression; network runtime is the sum.

    Kinds never seen during fitting fall back to the mean runtime of all
    training layers (a conservative constant).
    """

    def __init__(self) -> None:
        self._models: dict[str, LinearModel] = {}
        self._fallback_s: float | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._fallback_s is not None

    @property
    def kinds(self) -> tuple[str, ...]:
        """Layer kinds with a dedicated regression."""
        return tuple(sorted(self._models))

    def fit(
        self, profiles: Iterable[Sequence[LayerTiming]]
    ) -> "LayerwiseRuntimeModel":
        """Fit one regression per layer kind from per-layer profiles."""
        by_kind: dict[str, list[LayerTiming]] = {}
        all_times = []
        for profile in profiles:
            for timing in profile:
                by_kind.setdefault(timing.kind, []).append(timing)
                all_times.append(timing.time_s)
        if not all_times:
            raise ValueError("no layer profiles given")
        self._fallback_s = float(np.mean(all_times))
        self._models.clear()
        for kind, records in by_kind.items():
            X = np.vstack([layer_features(r) for r in records])
            y = np.array([r.time_s for r in records])
            # A kind needs enough records to support the regression;
            # otherwise its mean runtime serves as the model.
            if len(records) > X.shape[1] + 1:
                self._models[kind] = LinearModel(fit_intercept=True).fit(X, y)
        return self

    def predict_layer(self, timing: LayerTiming) -> float:
        """Predicted runtime of one layer, s (non-negative)."""
        if not self.is_fitted:
            raise RuntimeError("predict before fit()")
        model = self._models.get(timing.kind)
        if model is None:
            return self._fallback_s
        return float(max(0.0, model.predict_one(layer_features(timing))))

    def predict_network(
        self, timings: Sequence[LayerTiming]
    ) -> float:
        """Predicted batch runtime of a network, s."""
        return float(sum(self.predict_layer(t) for t in timings))

    def evaluate(
        self, profiles: Iterable[Sequence[LayerTiming]]
    ) -> float:
        """Network-level runtime MAPE (%) on held-out profiles."""
        actual, predicted = [], []
        for profile in profiles:
            actual.append(sum(t.time_s for t in profile))
            predicted.append(self.predict_network(profile))
        return mape(np.asarray(actual), np.asarray(predicted))


@dataclass(frozen=True)
class _PowerCoefficients:
    """Per-layer power model ``P_i = p0 + pf * rate_f + pb * rate_b``."""

    p0: float
    per_flop_rate: float
    per_byte_rate: float

    def power(self, timing: LayerTiming) -> float:
        return max(
            0.0,
            self.p0
            + self.per_flop_rate * timing.achieved_flops_rate
            + self.per_byte_rate * timing.achieved_byte_rate,
        )


class LayerwiseEnergyModel:
    """NeuralPower's energy decomposition ``E = sum_i P_i * T_i``.

    Fitted from (per-layer profiles, measured network power) pairs: the
    per-layer power coefficients are regressed so that the runtime-
    weighted per-layer powers reproduce the measured board power.
    """

    def __init__(self, runtime_model: LayerwiseRuntimeModel):
        if not runtime_model.is_fitted:
            raise ValueError("runtime model must be fitted first")
        self.runtime_model = runtime_model
        self._coefficients: _PowerCoefficients | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._coefficients is not None

    def fit(
        self,
        profiles: Sequence[Sequence[LayerTiming]],
        measured_power_w: Sequence[float],
    ) -> "LayerwiseEnergyModel":
        """Regress the per-layer power coefficients.

        For each network, board power is the runtime-weighted mean of the
        per-layer powers, which is linear in the coefficients — so the fit
        is ordinary least squares on runtime-weighted rate averages.
        """
        measured = np.asarray(measured_power_w, dtype=float)
        if len(profiles) != measured.shape[0]:
            raise ValueError("profiles and measurements disagree in length")
        if len(profiles) < 4:
            raise ValueError("need at least 4 networks to fit")
        rows = []
        for profile in profiles:
            total = sum(t.time_s for t in profile)
            rate_f = sum(t.achieved_flops_rate * t.time_s for t in profile) / total
            rate_b = sum(t.achieved_byte_rate * t.time_s for t in profile) / total
            rows.append([1.0, rate_f, rate_b])
        coef, *_ = np.linalg.lstsq(np.asarray(rows), measured, rcond=None)
        self._coefficients = _PowerCoefficients(*map(float, coef))
        return self

    def layer_power(self, timing: LayerTiming) -> float:
        """Predicted power while this layer executes, W."""
        if not self.is_fitted:
            raise RuntimeError("predict before fit()")
        return self._coefficients.power(timing)

    def predict_energy(self, timings: Sequence[LayerTiming]) -> float:
        """Predicted energy of one inference batch, J."""
        if not self.is_fitted:
            raise RuntimeError("predict before fit()")
        energy = 0.0
        for timing in timings:
            runtime = self.runtime_model.predict_layer(timing)
            energy += self._coefficients.power(timing) * runtime
        return float(energy)

    def predict_average_power(self, timings: Sequence[LayerTiming]) -> float:
        """Predicted board power (runtime-weighted mean), W."""
        runtime = self.runtime_model.predict_network(timings)
        if runtime <= 0:
            raise ValueError("predicted runtime is non-positive")
        return self.predict_energy(timings) / runtime
