"""Power and memory predictor wrappers (Equations 1-2).

A :class:`HardwareModel` couples the linear regression of
:mod:`repro.models.linear` with the structural-feature extraction of the
search space, 10-fold cross-validated accuracy reporting (Table 1), and a
residual-scale estimate.  The residual scale is what the HW-CWEI
acquisition (paper Section 3.5) uses to turn a point prediction into a
constraint-satisfaction probability ``Pr(P(z) <= PB)``.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from ..space.space import SearchSpace
from .crossval import cross_validate, rmspe
from .linear import LinearModel
from .profiling import ProfilingDataset

__all__ = [
    "HardwareModel",
    "PowerModel",
    "MemoryModel",
    "LatencyModel",
    "fit_hardware_models",
    "fit_latency_model",
]


class HardwareModel:
    """A cross-validated linear predictor over structural features ``z``."""

    #: Human-readable quantity name, set by subclasses.
    quantity = "value"
    #: Unit string for reports, set by subclasses.
    unit = ""

    def __init__(
        self,
        space: SearchSpace,
        fit_intercept: bool = False,
        nonnegative: bool = False,
    ):
        self.space = space
        self.fit_intercept = fit_intercept
        self.nonnegative = nonnegative
        self._model = LinearModel(fit_intercept, nonnegative)
        #: RMSPE (%) from k-fold cross-validation, set by :meth:`fit`.
        self.cv_rmspe_: float | None = None
        #: Std of out-of-fold residuals, set by :meth:`fit` (same unit as y).
        self.residual_std_: float | None = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has run."""
        return self._model.is_fitted

    @property
    def weights_(self) -> np.ndarray:
        """The fitted weight vector ``w`` (one entry per structural HP)."""
        if not self.is_fitted:
            raise RuntimeError("weights unavailable before fit()")
        return self._model.weights_

    @property
    def intercept_(self) -> float:
        """The fitted intercept (0 in the paper's pure-linear form)."""
        return self._model.intercept_

    def fit(
        self,
        Z: np.ndarray,
        values: np.ndarray,
        cv_folds: int = 10,
        rng: np.random.Generator | None = None,
    ) -> "HardwareModel":
        """Fit on profiled data, recording 10-fold CV accuracy.

        The final model is trained on all ``L`` points; ``cv_rmspe_`` and
        ``residual_std_`` come from the pooled out-of-fold predictions.
        """
        Z = np.atleast_2d(np.asarray(Z, dtype=float))
        values = np.asarray(values, dtype=float).ravel()
        rng = rng or np.random.default_rng(0)
        score, oof_pred = cross_validate(
            lambda: LinearModel(self.fit_intercept, self.nonnegative),
            Z,
            values,
            k=cv_folds,
            rng=rng,
            metric=rmspe,
        )
        self.cv_rmspe_ = score
        self.residual_std_ = float(np.std(values - oof_pred))
        self._model.fit(Z, values)
        return self

    # -- prediction --------------------------------------------------------------

    def predict_z(self, z: np.ndarray) -> float:
        """Predict from a structural vector ``z``."""
        return self._model.predict_one(np.asarray(z, dtype=float))

    def predict_config(self, config: Mapping) -> float:
        """Predict from a full configuration (extracts ``z`` internally)."""
        return self.predict_z(self.space.structural_vector(config))

    def predict_many(self, Z: np.ndarray) -> np.ndarray:
        """Vectorised prediction over an ``(n, J)`` design matrix."""
        return self._model.predict(Z)

    def predict_batch(self, Z: np.ndarray) -> np.ndarray:
        """Batch prediction over an ``(n, J)`` design matrix of structural
        vectors — one NumPy call for a whole candidate set.

        This is the entry point the batch-parallel evaluation engine uses
        to screen thousands of candidates per call.  It computes the same
        ``Z @ w`` product as ``predict_z`` applied row by row; the BLAS
        batch kernel may round differently in the last ulp, which is many
        orders of magnitude below the residual margins screening applies.
        """
        return self._model.predict(Z)

    def predict_configs(self, configs, validate: bool = True) -> np.ndarray:
        """Batch prediction straight from configuration mappings."""
        Z = self.space.structural_matrix(configs, validate=validate)
        return self.predict_batch(Z)

    def satisfaction_probability(self, z: np.ndarray, budget: float) -> float:
        """``Pr(quantity(z) <= budget)`` under a Gaussian residual model.

        This is the latent-constraint evaluation HW-CWEI plugs into the
        Constraint-Weighted EI; with a perfectly confident model it reduces
        to the indicator function HW-IECI uses.
        """
        if self.residual_std_ is None:
            raise RuntimeError("satisfaction_probability() before fit()")
        prediction = self.predict_z(z)
        sigma = max(self.residual_std_, 1e-12)
        from scipy.stats import norm

        return float(norm.cdf((budget - prediction) / sigma))

    def satisfaction_probability_batch(
        self, Z: np.ndarray, budget: float
    ) -> np.ndarray:
        """Vectorised ``Pr(quantity(z) <= budget)`` over an ``(n, J)`` batch."""
        if self.residual_std_ is None:
            raise RuntimeError("satisfaction_probability_batch() before fit()")
        predictions = self.predict_batch(Z)
        sigma = max(self.residual_std_, 1e-12)
        from scipy.stats import norm

        return norm.cdf((budget - predictions) / sigma)

    def __repr__(self) -> str:
        state = "fitted" if self.is_fitted else "unfitted"
        rmspe_text = (
            f", cv_rmspe={self.cv_rmspe_:.2f}%" if self.cv_rmspe_ is not None else ""
        )
        return f"{type(self).__name__}({state}{rmspe_text})"


class PowerModel(HardwareModel):
    """Equation 1: ``P(z) = sum_j w_j z_j`` (watts)."""

    quantity = "power"
    unit = "W"


class MemoryModel(HardwareModel):
    """Equation 2: ``M(z) = sum_j m_j z_j`` (bytes)."""

    quantity = "memory"
    unit = "bytes"


class LatencyModel(HardwareModel):
    """Linear inference-latency predictor over ``z`` (seconds).

    Not part of the paper's Eq. 1-2, but the same recipe applied to the
    runtime constraint its related work optimizes under [14]; latency is
    a-priori for the same reason power is (structure-only).
    """

    quantity = "latency"
    unit = "s"


def fit_latency_model(
    space: SearchSpace,
    profiled: ProfilingDataset,
    cv_folds: int = 10,
    rng: np.random.Generator | None = None,
    fit_intercept: bool = True,
    nonnegative: bool = False,
) -> LatencyModel:
    """Fit the latency predictor from a profiling campaign."""
    if profiled.latency_s is None:
        raise ValueError("campaign carries no latency measurements")
    model = LatencyModel(space, fit_intercept, nonnegative)
    model.fit(profiled.Z, profiled.latency_s, cv_folds, rng or np.random.default_rng(0))
    return model


def fit_hardware_models(
    space: SearchSpace,
    profiled: ProfilingDataset,
    cv_folds: int = 10,
    rng: np.random.Generator | None = None,
    fit_intercept: bool = False,
    nonnegative: bool = False,
) -> tuple[PowerModel, MemoryModel | None]:
    """Fit the power model and, when measurements exist, the memory model.

    Returns ``(power_model, memory_model)`` with ``memory_model = None`` on
    platforms without a memory API (Tegra TX1, Table 1's missing cells).
    """
    rng = rng or np.random.default_rng(0)
    power_model = PowerModel(space, fit_intercept, nonnegative)
    power_model.fit(profiled.Z, profiled.power_w, cv_folds, rng)
    memory_model: MemoryModel | None = None
    if profiled.has_memory:
        memory_model = MemoryModel(space, fit_intercept, nonnegative)
        memory_model.fit(profiled.Z, profiled.memory_bytes, cv_folds, rng)
    return power_model, memory_model
