"""Durable JSONL plumbing shared by the run journal and the trace exporter.

Both crash-safe artifacts of this package — the run journal
(:class:`~repro.io.RunJournal`) and the span trace
(:func:`~repro.telemetry.export.write_trace`) — are append-only JSONL
files with the same durability contract: every line is flushed and fsynced
before the writer moves on, so a killed process loses at most the line in
flight, and the reader tolerates (and can locate) a torn tail.  This
module is that contract, factored out so the two formats cannot drift:

* :class:`JsonlWriter` — one JSON object per line, fsync per line;
* :func:`scan_jsonl` — parse a file's intact-line prefix, stopping at the
  first torn or corrupt line and reporting the byte offset a resuming
  writer may truncate to.

Failures are *typed*: any storage error on the append/fsync path — a real
``OSError`` or an injected chaos fault — surfaces as a
:class:`JournalWriteError` carrying the path and the operation that
failed, never a raw ``OSError``.  Before raising, the writer repairs the
file back to its last acknowledged record boundary, so a failed append
never leaves a corrupt middle for later appends to bury: callers may
retry, resume, or rebuild from the intact prefix.

Chaos engineering hooks ride the same path.  A ``chaos`` object (see
:class:`~repro.core.faults.StorageChaos`) decides — as a pure function of
``(chaos_seed, path, op_index)`` — whether an append fails with a
simulated full disk (``enospc``), a torn partial write (``torn``), a
failed fsync (``fsync``), or succeeds with *delayed visibility*
(``delay``: the record is acknowledged but buffered in user space until
the next write, flush or close, modelling the window an ``fsync=False``
deployment always lives in).  :meth:`JsonlWriter.crash` simulates a hard
process kill: buffered records vanish and the file is truncated to the
last durable (fsynced) offset.

It deliberately imports nothing from the rest of the package, so every
layer (including :mod:`repro.io`) can build on it without cycles.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

__all__ = ["JournalWriteError", "JsonlWriter", "scan_jsonl"]


class JournalWriteError(OSError):
    """A journal append or fsync failed (real or injected).

    Subclasses ``OSError`` so legacy ``except OSError`` call sites keep
    working, but carries structured context: the journal ``path``, the
    ``op`` that failed (``"append"`` or ``"fsync"``) and the failure
    ``kind`` (``"enospc"``, ``"torn"``, ``"fsync"`` or ``"os"`` for a
    wrapped real error).  The file is already repaired to its last
    acknowledged record boundary when this is raised.
    """

    def __init__(self, path, op: str, kind: str = "os", message: str | None = None):
        self.path = Path(path)
        self.op = str(op)
        self.kind = str(kind)
        super().__init__(
            message
            or f"{self.path}: journal {self.op} failed ({self.kind})"
        )

    def __reduce__(self):
        return (JournalWriteError, (str(self.path), self.op, self.kind))


class JsonlWriter:
    """Append-only JSONL writer with per-line flush + fsync.

    The writer tracks two offsets: ``visible_offset`` (bytes written to
    the OS file, what a concurrent reader sees) and ``durable_offset``
    (bytes guaranteed past an fsync, what survives :meth:`crash`).  With
    ``fsync=True`` and no chaos the two always agree after every
    :meth:`write`; a ``delay`` chaos fault (or ``fsync=False``) opens a
    window between acknowledgement and durability that :meth:`flush`
    closes.
    """

    #: Per-path append sequence numbers, shared across writer instances.
    #: The chaos ``op_index`` must keep advancing when a file's writer is
    #: reopened (resume, or the store's poison-and-reload after a failed
    #: append) — a per-instance counter would replay the same fault
    #: decision forever and turn one deterministic fault into a permanent
    #: outage for that path.
    _op_counters: dict[str, int] = {}
    _op_lock = threading.Lock()

    def __init__(self, path: str | Path, append: bool = False, fsync: bool = True,
                 chaos=None):
        self.path = Path(path)
        self.fsync = fsync
        #: Deterministic storage-fault source (``plan(path, op_index)``),
        #: or ``None`` for the strict no-op fault-free writer.
        self.chaos = chaos
        self._fh = open(self.path, "ab" if append else "wb", buffering=0)
        self._size = os.fstat(self._fh.fileno()).st_size
        self._durable = self._size
        #: Acknowledged records still buffered in user space (``delay``
        #: chaos faults); flushed ahead of the next write/flush/close.
        self._pending = b""

    def _next_op(self) -> int:
        key = str(self.path)
        with JsonlWriter._op_lock:
            op = JsonlWriter._op_counters.get(key, 0)
            JsonlWriter._op_counters[key] = op + 1
            return op

    # -- offsets ---------------------------------------------------------------------

    @property
    def visible_offset(self) -> int:
        """Bytes a concurrent reader of the file sees right now."""
        return self._size

    @property
    def durable_offset(self) -> int:
        """Bytes guaranteed to survive a hard process kill."""
        return self._durable

    # -- the write path --------------------------------------------------------------

    def write(self, record: dict) -> None:
        """Write one record durably (flushed and fsynced before returning).

        On failure — injected or real — the file is repaired back to the
        last acknowledged record boundary and a typed
        :class:`JournalWriteError` is raised; the record was *not*
        accepted and may be retried.
        """
        if self._fh is None:
            raise ValueError(f"{self.path}: writer is closed")
        line = json.dumps(record).encode("utf-8") + b"\n"
        plan = None
        if self.chaos is not None:
            plan = self.chaos.plan(self.path, self._next_op())
        if plan == "enospc":
            # Simulated full disk: nothing of the record reaches the file.
            raise JournalWriteError(self.path, "append", "enospc")
        if plan == "torn":
            # A torn write: earlier delayed records plus a strict prefix
            # of this record land, then the device "fails".  Repair by
            # truncating the partial record away; the delayed records
            # became visible (they were already acknowledged).
            self._flush_pending()
            tear_at = max(1, len(line) // 2)
            self._os_write(line[:tear_at], repair_to=self._size)
            self._repair(self._size)
            raise JournalWriteError(self.path, "append", "torn")
        if plan == "delay":
            # Acknowledged but buffered: visible (and durable) only once
            # a later write, flush or close pushes it out.
            self._pending += line
            return
        before = self._size
        self._flush_pending()
        self._os_write(line, repair_to=before)
        self._size += len(line)
        if plan == "fsync":
            # The append landed but its fsync failed: treat the record as
            # not accepted — truncate it away so the caller may retry
            # without double-appending.  Earlier flushed bytes stay.
            self._repair(self._size - len(line))
            raise JournalWriteError(self.path, "fsync", "fsync")
        self._fsync(repair_to=before)
        if self.fsync:
            self._durable = self._size

    def flush(self) -> None:
        """Push any delayed records to the OS and (if enabled) to disk."""
        if self._fh is None:
            return
        self._flush_pending()
        self._fsync(repair_to=None)
        if self.fsync:
            self._durable = self._size

    def _flush_pending(self) -> None:
        if self._pending:
            pending, self._pending = self._pending, b""
            self._os_write(pending, repair_to=self._size, restore=pending)
            self._size += len(pending)

    def _os_write(self, data: bytes, *, repair_to: int | None,
                  restore: bytes | None = None) -> None:
        try:
            self._fh.write(data)
        except OSError as exc:
            if repair_to is not None:
                self._repair(repair_to)
            if restore is not None:
                self._pending = restore + self._pending
            raise JournalWriteError(
                self.path, "append", "os", f"{self.path}: {exc}"
            ) from exc

    def _fsync(self, *, repair_to: int | None) -> None:
        if not self.fsync:
            return
        try:
            os.fsync(self._fh.fileno())
        except OSError as exc:
            if repair_to is not None:
                self._repair(repair_to)
            raise JournalWriteError(
                self.path, "fsync", "os", f"{self.path}: {exc}"
            ) from exc

    def _repair(self, offset: int) -> None:
        """Truncate the file back to a known-good record boundary."""
        try:
            self._fh.truncate(offset)
            # "wb" files write at the file position, not at EOF: rewind
            # past the truncation so the next append lands at the
            # boundary instead of leaving a null-padded hole.
            self._fh.seek(offset)
            self._size = offset
            self._durable = min(self._durable, offset)
        except OSError:  # pragma: no cover - repair is best effort
            pass

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        """Flush delayed records, then close (graceful shutdown)."""
        if self._fh is not None:
            try:
                self.flush()
            finally:
                self._fh.close()
                self._fh = None

    def crash(self) -> None:
        """Simulate a hard kill: lose buffered records, keep durable ones.

        Acknowledged-but-delayed records vanish and the on-disk file is
        truncated to the last fsynced offset — exactly the state a real
        ``SIGKILL`` (or power loss) would leave behind.  The writer is
        closed afterwards.
        """
        if self._fh is not None:
            self._pending = b""
            self._repair(self._durable)
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def scan_jsonl(raw: bytes) -> list[tuple[dict, int]]:
    """Parse the intact-record prefix of a JSONL byte string.

    Returns ``(record, end_offset)`` pairs for every complete, valid
    line, where ``end_offset`` is the byte offset just past the record's
    newline — the offset a resuming writer truncates to in order to keep
    the file through that record.  A torn final line (no trailing
    newline: the crash landed mid-write), a non-UTF-8 line or a non-JSON
    line invalidates itself and everything after it; blank lines are
    skipped.
    """
    records: list[tuple[dict, int]] = []
    offset = 0
    for line in raw.split(b"\n"):
        line_end = offset + len(line) + 1  # + the newline
        if line_end > len(raw):
            break  # torn final line (no newline): mid-write crash
        if line.strip():
            try:
                records.append((json.loads(line.decode("utf-8")), line_end))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
        offset = line_end
    return records
