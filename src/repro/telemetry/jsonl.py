"""Durable JSONL plumbing shared by the run journal and the trace exporter.

Both crash-safe artifacts of this package — the run journal
(:class:`~repro.io.RunJournal`) and the span trace
(:func:`~repro.telemetry.export.write_trace`) — are append-only JSONL
files with the same durability contract: every line is flushed and fsynced
before the writer moves on, so a killed process loses at most the line in
flight, and the reader tolerates (and can locate) a torn tail.  This
module is that contract, factored out so the two formats cannot drift:

* :class:`JsonlWriter` — one JSON object per line, fsync per line;
* :func:`scan_jsonl` — parse a file's intact-line prefix, stopping at the
  first torn or corrupt line and reporting the byte offset a resuming
  writer may truncate to.

It deliberately imports nothing from the rest of the package, so every
layer (including :mod:`repro.io`) can build on it without cycles.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

__all__ = ["JsonlWriter", "scan_jsonl"]


class JsonlWriter:
    """Append-only JSONL writer with per-line flush + fsync."""

    def __init__(self, path: str | Path, append: bool = False, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._fh = open(self.path, "ab" if append else "wb")

    def write(self, record: dict) -> None:
        """Write one record durably (flushed and fsynced before returning)."""
        if self._fh is None:
            raise ValueError(f"{self.path}: writer is closed")
        self._fh.write(json.dumps(record).encode("utf-8") + b"\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def scan_jsonl(raw: bytes) -> list[tuple[dict, int]]:
    """Parse the intact-record prefix of a JSONL byte string.

    Returns ``(record, end_offset)`` pairs for every complete, valid
    line, where ``end_offset`` is the byte offset just past the record's
    newline — the offset a resuming writer truncates to in order to keep
    the file through that record.  A torn final line (no trailing
    newline: the crash landed mid-write), a non-UTF-8 line or a non-JSON
    line invalidates itself and everything after it; blank lines are
    skipped.
    """
    records: list[tuple[dict, int]] = []
    offset = 0
    for line in raw.split(b"\n"):
        line_end = offset + len(line) + 1  # + the newline
        if line_end > len(raw):
            break  # torn final line (no newline): mid-write crash
        if line.strip():
            try:
                records.append((json.loads(line.decode("utf-8")), line_end))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
        offset = line_end
    return records
