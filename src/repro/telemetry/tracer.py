"""Hierarchical span tracing on the simulated clock.

A *span* is one timed phase of an optimization run — the run itself, a
driver round, a proposal, a trial, a GP fit.  Spans nest (each records its
parent), carry two time axes, and accumulate in a bounded in-memory
buffer until the run exports them:

* ``t0_s``/``t1_s`` — *simulated* seconds read from the run's
  :class:`~repro.core.clock.SimClock`.  These are deterministic: two
  identically-seeded runs (on any worker backend) emit byte-identical
  simulated timelines, which is what the golden-run regression suite
  pins.
* ``wall_ms`` — *real* elapsed milliseconds of the instrumented code.
  Diagnostics only; every trace comparison ignores it.

The default tracer everywhere is :data:`NOOP_TRACER`, whose ``span()``
hands back a shared, stateless context manager — no allocation, no clock
reads, no buffer.  Untraced runs therefore execute the exact code paths
they did before instrumentation existed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "NoopTracer", "NOOP_TRACER"]


@dataclass(frozen=True)
class Span:
    """One completed span."""

    #: Buffer-unique id, allocated in *opening* order (children of a span
    #: carry a higher id than their parent even though they close first).
    span_id: int
    #: Id of the enclosing span; ``None`` for the root.
    parent_id: int | None
    #: Phase name (``'run'``, ``'round'``, ``'trial'``, ``'gp_fit'``, ...).
    name: str
    #: Simulated clock at entry / exit, s.
    t0_s: float
    t1_s: float
    #: Real elapsed time of the instrumented code, ms (non-deterministic;
    #: excluded from every trace comparison).
    wall_ms: float
    #: Deterministic, JSON-ready annotations (status, counts, errors...).
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Simulated duration, s."""
        return self.t1_s - self.t0_s


class _ActiveSpan:
    """An open span: a context manager that records itself on exit."""

    __slots__ = ("_tracer", "_name", "_attrs", "_id", "_parent", "_t0", "_w0")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes (typically outcomes known only at exit)."""
        self._attrs.update(attrs)

    def __enter__(self) -> "_ActiveSpan":
        tracer = self._tracer
        self._id = tracer._allocate_id()
        self._parent = tracer._stack[-1] if tracer._stack else None
        tracer._stack.append(self._id)
        self._t0 = tracer.now_s
        self._w0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        tracer = self._tracer
        tracer._stack.pop()
        tracer._append(
            Span(
                span_id=self._id,
                parent_id=self._parent,
                name=self._name,
                t0_s=self._t0,
                t1_s=tracer.now_s,
                wall_ms=(time.perf_counter() - self._w0) * 1e3,
                attrs=self._attrs,
            )
        )


class Tracer:
    """Collects spans into a bounded in-memory buffer.

    Parameters
    ----------
    clock:
        The run's :class:`~repro.core.clock.SimClock`.  May be ``None``
        at construction (the driver binds its objective's clock when the
        run starts); unbound spans read time 0.0.
    max_spans:
        Buffer bound.  Once full, further spans are counted in
        :attr:`dropped` instead of stored — tracing must never turn a
        long run into an out-of-memory failure.
    """

    enabled = True

    def __init__(self, clock=None, max_spans: int = 100_000):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.clock = clock
        self.max_spans = int(max_spans)
        self.spans: list[Span] = []
        #: Spans discarded after the buffer filled.
        self.dropped = 0
        self._stack: list[int] = []
        self._next_id = 0

    @property
    def now_s(self) -> float:
        """Current simulated time (0.0 before a clock is bound)."""
        return 0.0 if self.clock is None else self.clock.now_s

    @property
    def n_spans(self) -> int:
        """Spans captured in the buffer (excludes dropped ones)."""
        return len(self.spans)

    def _allocate_id(self) -> int:
        span_id = self._next_id
        self._next_id += 1
        return span_id

    def _append(self, span: Span) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
        else:
            self.spans.append(span)

    # -- recording -----------------------------------------------------------

    def span(self, name: str, **attrs) -> _ActiveSpan:
        """Open a span as a context manager; closes at the ``with`` exit.

        The yielded handle's :meth:`~_ActiveSpan.set` attaches further
        attributes before the span closes.
        """
        return _ActiveSpan(self, name, attrs)

    def record(
        self,
        name: str,
        t0_s: float,
        t1_s: float,
        /,
        parent: int | None = None,
        **attrs,
    ) -> int:
        """Record a completed span with explicit simulated times.

        Used to *synthesize* spans whose phases did not run under a live
        ``with`` block — e.g. the per-trial train/measure/retry intervals
        of a pooled batch, which execute concurrently on workers and are
        reconstructed from their outcomes.  ``parent`` defaults to the
        innermost open span.  Returns the new span's id so children can
        be attached to it.

        The first three parameters are positional-only so attribute
        names like ``name`` never collide with them; ``parent`` is the
        one reserved attribute key.
        """
        if parent is None and self._stack:
            parent = self._stack[-1]
        span_id = self._allocate_id()
        self._append(
            Span(
                span_id=span_id,
                parent_id=parent,
                name=name,
                t0_s=float(t0_s),
                t1_s=float(t1_s),
                wall_ms=0.0,
                attrs=attrs,
            )
        )
        return span_id


class _NoopSpan:
    """Stateless stand-in for an open span (shared singleton)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopTracer:
    """The default tracer: records nothing, costs (almost) nothing."""

    enabled = False
    clock = None
    spans: tuple = ()
    dropped = 0
    n_spans = 0

    def span(self, name: str, **attrs) -> _NoopSpan:
        return _NOOP_SPAN

    def record(self, name, t0_s, t1_s, /, parent=None, **attrs) -> None:
        return None


#: Shared no-op tracer used wherever no telemetry was requested.
NOOP_TRACER = NoopTracer()
