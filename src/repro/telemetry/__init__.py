"""Run telemetry: tracing + metrics for observable optimization runs.

HyperPower's claims are trajectory claims — fewer samples and less wall
time to the best feasible error — and this package makes those
trajectories *observable*.  It is zero-dependency (stdlib only) and built
around one invariant: every exported quantity except span ``wall_ms`` is
a pure function of the run's seeds, so traces are byte-comparable across
re-runs and across the serial/thread/process pool backends, and can be
committed as golden regression fixtures.

* :mod:`~repro.telemetry.tracer` — hierarchical spans on the simulated
  clock (``run > round > {propose > {screen, gp_fit, gp_append,
  acquisition}, trial > {train, measure, retry}}``) in a bounded buffer;
* :mod:`~repro.telemetry.metrics` — counters/gauges/histograms of the
  run's health numbers (cache hit rate, rejections, refit-vs-append,
  retry time, pool occupancy);
* :mod:`~repro.telemetry.export` — durable JSONL traces with torn-tail
  recovery, exact reload, and field-by-field diffing;
* :mod:`~repro.telemetry.jsonl` — the fsync/torn-tail JSONL machinery,
  shared with the crash-safe run journal in :mod:`repro.io`.

The :class:`Telemetry` bundle is what runs accept: pass one to
:meth:`~repro.experiments.setup.ExperimentSetup.run` (CLI:
``--trace-out``/``--metrics-out``) and the driver threads its tracer and
registry through every instrumented layer.  The default everywhere is the
shared no-op pair, leaving untraced runs byte-identical to a build
without this package.
"""

from __future__ import annotations

from .export import (
    TRACE_FORMAT,
    Trace,
    diff_traces,
    load_trace,
    normalize_trace,
    span_from_dict,
    span_to_dict,
    write_metrics,
    write_trace,
)
from .jsonl import JournalWriteError, JsonlWriter, scan_jsonl
from .metrics import (
    NOOP_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetricsRegistry,
)
from .tracer import NOOP_TRACER, NoopTracer, Span, Tracer

__all__ = [
    "Telemetry",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "Span",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NOOP_METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "JournalWriteError",
    "JsonlWriter",
    "scan_jsonl",
    "TRACE_FORMAT",
    "Trace",
    "write_trace",
    "load_trace",
    "normalize_trace",
    "diff_traces",
    "span_to_dict",
    "span_from_dict",
    "write_metrics",
]


class Telemetry:
    """One run's telemetry bundle: a tracer plus a metrics registry.

    Construct one, pass it to a run, then export::

        telemetry = Telemetry()
        result = setup.run("HW-IECI", "hyperpower", max_evaluations=10,
                           telemetry=telemetry)
        write_trace("run.trace.jsonl", telemetry.tracer)
        write_metrics("run.metrics.json", telemetry.metrics.snapshot())

    The tracer's clock is bound by the driver when the run starts, so one
    bundle must not be shared across concurrent runs (sequential reuse
    accumulates spans and metrics across runs, which is occasionally what
    a study wants).
    """

    def __init__(self, max_spans: int = 100_000, clock=None):
        self.tracer = Tracer(clock=clock, max_spans=max_spans)
        self.metrics = MetricsRegistry()

    def snapshot(self) -> dict:
        """JSON-ready summary recorded on ``RunResult.telemetry``."""
        return {
            "metrics": self.metrics.snapshot(),
            "n_spans": self.tracer.n_spans,
            "dropped_spans": self.tracer.dropped,
        }
