"""Trace and metrics export: JSONL on disk, tolerant reload, exact diff.

The trace file format (``repro-trace/1``) mirrors the run journal's
discipline — one JSON object per line, every line fsynced, a torn tail
recoverable — via the shared :mod:`~repro.telemetry.jsonl` machinery:

* line 1: ``{"format": "repro-trace/1", "meta": {...}}``;
* one line per span: ``{"id", "parent", "name", "t0_s", "t1_s",
  "wall_ms", "attrs"}``, in buffer (span-completion) order;
* final line: ``{"end": true, "n_spans": N, "dropped": D}`` — absent when
  the writer died mid-run.

Everything in a span line except ``wall_ms`` is deterministic for a given
seeded run, which is what makes committed golden traces meaningful:
:func:`diff_traces` compares two traces field by field with the
non-deterministic fields stripped, and returns human-actionable mismatch
descriptions instead of a bare boolean.
"""

from __future__ import annotations

import json
from pathlib import Path

from .jsonl import JsonlWriter, scan_jsonl
from .tracer import Span, Tracer

__all__ = [
    "TRACE_FORMAT",
    "span_to_dict",
    "span_from_dict",
    "write_trace",
    "load_trace",
    "Trace",
    "normalize_trace",
    "diff_traces",
    "write_metrics",
]

#: Format tag of the trace header line.
TRACE_FORMAT = "repro-trace/1"

#: Span fields that are *not* deterministic across re-runs/backends and
#: are therefore stripped before any trace comparison.
NONDETERMINISTIC_FIELDS = ("wall_ms",)


def span_to_dict(span: Span) -> dict:
    """JSON-ready dictionary for one span."""
    return {
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "t0_s": span.t0_s,
        "t1_s": span.t1_s,
        "wall_ms": span.wall_ms,
        "attrs": span.attrs,
    }


def span_from_dict(data: dict) -> Span:
    """Inverse of :func:`span_to_dict`."""
    return Span(
        span_id=int(data["id"]),
        parent_id=data.get("parent"),
        name=data["name"],
        t0_s=float(data["t0_s"]),
        t1_s=float(data["t1_s"]),
        wall_ms=float(data.get("wall_ms", 0.0)),
        attrs=dict(data.get("attrs", {})),
    )


def write_trace(
    path: str | Path, tracer: Tracer, meta: dict | None = None
) -> Path:
    """Export a tracer's buffered spans as a durable JSONL trace file."""
    path = Path(path)
    with JsonlWriter(path) as writer:
        writer.write({"format": TRACE_FORMAT, "meta": meta or {}})
        for span in tracer.spans:
            writer.write(span_to_dict(span))
        writer.write(
            {"end": True, "n_spans": tracer.n_spans, "dropped": tracer.dropped}
        )
    return path


class Trace:
    """A reloaded trace: header meta, spans, and completeness."""

    def __init__(self, meta: dict, spans: list[Span], complete: bool, dropped: int = 0):
        self.meta = meta
        self.spans = spans
        #: Whether the end marker was present (the exporting run finished
        #: and nothing was torn off the tail).
        self.complete = complete
        #: Spans the exporting tracer discarded after its buffer filled.
        self.dropped = dropped

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> list[Span]:
        """Top-level spans (usually the single ``run`` span)."""
        return [s for s in self.spans if s.parent_id is None]

    def children(self, span_id: int) -> list[Span]:
        """Direct children of one span, in buffer order."""
        return [s for s in self.spans if s.parent_id == span_id]


def load_trace(path: str | Path) -> Trace:
    """Reload a trace file, dropping any torn tail."""
    path = Path(path)
    records = [record for record, _ in scan_jsonl(path.read_bytes())]
    if not records or records[0].get("format") != TRACE_FORMAT:
        raise ValueError(f"{path}: not a repro trace file")
    meta = dict(records[0].get("meta", {}))
    spans: list[Span] = []
    complete = False
    dropped = 0
    for record in records[1:]:
        if record.get("end"):
            complete = True
            dropped = int(record.get("dropped", 0))
            break
        spans.append(span_from_dict(record))
    return Trace(meta=meta, spans=spans, complete=complete, dropped=dropped)


def normalize_trace(records: list[dict]) -> list[dict]:
    """Strip the non-deterministic fields from span records.

    Takes and returns span dictionaries (see :func:`span_to_dict`); the
    result is what golden files store and what every trace comparison
    operates on.
    """
    normalized = []
    for record in records:
        record = dict(record)
        for fields in NONDETERMINISTIC_FIELDS:
            record.pop(fields, None)
        normalized.append(record)
    return normalized


def _describe(record: dict) -> str:
    return f"span #{record.get('id')} {record.get('name')!r}"


def diff_traces(
    expected: list[dict], actual: list[dict], max_mismatches: int = 10
) -> list[str]:
    """Field-by-field comparison of two normalized span-record lists.

    Returns human-actionable mismatch descriptions (empty when the traces
    agree).  Both inputs should already be normalized via
    :func:`normalize_trace`; comparison is exact — simulated times are
    deterministic, so any drift is a real behaviour change.
    """
    mismatches: list[str] = []
    if len(expected) != len(actual):
        mismatches.append(
            f"span count differs: expected {len(expected)}, got {len(actual)}"
        )
    for i, (exp, act) in enumerate(zip(expected, actual)):
        if exp == act:
            continue
        keys = sorted(set(exp) | set(act))
        for key in keys:
            if exp.get(key) == act.get(key):
                continue
            mismatches.append(
                f"span[{i}] ({_describe(exp)}): field {key!r} expected "
                f"{exp.get(key)!r}, got {act.get(key)!r}"
            )
        if len(mismatches) >= max_mismatches:
            mismatches.append(
                f"... (stopping after {max_mismatches} mismatches)"
            )
            return mismatches
    return mismatches


def write_metrics(
    path: str | Path, snapshot: dict, meta: dict | None = None
) -> Path:
    """Write a metrics snapshot as a single JSON document."""
    path = Path(path)
    payload = {
        "format": "repro-metrics/1",
        "meta": meta or {},
        "metrics": snapshot,
    }
    path.write_text(json.dumps(payload, indent=1, sort_keys=True), encoding="utf-8")
    return path
