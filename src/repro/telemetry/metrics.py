"""Run metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` aggregates the *deterministic* health numbers
of one optimization run — cache hit rates, screening rejections, GP
refit-vs-append counts, retry/backoff time, pool occupancy.  Every value
is derived from simulated quantities (counts and simulated seconds, never
real wall time), so two identically-seeded runs — on any worker backend —
snapshot byte-identical metrics; real-time diagnostics belong to span
``wall_ms`` fields instead.

The registry is snapshot onto :attr:`~repro.core.result.RunResult.
telemetry` at the end of a traced run and dumpable via the CLI's
``--metrics-out``.  Like the tracer, every instrumented call site holds a
no-op default (:data:`NOOP_METRICS`), so untraced runs skip all
bookkeeping.
"""

from __future__ import annotations

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetricsRegistry",
    "NOOP_METRICS",
]

#: Default histogram bucket upper bounds (dimensionless; callers pass
#: their own for quantities with natural scales).
DEFAULT_BUCKETS = (0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


class Counter:
    """A monotonically increasing count (ints or simulated seconds)."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount=1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = None

    def set(self, value) -> None:
        self.value = value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """A distribution summarised as bucket counts plus count/sum/min/max.

    ``bounds`` are inclusive upper bucket edges; one overflow bucket
    catches everything above the last edge.
    """

    kind = "histogram"

    def __init__(self, bounds=DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Name-keyed metric store with get-or-create accessors."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = factory()
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {metric.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, "gauge")

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> Histogram:
        return self._get(name, lambda: Histogram(bounds), "histogram")

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> dict:
        """JSON-ready ``{name: {"type": ..., ...}}``, sorted by name."""
        return {
            name: self._metrics[name].snapshot()
            for name in sorted(self._metrics)
        }


class _NoopMetric:
    """Shared stand-in accepting every metric write."""

    __slots__ = ()

    def inc(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass


_NOOP_METRIC = _NoopMetric()


class NoopMetricsRegistry:
    """The default registry: accepts every write, stores nothing."""

    enabled = False

    def counter(self, name: str) -> _NoopMetric:
        return _NOOP_METRIC

    def gauge(self, name: str) -> _NoopMetric:
        return _NOOP_METRIC

    def histogram(self, name: str, bounds=DEFAULT_BUCKETS) -> _NoopMetric:
        return _NOOP_METRIC

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict:
        return {}


#: Shared no-op registry used wherever no telemetry was requested.
NOOP_METRICS = NoopMetricsRegistry()
