"""Caffe prototxt export.

The paper's wrapper scripts "automate the generation of Caffe simulations"
from Spearmint's suggestions; this module renders a
:class:`~repro.nn.network.NetworkSpec` as the equivalent Caffe
``.prototxt`` text, making the analogy concrete (and giving the builders a
human-auditable artifact).

Only the layer types the AlexNet variants use are supported; the output
follows Caffe's classic (pre-NetSpec) syntax.
"""

from __future__ import annotations

from .layers import Conv2D, Dense, Dropout, Flatten, Pooling, ReLU, Softmax
from .network import NetworkSpec

__all__ = ["to_prototxt"]


def _block(name: str, kind: str, bottom: str, top: str, body: str = "") -> str:
    lines = [
        "layer {",
        f'  name: "{name}"',
        f'  type: "{kind}"',
        f'  bottom: "{bottom}"',
        f'  top: "{top}"',
    ]
    if body:
        lines.append(body)
    lines.append("}")
    return "\n".join(lines)


def to_prototxt(network: NetworkSpec) -> str:
    """Render ``network`` as Caffe prototxt text."""
    chunks = [f'name: "{network.name}"']
    channels, height, width = network.input_shape
    chunks.append(
        "input: \"data\"\n"
        f"input_shape {{ dim: 1 dim: {channels} dim: {height} dim: {width} }}"
    )

    bottom = "data"
    counters: dict[str, int] = {}
    for layer in network.layers:
        kind = type(layer).__name__
        counters[kind] = counters.get(kind, 0) + 1
        index = counters[kind]

        if isinstance(layer, Conv2D):
            name = f"conv{index}"
            body = (
                "  convolution_param {\n"
                f"    num_output: {layer.features}\n"
                f"    kernel_size: {layer.kernel}\n"
                f"    stride: {layer.stride}\n"
                f"    pad: {layer.padding}\n"
                "  }"
            )
            chunks.append(_block(name, "Convolution", bottom, name, body))
            bottom = name
        elif isinstance(layer, Pooling):
            name = f"pool{index}"
            op = "MAX" if layer.op == "max" else "AVE"
            body = (
                "  pooling_param {\n"
                f"    pool: {op}\n"
                f"    kernel_size: {layer.kernel}\n"
                f"    stride: {layer.effective_stride}\n"
                "  }"
            )
            chunks.append(_block(name, "Pooling", bottom, name, body))
            bottom = name
        elif isinstance(layer, ReLU):
            name = f"relu{index}"
            # Caffe runs ReLU in place: bottom == top.
            chunks.append(_block(name, "ReLU", bottom, bottom))
        elif isinstance(layer, Dropout):
            name = f"drop{index}"
            body = f"  dropout_param {{ dropout_ratio: {layer.rate} }}"
            chunks.append(_block(name, "Dropout", bottom, bottom, body))
        elif isinstance(layer, Dense):
            name = f"fc{index}"
            body = f"  inner_product_param {{ num_output: {layer.units} }}"
            chunks.append(_block(name, "InnerProduct", bottom, name, body))
            bottom = name
        elif isinstance(layer, Flatten):
            name = f"flatten{index}"
            chunks.append(_block(name, "Flatten", bottom, name))
            bottom = name
        elif isinstance(layer, Softmax):
            name = f"prob"
            chunks.append(_block(name, "Softmax", bottom, name))
            bottom = name
        else:
            raise ValueError(
                f"no prototxt rendering for layer type {kind!r}"
            )
    return "\n".join(chunks) + "\n"
