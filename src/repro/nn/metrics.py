"""Analytic cost metrics over :class:`~repro.nn.network.NetworkSpec`.

The hardware simulator consumes these per-layer and whole-network counts:
FLOPs (compute), weight and activation bytes (memory footprint and traffic).
This is the layer-wise accounting style of NeuralPower [10], which the paper
cites as the more elaborate modeling backend HyperPower can plug in.
"""

from __future__ import annotations

from dataclasses import dataclass

from .layers import DTYPE_BYTES, Layer, Shape
from .network import NetworkSpec

__all__ = [
    "LayerProfile",
    "NetworkProfile",
    "profile_network",
    "total_flops",
    "total_params",
    "weight_bytes",
    "activation_bytes",
    "peak_activation_bytes",
    "memory_traffic_bytes",
]


@dataclass(frozen=True)
class LayerProfile:
    """Analytic cost of a single layer within a network."""

    index: int
    kind: str
    input_shape: Shape
    output_shape: Shape
    params: int
    flops: int
    weight_bytes: int
    activation_bytes: int

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte moved (weights once + output written once)."""
        moved = self.weight_bytes + self.activation_bytes
        if moved == 0:
            return 0.0
        return self.flops / moved


@dataclass(frozen=True)
class NetworkProfile:
    """Whole-network cost summary with the per-layer breakdown attached."""

    layers: tuple[LayerProfile, ...]

    @property
    def total_flops(self) -> int:
        """Inference FLOPs for one sample."""
        return sum(layer.flops for layer in self.layers)

    @property
    def total_params(self) -> int:
        """Learnable scalar count."""
        return sum(layer.params for layer in self.layers)

    @property
    def weight_bytes(self) -> int:
        """Bytes of model parameters."""
        return sum(layer.weight_bytes for layer in self.layers)

    @property
    def activation_bytes(self) -> int:
        """Sum of all per-layer output activation bytes for one sample."""
        return sum(layer.activation_bytes for layer in self.layers)

    @property
    def peak_activation_bytes(self) -> int:
        """Largest consecutive input+output activation pair for one sample.

        Approximates the live-tensor high-water mark of a framework that
        frees each activation as soon as its consumer has run.
        """
        peak = 0
        for layer in self.layers:
            elements_in = 1
            for dim in layer.input_shape:
                elements_in *= dim
            live = elements_in * DTYPE_BYTES + layer.activation_bytes
            peak = max(peak, live)
        return peak

    @property
    def memory_traffic_bytes(self) -> int:
        """Approximate DRAM bytes moved per inference sample.

        Each layer reads its input and weights and writes its output once —
        an upper bound that ignores cache reuse, adequate for a utilization
        model.
        """
        traffic = 0
        for layer in self.layers:
            elements_in = 1
            for dim in layer.input_shape:
                elements_in *= dim
            traffic += (
                elements_in * DTYPE_BYTES
                + layer.weight_bytes
                + layer.activation_bytes
            )
        return traffic


def profile_network(network: NetworkSpec) -> NetworkProfile:
    """Compute the per-layer analytic profile of ``network``."""
    profiles = []
    for index, (layer, in_shape, out_shape) in enumerate(network.walk()):
        profiles.append(
            LayerProfile(
                index=index,
                kind=type(layer).__name__,
                input_shape=in_shape,
                output_shape=out_shape,
                params=layer.param_count(in_shape),
                flops=layer.flops(in_shape),
                weight_bytes=layer.weight_bytes(in_shape),
                activation_bytes=layer.activation_bytes(in_shape),
            )
        )
    return NetworkProfile(layers=tuple(profiles))


def total_flops(network: NetworkSpec) -> int:
    """Inference FLOPs of ``network`` for one sample."""
    return profile_network(network).total_flops


def total_params(network: NetworkSpec) -> int:
    """Learnable parameter count of ``network``."""
    return profile_network(network).total_params


def weight_bytes(network: NetworkSpec) -> int:
    """Bytes of ``network``'s parameters."""
    return profile_network(network).weight_bytes


def activation_bytes(network: NetworkSpec) -> int:
    """Sum of per-layer activation bytes of ``network`` for one sample."""
    return profile_network(network).activation_bytes


def peak_activation_bytes(network: NetworkSpec) -> int:
    """Live-activation high-water mark of ``network`` for one sample."""
    return profile_network(network).peak_activation_bytes


def memory_traffic_bytes(network: NetworkSpec) -> int:
    """Approximate DRAM traffic of ``network`` for one inference sample."""
    return profile_network(network).memory_traffic_bytes
