"""Network specification — the Caffe-prototxt analog.

A :class:`NetworkSpec` is an immutable, validated sequence of layers with a
fixed input shape and class count.  Construction runs full shape inference,
so an invalid topology (e.g. a pooling kernel larger than the surviving
spatial extent) fails fast with a clear error, mirroring how a malformed
prototxt would fail inside Caffe.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from .layers import Layer, Shape

__all__ = ["NetworkSpec"]


class NetworkSpec:
    """An immutable feed-forward network description."""

    def __init__(
        self,
        name: str,
        input_shape: Shape,
        layers: Iterable[Layer],
        num_classes: int,
    ):
        self._name = str(name)
        self._input_shape = tuple(int(d) for d in input_shape)
        self._layers: tuple[Layer, ...] = tuple(layers)
        self._num_classes = int(num_classes)

        if not self._layers:
            raise ValueError("a network needs at least one layer")
        if self._num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if any(d < 1 for d in self._input_shape):
            raise ValueError(f"invalid input shape {self._input_shape}")

        # Shape inference doubles as topology validation.
        shapes: list[Shape] = [self._input_shape]
        for index, layer in enumerate(self._layers):
            try:
                shapes.append(layer.output_shape(shapes[-1]))
            except ValueError as exc:
                raise ValueError(
                    f"network {self._name!r}: layer {index} "
                    f"({type(layer).__name__}) rejected input "
                    f"{shapes[-1]}: {exc}"
                ) from exc
        self._shapes: tuple[Shape, ...] = tuple(shapes)

        if self._shapes[-1] != (self._num_classes,):
            raise ValueError(
                f"network {self._name!r} ends with shape {self._shapes[-1]}, "
                f"expected ({self._num_classes},)"
            )

    # -- identity ------------------------------------------------------------

    @property
    def name(self) -> str:
        """Human-readable network name."""
        return self._name

    @property
    def input_shape(self) -> Shape:
        """Per-sample input shape, ``(C, H, W)``."""
        return self._input_shape

    @property
    def num_classes(self) -> int:
        """Number of output classes."""
        return self._num_classes

    @property
    def layers(self) -> tuple[Layer, ...]:
        """The layer sequence."""
        return self._layers

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self):
        return iter(self._layers)

    def __repr__(self) -> str:
        return (
            f"NetworkSpec(name={self._name!r}, input={self._input_shape}, "
            f"layers={len(self._layers)}, classes={self._num_classes})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NetworkSpec):
            return NotImplemented
        return (
            self._input_shape == other._input_shape
            and self._layers == other._layers
            and self._num_classes == other._num_classes
        )

    def __hash__(self) -> int:
        return hash((self._input_shape, self._layers, self._num_classes))

    def fingerprint(self) -> int:
        """A stable 32-bit topology fingerprint.

        Unlike ``hash()``, this does not depend on ``PYTHONHASHSEED``, so it
        can seed reproducible per-network effects (e.g. the hardware
        simulator's kernel-selection power variation) across processes.
        """
        import zlib

        parts = [repr(self._input_shape), repr(self._num_classes)]
        parts.extend(repr(layer) for layer in self._layers)
        return zlib.crc32("|".join(parts).encode("utf-8"))

    # -- shapes ---------------------------------------------------------------

    @property
    def layer_input_shapes(self) -> tuple[Shape, ...]:
        """Input shape seen by each layer, in order."""
        return self._shapes[:-1]

    @property
    def layer_output_shapes(self) -> tuple[Shape, ...]:
        """Output shape produced by each layer, in order."""
        return self._shapes[1:]

    @property
    def output_shape(self) -> Shape:
        """Final output shape — always ``(num_classes,)``."""
        return self._shapes[-1]

    def describe(self) -> str:
        """A multi-line, prototxt-like summary of the topology."""
        lines = [f"network {self._name!r}  input {self._input_shape}"]
        for layer, in_shape, out_shape in zip(
            self._layers, self.layer_input_shapes, self.layer_output_shapes
        ):
            lines.append(f"  {type(layer).__name__:<8} {in_shape} -> {out_shape}")
        return "\n".join(lines)

    # -- composite layer/shape walk -------------------------------------------

    def walk(self) -> Sequence[tuple[Layer, Shape, Shape]]:
        """Yield ``(layer, input_shape, output_shape)`` triples in order."""
        return list(
            zip(self._layers, self.layer_input_shapes, self.layer_output_shapes)
        )
