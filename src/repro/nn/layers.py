"""Layer specifications for the CNN substrate.

The paper generates Caffe network definitions for each candidate
configuration.  We replace Caffe with a lightweight *specification* layer:
each class below describes one layer's topology and knows how to

* infer its output shape from an input shape,
* count its learnable parameters,
* count its inference FLOPs (multiply-accumulate counted as two FLOPs), and
* account for the bytes its weights and output activations occupy.

No tensors are ever materialised — the hardware simulator (:mod:`repro.hwsim`)
and the training simulator (:mod:`repro.trainsim`) only need these analytic
quantities.

Shapes are ``(channels, height, width)`` tuples for spatial tensors and
``(features,)`` tuples after flattening, mirroring Caffe's NCHW layout with
the batch dimension left implicit.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

__all__ = [
    "Shape",
    "Layer",
    "Conv2D",
    "Pooling",
    "ReLU",
    "Flatten",
    "Dense",
    "Dropout",
    "Softmax",
    "DTYPE_BYTES",
]

#: A tensor shape without the batch dimension.
Shape = tuple[int, ...]

#: All simulated tensors are FP32, matching the paper's Caffe setup.
DTYPE_BYTES = 4


def _shape_elements(shape: Shape) -> int:
    count = 1
    for dim in shape:
        count *= dim
    return count


class Layer(ABC):
    """Base class for layer specifications."""

    @abstractmethod
    def output_shape(self, input_shape: Shape) -> Shape:
        """Shape produced when the layer consumes ``input_shape``.

        Raises ``ValueError`` if the input shape is incompatible (wrong rank
        or spatially too small).
        """

    @abstractmethod
    def param_count(self, input_shape: Shape) -> int:
        """Number of learnable scalars (weights plus biases)."""

    @abstractmethod
    def flops(self, input_shape: Shape) -> int:
        """Inference floating-point operations for one input sample."""

    def weight_bytes(self, input_shape: Shape) -> int:
        """Bytes occupied by the layer's parameters."""
        return self.param_count(input_shape) * DTYPE_BYTES

    def activation_bytes(self, input_shape: Shape) -> int:
        """Bytes occupied by the layer's output activation for one sample."""
        return _shape_elements(self.output_shape(input_shape)) * DTYPE_BYTES

    def _require_spatial(self, input_shape: Shape) -> tuple[int, int, int]:
        if len(input_shape) != 3:
            raise ValueError(
                f"{type(self).__name__} needs a (C, H, W) input, got {input_shape}"
            )
        channels, height, width = input_shape
        if channels < 1 or height < 1 or width < 1:
            raise ValueError(f"invalid spatial shape {input_shape}")
        return channels, height, width


@dataclass(frozen=True)
class Conv2D(Layer):
    """2-D convolution with 'same'-style padding of ``kernel // 2``.

    Caffe's AlexNet prototxts pad convolutions to roughly preserve spatial
    size; we use ``pad = kernel // 2`` which preserves it exactly for odd
    kernels and shrinks by one for even kernels.
    """

    features: int
    kernel: int
    stride: int = 1

    def __post_init__(self) -> None:
        if self.features < 1:
            raise ValueError("features must be >= 1")
        if self.kernel < 1:
            raise ValueError("kernel must be >= 1")
        if self.stride < 1:
            raise ValueError("stride must be >= 1")

    @property
    def padding(self) -> int:
        """Implicit zero padding on each spatial border."""
        return self.kernel // 2

    def _spatial_out(self, size: int) -> int:
        out = (size + 2 * self.padding - self.kernel) // self.stride + 1
        if out < 1:
            raise ValueError(
                f"conv kernel {self.kernel} too large for spatial size {size}"
            )
        return out

    def output_shape(self, input_shape: Shape) -> Shape:
        _, height, width = self._require_spatial(input_shape)
        return (self.features, self._spatial_out(height), self._spatial_out(width))

    def param_count(self, input_shape: Shape) -> int:
        channels, _, _ = self._require_spatial(input_shape)
        weights = self.features * channels * self.kernel * self.kernel
        biases = self.features
        return weights + biases

    def flops(self, input_shape: Shape) -> int:
        channels, _, _ = self._require_spatial(input_shape)
        _, out_h, out_w = self.output_shape(input_shape)
        macs_per_output = channels * self.kernel * self.kernel
        outputs = self.features * out_h * out_w
        # One MAC = 2 FLOPs; add one FLOP per output for the bias.
        return outputs * (2 * macs_per_output + 1)


@dataclass(frozen=True)
class Pooling(Layer):
    """Max/average pooling with an explicit stride (Caffe semantics).

    The paper's spaces vary the pooling *kernel* in ``[1, 3]`` while the
    Caffe prototxts they derive from keep the downsampling *stride* fixed
    (2 in the classic CIFAR-10 variants) — kernel size then controls window
    overlap, not the downsampling factor.  ``stride=None`` ties the stride
    to the kernel (non-overlapping pooling).
    """

    kernel: int
    stride: int | None = None
    op: str = "max"

    def __post_init__(self) -> None:
        if self.kernel < 1:
            raise ValueError("kernel must be >= 1")
        if self.stride is not None and self.stride < 1:
            raise ValueError("stride must be >= 1")
        if self.op not in ("max", "avg"):
            raise ValueError(f"unknown pooling op {self.op!r}")

    @property
    def effective_stride(self) -> int:
        """The stride actually used (kernel-tied when ``stride`` is None)."""
        return self.kernel if self.stride is None else self.stride

    def _spatial_out(self, size: int) -> int:
        if size < self.kernel:
            raise ValueError(
                f"pool kernel {self.kernel} too large for spatial size {size}"
            )
        # Caffe uses ceil division for pooling output sizes.
        return -(-(size - self.kernel) // self.effective_stride) + 1

    def output_shape(self, input_shape: Shape) -> Shape:
        channels, height, width = self._require_spatial(input_shape)
        return (channels, self._spatial_out(height), self._spatial_out(width))

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def flops(self, input_shape: Shape) -> int:
        channels, _, _ = self._require_spatial(input_shape)
        _, out_h, out_w = self.output_shape(input_shape)
        # One comparison/add per element in each pooling window.
        return channels * out_h * out_w * self.kernel * self.kernel


@dataclass(frozen=True)
class ReLU(Layer):
    """Element-wise rectified linear activation."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def flops(self, input_shape: Shape) -> int:
        return _shape_elements(input_shape)


@dataclass(frozen=True)
class Flatten(Layer):
    """Collapse a spatial tensor to a feature vector."""

    def output_shape(self, input_shape: Shape) -> Shape:
        return (_shape_elements(input_shape),)

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def flops(self, input_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Dense(Layer):
    """Fully-connected (inner-product) layer."""

    units: int

    def __post_init__(self) -> None:
        if self.units < 1:
            raise ValueError("units must be >= 1")

    def _require_flat(self, input_shape: Shape) -> int:
        if len(input_shape) != 1:
            raise ValueError(
                f"Dense needs a flat (features,) input, got {input_shape}"
            )
        return input_shape[0]

    def output_shape(self, input_shape: Shape) -> Shape:
        self._require_flat(input_shape)
        return (self.units,)

    def param_count(self, input_shape: Shape) -> int:
        fan_in = self._require_flat(input_shape)
        return fan_in * self.units + self.units

    def flops(self, input_shape: Shape) -> int:
        fan_in = self._require_flat(input_shape)
        return self.units * (2 * fan_in + 1)


@dataclass(frozen=True)
class Dropout(Layer):
    """Dropout — identity at inference time, kept for topology fidelity."""

    rate: float = 0.5

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate < 1.0):
            raise ValueError("rate must be in [0, 1)")

    def output_shape(self, input_shape: Shape) -> Shape:
        return input_shape

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def flops(self, input_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Softmax(Layer):
    """Softmax over a flat feature vector."""

    def output_shape(self, input_shape: Shape) -> Shape:
        if len(input_shape) != 1:
            raise ValueError(
                f"Softmax needs a flat (features,) input, got {input_shape}"
            )
        return input_shape

    def param_count(self, input_shape: Shape) -> int:
        return 0

    def flops(self, input_shape: Shape) -> int:
        # exp + sum + divide per element, roughly.
        return 3 * _shape_elements(input_shape)
