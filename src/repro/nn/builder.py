"""AlexNet-variant builders (paper Section 4).

Translate a configuration drawn from :func:`repro.space.mnist_space` or
:func:`repro.space.cifar10_space` into a concrete :class:`NetworkSpec`, the
way the paper's wrapper scripts "automate the generation of Caffe
simulations" from Spearmint's suggestions.

The fixed parts of each topology (pool sizes on MNIST, the second conv
kernel, dropout before the classifier) follow the classic Caffe AlexNet/
LeNet examples the paper varies.
"""

from __future__ import annotations

from collections.abc import Mapping

from .layers import Conv2D, Dense, Dropout, Flatten, Pooling, ReLU, Softmax
from .network import NetworkSpec

__all__ = [
    "MNIST_INPUT_SHAPE",
    "CIFAR10_INPUT_SHAPE",
    "IMAGENET_INPUT_SHAPE",
    "NUM_CLASSES",
    "IMAGENET_NUM_CLASSES",
    "build_mnist_network",
    "build_cifar10_network",
    "build_imagenet_network",
    "build_network",
]

#: MNIST images are 28x28 grayscale.
MNIST_INPUT_SHAPE = (1, 28, 28)
#: CIFAR-10 images are 32x32 RGB.
CIFAR10_INPUT_SHAPE = (3, 32, 32)
#: Both benchmarks are 10-way classification.
NUM_CLASSES = 10

#: Fixed kernel size of the MNIST variant's second convolution.
_MNIST_CONV2_KERNEL = 3
#: Fixed pooling kernel of the MNIST variant (classic LeNet-style 2x2).
_MNIST_POOL_KERNEL = 2


def _require(config: Mapping, keys: tuple[str, ...], dataset: str) -> None:
    missing = [key for key in keys if key not in config]
    if missing:
        raise ValueError(
            f"{dataset} configuration missing hyper-parameters {missing}"
        )


def build_mnist_network(config: Mapping) -> NetworkSpec:
    """Build the 6-hyper-parameter MNIST AlexNet variant.

    Topology: ``conv1 - relu - pool - conv2 - relu - pool - fc1 - relu -
    dropout - fc(10) - softmax`` with tunable conv feature counts, first
    conv kernel size and hidden FC width.
    """
    _require(
        config,
        ("conv1_features", "conv1_kernel", "conv2_features", "fc1_units"),
        "MNIST",
    )
    layers = [
        Conv2D(int(config["conv1_features"]), int(config["conv1_kernel"])),
        ReLU(),
        Pooling(_MNIST_POOL_KERNEL),
        Conv2D(int(config["conv2_features"]), _MNIST_CONV2_KERNEL),
        ReLU(),
        Pooling(_MNIST_POOL_KERNEL),
        Flatten(),
        Dense(int(config["fc1_units"])),
        ReLU(),
        Dropout(0.5),
        Dense(NUM_CLASSES),
        Softmax(),
    ]
    return NetworkSpec(
        name="alexnet-mnist",
        input_shape=MNIST_INPUT_SHAPE,
        layers=layers,
        num_classes=NUM_CLASSES,
    )


def build_cifar10_network(config: Mapping) -> NetworkSpec:
    """Build the 13-hyper-parameter CIFAR-10 AlexNet variant.

    Topology: three ``conv - relu - pool`` blocks with tunable feature
    counts, conv kernels and pool kernels, then ``fc1 - relu - dropout -
    fc(10) - softmax`` with a tunable hidden width.
    """
    _require(
        config,
        (
            "conv1_features",
            "conv1_kernel",
            "pool1_kernel",
            "conv2_features",
            "conv2_kernel",
            "pool2_kernel",
            "conv3_features",
            "conv3_kernel",
            "pool3_kernel",
            "fc1_units",
        ),
        "CIFAR-10",
    )
    layers = []
    for block in (1, 2, 3):
        layers.extend(
            [
                Conv2D(
                    int(config[f"conv{block}_features"]),
                    int(config[f"conv{block}_kernel"]),
                ),
                ReLU(),
                # Fixed downsampling stride of 2 (Caffe CIFAR-10 style);
                # the tuned kernel controls window overlap.
                Pooling(int(config[f"pool{block}_kernel"]), stride=2),
            ]
        )
    layers.extend(
        [
            Flatten(),
            Dense(int(config["fc1_units"])),
            ReLU(),
            Dropout(0.5),
            Dense(NUM_CLASSES),
            Softmax(),
        ]
    )
    return NetworkSpec(
        name="alexnet-cifar10",
        input_shape=CIFAR10_INPUT_SHAPE,
        layers=layers,
        num_classes=NUM_CLASSES,
    )


#: ImageNet images enter at the classic AlexNet crop size.
IMAGENET_INPUT_SHAPE = (3, 224, 224)
#: ImageNet is 1000-way classification.
IMAGENET_NUM_CLASSES = 1000


def build_imagenet_network(config: Mapping) -> NetworkSpec:
    """Build the full-size ImageNet AlexNet with tunable widths.

    Krizhevsky's topology (stride-4 11x11 conv1, 5x5 conv2, three 3x3
    convs, three 3x3/stride-2 max-pools, two hidden FCs) with the feature
    counts and FC widths taken from the configuration — the paper's
    "larger networks on the state-of-the-art ImageNet dataset" future
    work, runnable on the simulated substrate.
    """
    _require(
        config,
        (
            "conv1_features",
            "conv2_features",
            "conv3_features",
            "conv4_features",
            "conv5_features",
            "fc6_units",
            "fc7_units",
        ),
        "ImageNet",
    )
    layers = [
        Conv2D(int(config["conv1_features"]), 11, stride=4),
        ReLU(),
        Pooling(3, stride=2),
        Conv2D(int(config["conv2_features"]), 5),
        ReLU(),
        Pooling(3, stride=2),
        Conv2D(int(config["conv3_features"]), 3),
        ReLU(),
        Conv2D(int(config["conv4_features"]), 3),
        ReLU(),
        Conv2D(int(config["conv5_features"]), 3),
        ReLU(),
        Pooling(3, stride=2),
        Flatten(),
        Dense(int(config["fc6_units"])),
        ReLU(),
        Dropout(0.5),
        Dense(int(config["fc7_units"])),
        ReLU(),
        Dropout(0.5),
        Dense(IMAGENET_NUM_CLASSES),
        Softmax(),
    ]
    return NetworkSpec(
        name="alexnet-imagenet",
        input_shape=IMAGENET_INPUT_SHAPE,
        layers=layers,
        num_classes=IMAGENET_NUM_CLASSES,
    )


_BUILDERS = {
    "mnist": build_mnist_network,
    "cifar10": build_cifar10_network,
    "imagenet": build_imagenet_network,
}


def build_network(dataset: str, config: Mapping) -> NetworkSpec:
    """Build the AlexNet variant for ``dataset`` (``'mnist'``/``'cifar10'``)."""
    try:
        builder = _BUILDERS[dataset.lower()]
    except KeyError:
        raise ValueError(
            f"unknown dataset {dataset!r}; expected one of {sorted(_BUILDERS)}"
        ) from None
    return builder(config)
