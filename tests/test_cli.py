"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["table1"]).command == "table1"
        args = parser.parse_args(["table2", "--scale", "0.2", "--repeats", "2"])
        assert args.scale == 0.2
        args = parser.parse_args(
            ["run", "--solver", "Rand", "--variant", "default", "--hours", "0.5"]
        )
        assert args.solver == "Rand"

    def test_bad_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--solver", "Grid-9000"])


class TestCommands:
    def test_table1(self, capsys):
        assert main(["--samples", "40", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Power" in out

    def test_run_and_save(self, tmp_path, capsys):
        out_file = tmp_path / "run.json"
        code = main(
            [
                "--samples", "40",
                "run",
                "--pair", "mnist-tx1",
                "--solver", "Rand",
                "--variant", "hyperpower",
                "--evaluations", "3",
                "--out", str(out_file),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best feasible error" in out
        payload = json.loads(out_file.read_text())
        assert payload["format"] == "repro-runs/1"
        assert payload["runs"][0]["method"] == "Rand"

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out
        assert "conv" in out

    def test_table2_small(self, capsys):
        code = main(
            ["--samples", "40", "table2", "--scale", "0.05", "--repeats", "1"]
        )
        assert code == 0
        assert "Table 2" in capsys.readouterr().out
