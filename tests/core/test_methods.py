"""Tests for repro.core.methods."""

import numpy as np
import pytest

from repro.core.acquisition import HWIECI, ExpectedImprovement
from repro.core.constraints import ConstraintSpec, GPConstraintModel, ModelConstraintChecker
from repro.core.methods import (
    BayesianOptimizer,
    RandomSearch,
    RandomWalk,
    SearchState,
)
from repro.core.result import Trial, TrialStatus
from repro.hwsim.devices import GTX_1070
from repro.hwsim.profiler import HardwareProfiler
from repro.models.hw_models import fit_hardware_models
from repro.models.profiling import run_profiling_campaign
from repro.space.presets import mnist_space


@pytest.fixture(scope="module")
def env():
    space = mnist_space()
    rng = np.random.default_rng(0)
    profiler = HardwareProfiler(GTX_1070, rng)
    data = run_profiling_campaign(space, "mnist", profiler, 80, rng)
    power, memory = fit_hardware_models(
        space, data, rng=np.random.default_rng(1), fit_intercept=True
    )
    spec = ConstraintSpec(power_budget_w=85.0)
    checker = ModelConstraintChecker(spec, power, None)
    return space, spec, checker


def trained_trial(index, config, error, feasible=True):
    return Trial(
        index=index,
        config=config,
        status=TrialStatus.COMPLETED,
        timestamp_s=float(index),
        cost_s=1.0,
        error=error,
        feasible_meas=feasible,
    )


def state_with(space, entries):
    """entries: list of (config, error, feasible)."""
    state = SearchState()
    for i, (config, error, feasible) in enumerate(entries):
        state.trials.append(trained_trial(i, config, error, feasible))
        state.trained_configs.append(config)
        state.trained_errors.append(error)
        state.trained_feasible.append(feasible)
    return state


class TestSearchState:
    def test_best_feasible_and_any(self, env):
        space, *_ = env
        rng = np.random.default_rng(2)
        configs = space.sample_many(3, rng)
        state = state_with(
            space,
            [
                (configs[0], 0.05, False),
                (configs[1], 0.10, True),
                (configs[2], 0.20, True),
            ],
        )
        assert state.best_any()[1] == pytest.approx(0.05)
        assert state.best_feasible()[1] == pytest.approx(0.10)
        assert state.incumbent_error() == pytest.approx(0.10)

    def test_incumbent_fallback_to_any(self, env):
        space, *_ = env
        rng = np.random.default_rng(3)
        config = space.sample(rng)
        state = state_with(space, [(config, 0.3, False)])
        assert state.incumbent_error() == pytest.approx(0.3)

    def test_empty_state(self):
        state = SearchState()
        assert state.best_any() is None
        assert state.best_feasible() is None
        assert state.incumbent_error() is None


class TestRandomSearch:
    def test_unscreened_accepts_first_draw(self, env):
        space, *_ = env
        method = RandomSearch(space)
        proposal = method.propose(SearchState(), np.random.default_rng(4))
        assert proposal.rejected == ()
        assert proposal.feasible_pred is None

    def test_screened_proposal_is_model_feasible(self, env):
        space, spec, checker = env
        method = RandomSearch(space, checker)
        rng = np.random.default_rng(5)
        for _ in range(5):
            proposal = method.propose(SearchState(), rng)
            assert checker.indicator(proposal.config)
            assert proposal.feasible_pred is True
            assert proposal.power_pred_w is not None
            for rejected in proposal.rejected:
                assert not checker.indicator(rejected.config)

    def test_screening_records_rejections(self, env):
        space, spec, checker = env
        method = RandomSearch(space, checker)
        rng = np.random.default_rng(6)
        totals = [len(method.propose(SearchState(), rng).rejected) for _ in range(20)]
        # ~8% feasibility -> typically around 12 rejections per accept.
        assert np.mean(totals) > 3


class TestRandomWalk:
    def test_uniform_until_incumbent(self, env):
        space, *_ = env
        method = RandomWalk(space, sigma=0.1, feasible_incumbent=False)
        proposal = method.propose(SearchState(), np.random.default_rng(7))
        assert space.contains(proposal.config)

    def test_default_walks_around_best_any(self, env):
        space, *_ = env
        rng = np.random.default_rng(8)
        anchor = space.sample(rng)
        state = state_with(space, [(anchor, 0.05, False)])
        method = RandomWalk(space, sigma=0.05, feasible_incumbent=False)
        proposals = [method.propose(state, rng).config for _ in range(30)]
        anchor_u = space.encode(anchor)
        dists = [np.linalg.norm(space.encode(p) - anchor_u) for p in proposals]
        assert np.mean(dists) < 0.5  # clustered near the anchor

    def test_hyperpower_variant_recentres_on_feasible(self, env):
        space, spec, checker = env
        rng = np.random.default_rng(9)
        infeasible_best = space.sample(rng)
        feasible = space.sample(rng)
        state = state_with(
            space, [(infeasible_best, 0.01, False), (feasible, 0.30, True)]
        )
        method = RandomWalk(space, sigma=0.05, checker=None, feasible_incumbent=True)
        feasible_u = space.encode(feasible)
        proposals = [method.propose(state, rng).config for _ in range(30)]
        dists = [np.linalg.norm(space.encode(p) - feasible_u) for p in proposals]
        assert np.mean(dists) < 0.5

    def test_sigma_validation(self, env):
        space, *_ = env
        with pytest.raises(ValueError):
            RandomWalk(space, sigma=0.0)


class TestBayesianOptimizer:
    def test_init_phase_is_random(self, env):
        space, spec, checker = env
        method = BayesianOptimizer(space, HWIECI(checker), model_checker=checker, n_init=3)
        proposal = method.propose(SearchState(), np.random.default_rng(10))
        assert proposal.gp_fits == 0
        assert checker.indicator(proposal.config)  # screened init

    def test_model_phase_fits_gp(self, env):
        space, spec, checker = env
        method = BayesianOptimizer(
            space, HWIECI(checker), model_checker=checker, n_init=3, pool_size=200
        )
        rng = np.random.default_rng(11)
        entries = [(space.sample(rng), 0.1 + 0.1 * i, True) for i in range(4)]
        state = state_with(space, entries)
        proposal = method.propose(state, rng)
        assert proposal.gp_fits >= 1
        assert checker.indicator(proposal.config)

    def test_unconstrained_ei_runs(self, env):
        space, *_ = env
        method = BayesianOptimizer(space, ExpectedImprovement(), n_init=2, pool_size=100)
        rng = np.random.default_rng(12)
        entries = [(space.sample(rng), 0.2 + 0.05 * i, True) for i in range(3)]
        proposal = method.propose(state_with(space, entries), rng)
        assert space.contains(proposal.config)

    def test_learned_constraints_refit_counted(self, env):
        space, spec, _ = env
        learned = GPConstraintModel(space, spec)
        method = BayesianOptimizer(
            space,
            HWIECI(learned),
            learned_constraints=learned,
            n_init=2,
            pool_size=100,
        )
        rng = np.random.default_rng(13)
        entries = [(space.sample(rng), 0.2, True) for _ in range(3)]
        state = state_with(space, entries)
        # Attach measured power so the constraint GPs have data.
        for trial in state.trials:
            object.__setattr__(trial, "power_meas_w", 90.0)
        proposal = method.propose(state, rng)
        assert proposal.gp_fits >= 2  # objective GP + power-constraint GP

    def test_exclusive_constraint_sources(self, env):
        space, spec, checker = env
        learned = GPConstraintModel(space, spec)
        with pytest.raises(ValueError):
            BayesianOptimizer(
                space,
                HWIECI(checker),
                model_checker=checker,
                learned_constraints=learned,
            )

    def test_name_follows_acquisition(self, env):
        space, spec, checker = env
        method = BayesianOptimizer(space, HWIECI(checker), model_checker=checker)
        assert method.name == "HW-IECI"
