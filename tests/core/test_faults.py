"""Fault injection, retry policy, and failure semantics of the pool.

The contract under test: faults are a pure function of seeds (identical
on every backend, byte-identical no-op when disabled), retries and
backoff are charged to the simulated clock, exhausted budgets become
FAILED trials instead of exceptions, and failed measurements degrade to
the predictive models without poisoning the trial cache.
"""

import json
import math

import numpy as np
import pytest

from repro.core.faults import (
    CRASH,
    FAULT_KINDS,
    HANG,
    NAN_LOSS,
    NVML,
    OOM,
    TIMEOUT,
    FaultInjector,
    FaultRates,
    RetryPolicy,
    TrialFault,
    retry_seed,
)
from repro.core.parallel import EvaluationPool
from repro.core.result import TrialStatus
from repro.experiments.setup import quick_setup
from repro.io import run_to_dict


@pytest.fixture(scope="module")
def setup():
    return quick_setup(
        "mnist", "gtx1070", power_budget_w=85.0, memory_budget_gb=1.15,
        seed=0, profiling_samples=100,
    )


# -- rates and policy validation ---------------------------------------------------


class TestFaultRates:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="crash"):
            FaultRates(crash=-0.1)
        with pytest.raises(ValueError, match="hang"):
            FaultRates(hang=1.5)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="nan-loss"):
            FaultRates(nan_loss=math.nan)

    def test_rejects_sum_above_one(self):
        with pytest.raises(ValueError, match="sum"):
            FaultRates(crash=0.5, hang=0.3, oom=0.3)

    def test_any_active(self):
        assert not FaultRates().any_active
        assert FaultRates(nvml=0.01).any_active


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=math.nan)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=60.0, backoff_factor=2.0, backoff_max_s=200.0
        )
        assert policy.backoff_s(1) == 60.0
        assert policy.backoff_s(2) == 120.0
        assert policy.backoff_s(3) == 200.0  # capped, not 240
        with pytest.raises(ValueError):
            policy.backoff_s(0)


class TestTrialFault:
    def test_pickles(self):
        import pickle

        fault = TrialFault(CRASH, cost_s=12.5)
        clone = pickle.loads(pickle.dumps(fault))
        assert clone.kind == CRASH and clone.cost_s == 12.5


# -- the injector ------------------------------------------------------------------


class TestFaultInjector:
    def test_draw_is_deterministic(self):
        injector = FaultInjector(FaultRates(crash=0.3, nvml=0.3), seed=42)
        for trial_seed in (0, 17, 2**40):
            for attempt in range(4):
                a = injector.draw(trial_seed, attempt)
                b = injector.draw(trial_seed, attempt)
                assert a == b

    def test_zero_rates_never_fire(self):
        injector = FaultInjector(FaultRates(), seed=1)
        assert all(
            injector.draw(s, a) is None for s in range(50) for a in range(3)
        )

    def test_rates_are_respected(self):
        injector = FaultInjector(
            FaultRates(crash=0.25, nan_loss=0.25), seed=7
        )
        draws = [injector.draw(s, 0) for s in range(2000)]
        kinds = [d.kind for d in draws if d is not None]
        assert set(kinds) <= {CRASH, NAN_LOSS}
        rate = len(kinds) / len(draws)
        assert 0.45 < rate < 0.55
        fractions = [d.fraction for d in draws if d is not None]
        assert all(0.0 <= f < 1.0 for f in fractions)

    def test_attempts_draw_independently(self):
        injector = FaultInjector(FaultRates(crash=0.5), seed=3)
        plans = [
            tuple(injector.draw(s, a) is not None for a in range(4))
            for s in range(100)
        ]
        # Some trial must recover on a retry (crash then clean).
        assert any(p[0] and not p[1] for p in plans)


class TestRetrySeed:
    def test_attempt_zero_is_identity(self):
        assert retry_seed(12345, 0) == 12345

    def test_retries_are_distinct_and_deterministic(self):
        seeds = {retry_seed(12345, a) for a in range(4)}
        assert len(seeds) == 4
        assert retry_seed(12345, 2) == retry_seed(12345, 2)


# -- pool-level failure semantics --------------------------------------------------


def _make_pool(setup, rates, retry=None, backend="serial", workers=2, seed=0):
    objective = setup.new_objective(0)
    return EvaluationPool(
        objective,
        backend=backend,
        workers=workers,
        seed=seed,
        injector=FaultInjector(rates, seed=seed),
        retry=retry,
    ), objective


def _sample_configs(setup, n, seed=0):
    rng = np.random.default_rng(seed)
    return [setup.space.sample(rng) for _ in range(n)]


class TestPoolFailureSemantics:
    def test_certain_crash_exhausts_attempts(self, setup):
        retry = RetryPolicy(max_attempts=3, backoff_base_s=60.0)
        pool, _ = _make_pool(setup, FaultRates(crash=1.0), retry=retry)
        (outcome,) = pool.evaluate_batch(_sample_configs(setup, 1))
        assert outcome.failed
        assert outcome.outcome is None
        assert outcome.attempts == 3
        assert outcome.faults == (CRASH, CRASH, CRASH)
        assert outcome.failure_kind == CRASH
        # Two backoff waits (60 + 120) plus whatever the dead attempts
        # consumed; the terminal attempt is charged without backoff.
        assert outcome.retry_s > 60.0 + 120.0
        assert outcome.total_cost_s == outcome.retry_s
        # A lone failed slot is the batch's wall time.
        assert (
            EvaluationPool.batch_wall_time_s([outcome], 0.5)
            == outcome.retry_s
        )

    def test_natural_timeout_is_synthesised(self, setup):
        # Trainings cost minutes of simulated time; a 10 s deadline reaps
        # every attempt even with no injected faults.
        retry = RetryPolicy(max_attempts=2, timeout_s=10.0)
        pool, _ = _make_pool(setup, FaultRates(), retry=retry)
        (outcome,) = pool.evaluate_batch(_sample_configs(setup, 1))
        assert outcome.failed
        assert outcome.faults == (TIMEOUT, TIMEOUT)
        assert outcome.failure_kind == TIMEOUT
        # Each reaped attempt is charged exactly the deadline.
        assert outcome.retry_s == 10.0 + retry.backoff_s(1) + 10.0

    def test_hang_charges_timeout_when_set(self, setup):
        retry = RetryPolicy(max_attempts=1, timeout_s=500.0)
        pool, _ = _make_pool(setup, FaultRates(hang=1.0), retry=retry)
        (outcome,) = pool.evaluate_batch(_sample_configs(setup, 1))
        assert outcome.faults == (HANG,)
        assert outcome.retry_s == 500.0

    def test_hang_charges_injector_hang_s_without_timeout(self, setup):
        objective = setup.new_objective(0)
        pool = EvaluationPool(
            objective,
            backend="serial",
            seed=0,
            injector=FaultInjector(FaultRates(hang=1.0), seed=0, hang_s=777.0),
            retry=RetryPolicy(max_attempts=1),
        )
        (outcome,) = pool.evaluate_batch(_sample_configs(setup, 1))
        assert outcome.retry_s == 777.0

    def test_nvml_degrades_instead_of_failing(self, setup):
        pool, _ = _make_pool(setup, FaultRates(nvml=1.0))
        (outcome,) = pool.evaluate_batch(_sample_configs(setup, 1))
        assert not outcome.failed
        assert outcome.outcome.measurement is None
        assert outcome.outcome.measurement_failed
        assert outcome.attempts == 1

    def test_degraded_outcomes_are_not_cached(self, setup):
        from repro.core.parallel import TrialCache

        objective = setup.new_objective(0)
        cache = TrialCache()
        pool = EvaluationPool(
            objective,
            backend="serial",
            seed=0,
            cache=cache,
            injector=FaultInjector(FaultRates(nvml=1.0), seed=0),
        )
        pool.evaluate_batch(_sample_configs(setup, 1))
        assert len(cache) == 0

    def test_failed_outcomes_are_not_cached(self, setup):
        from repro.core.parallel import TrialCache

        objective = setup.new_objective(0)
        cache = TrialCache()
        pool = EvaluationPool(
            objective,
            backend="serial",
            seed=0,
            cache=cache,
            injector=FaultInjector(FaultRates(crash=1.0), seed=0),
            retry=RetryPolicy(max_attempts=2),
        )
        configs = _sample_configs(setup, 1)
        # The same config twice in one batch: the duplicate shares the
        # failure without paying for it, and nothing enters the cache.
        outcomes = pool.evaluate_batch([configs[0], dict(configs[0])])
        assert len(cache) == 0
        assert all(o.failed for o in outcomes)
        assert outcomes[1].attempts == 0 and outcomes[1].retry_s == 0.0
        assert outcomes[1].failure_kind == outcomes[0].failure_kind


# -- end-to-end driver runs --------------------------------------------------------


@pytest.mark.faults
class TestDriverUnderFaults:
    def test_zero_rates_are_a_strict_noop(self, setup, fault_backend):
        base = setup.run(
            "Rand", "hyperpower", run_seed=3, max_evaluations=8,
            backend=fault_backend, workers=2,
        )
        zero = setup.run(
            "Rand", "hyperpower", run_seed=3, max_evaluations=8,
            backend=fault_backend, workers=2, faults=FaultRates(),
            retry=RetryPolicy(max_attempts=5, timeout_s=None),
        )
        assert json.dumps(run_to_dict(base), sort_keys=True) == json.dumps(
            run_to_dict(zero), sort_keys=True
        )

    def test_acceptance_run_survives_five_percent_faults(
        self, setup, fault_backend
    ):
        """ISSUE acceptance: 5% crash + 5% NaN completes without raising,
        records FAILED trials with their retry/backoff charges, and still
        finds a feasible incumbent.

        fault_seed 13 is chosen (from the deterministic draw stream) so
        these 12 trained evaluations hit both a FAILED trial and at least
        one fault recovered by a retry.
        """
        retry = RetryPolicy(max_attempts=2, backoff_base_s=60.0)
        result = setup.run(
            "Rand", "hyperpower", run_seed=3, max_evaluations=12,
            backend=fault_backend, workers=2,
            faults=FaultRates(crash=0.05, nan_loss=0.05), fault_seed=13,
            retry=retry,
        )
        assert result.n_trained == 12
        assert result.n_failed >= 1
        assert result.n_faults > result.n_failed  # some faults recovered
        assert result.found_feasible
        for trial in result.trials:
            if trial.status is TrialStatus.FAILED:
                assert trial.cost_s == trial.retry_s > retry.backoff_s(1)
            elif trial.attempts > 1:
                # A recovered retry: one faulted attempt plus one backoff
                # wait, charged on top of the final attempt's cost.
                assert trial.retry_s > retry.backoff_s(1)
                assert trial.cost_s > trial.retry_s
        assert result.retry_time_s > 0.0

    def test_failed_trials_are_recorded_not_raised(self, setup, fault_backend):
        result = setup.run(
            "Rand", "hyperpower", run_seed=3, max_evaluations=8,
            backend=fault_backend, workers=2,
            faults=FaultRates(crash=0.5, nan_loss=0.2), fault_seed=3,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=60.0),
        )
        failed = [
            t for t in result.trials if t.status is TrialStatus.FAILED
        ]
        assert failed, "seed 3 at these rates must produce FAILED trials"
        for trial in failed:
            assert not trial.was_trained
            assert math.isnan(trial.error)
            assert trial.failure_kind in FAULT_KINDS + (TIMEOUT,)
            assert trial.attempts == 2
            assert len(trial.faults) == 2
            assert trial.cost_s == trial.retry_s > 0.0
        # FAILED samples count as queried, never as trained.
        assert result.n_trained == 8
        assert result.n_samples >= 8 + len(failed)

    def test_degraded_trials_fall_back_to_model_predictions(
        self, setup, fault_backend
    ):
        result = setup.run(
            "Rand", "hyperpower", run_seed=3, max_evaluations=8,
            backend=fault_backend, workers=2,
            faults=FaultRates(nvml=1.0),
        )
        degraded = [t for t in result.trials if t.measurement_degraded]
        assert len(degraded) == 8
        for trial in degraded:
            assert trial.was_trained
            assert trial.power_meas_w == trial.power_pred_w
            assert trial.memory_meas_bytes == trial.memory_pred_bytes
            assert trial.latency_meas_s is None
            assert trial.feasible_meas is not None  # hyperpower has models

    def test_default_variant_degrades_to_unknown_feasibility(
        self, setup, fault_backend
    ):
        result = setup.run(
            "Rand", "default", run_seed=3, max_evaluations=6,
            backend=fault_backend, workers=2,
            faults=FaultRates(nvml=1.0),
        )
        degraded = [t for t in result.trials if t.measurement_degraded]
        assert len(degraded) == 6
        # Model-free methods have no predictions to fall back on.
        assert all(t.power_meas_w is None for t in degraded)
        assert all(t.feasible_meas is None for t in degraded)

    @pytest.mark.slow
    def test_backends_agree_under_faults(self, setup):
        """ISSUE acceptance: same fault seed, three backends, identical
        RunResults — FAILED trials and retry accounting included."""
        rates = FaultRates(
            crash=0.3, hang=0.1, nan_loss=0.1, oom=0.1, nvml=0.1
        )
        docs = {}
        for backend in ("serial", "thread", "process"):
            result = setup.run(
                "Rand", "hyperpower", run_seed=5, max_evaluations=8,
                backend=backend, workers=3, faults=rates, fault_seed=11,
                retry=RetryPolicy(max_attempts=3),
            )
            docs[backend] = json.dumps(run_to_dict(result), sort_keys=True)
        assert docs["serial"] == docs["thread"] == docs["process"]
        parsed = json.loads(docs["serial"])
        statuses = {t["status"] for t in parsed["trials"]}
        assert "failed" in statuses, "rates chosen to force FAILED trials"
