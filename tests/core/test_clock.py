"""Tests for repro.core.clock."""

import pytest

from repro.core.clock import DEFAULT_COST_MODEL, CostModel, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_s == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(5.5)
        assert clock.now_s == pytest.approx(15.5)
        assert clock.now_hours == pytest.approx(15.5 / 3600.0)

    def test_cannot_go_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_cannot_start_negative(self):
        with pytest.raises(ValueError):
            SimClock(-5.0)

    def test_exceeded(self):
        clock = SimClock()
        clock.advance(100.0)
        assert clock.exceeded(50.0)
        assert clock.exceeded(100.0)
        assert not clock.exceeded(101.0)
        assert not clock.exceeded(None)

    def test_custom_start(self):
        assert SimClock(60.0).now_s == 60.0


class TestCostModel:
    def test_cost_hierarchy(self):
        # Constraint checks must be vastly cheaper than a GP fit, which is
        # vastly cheaper than a minutes-long training — the hierarchy the
        # whole paper exploits.
        cost = DEFAULT_COST_MODEL
        assert cost.model_check_s < cost.gp_fit_s(20)
        assert cost.gp_fit_s(20) < 120.0

    def test_gp_fit_grows_with_observations(self):
        cost = CostModel()
        assert cost.gp_fit_s(100) > cost.gp_fit_s(10)

    def test_gp_fit_base(self):
        cost = CostModel(gp_fit_base_s=3.0, gp_fit_per_obs2_s=0.0)
        assert cost.gp_fit_s(50) == pytest.approx(3.0)
