"""Tests for repro.core.clock."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import DEFAULT_COST_MODEL, CostModel, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_s == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(5.5)
        assert clock.now_s == pytest.approx(15.5)
        assert clock.now_hours == pytest.approx(15.5 / 3600.0)

    def test_cannot_go_backwards(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_cannot_start_negative(self):
        with pytest.raises(ValueError):
            SimClock(-5.0)

    def test_exceeded(self):
        clock = SimClock()
        clock.advance(100.0)
        assert clock.exceeded(50.0)
        assert clock.exceeded(100.0)
        assert not clock.exceeded(101.0)
        assert not clock.exceeded(None)

    def test_custom_start(self):
        assert SimClock(60.0).now_s == 60.0

    def test_rejects_nan_advance(self):
        clock = SimClock()
        with pytest.raises(ValueError, match="NaN"):
            clock.advance(math.nan)
        assert clock.now_s == 0.0  # rejected advance leaves time untouched

    def test_rejects_infinite_advance(self):
        clock = SimClock()
        with pytest.raises(ValueError, match="infinite"):
            clock.advance(math.inf)
        with pytest.raises(ValueError):
            clock.advance(-math.inf)

    def test_negative_advance_message_is_clear(self):
        with pytest.raises(ValueError, match="backwards"):
            SimClock().advance(-0.001)

    def test_zero_advance_is_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now_s == 0.0

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            max_size=20,
        )
    )
    def test_monotonic_under_any_advance_sequence(self, advances):
        clock = SimClock()
        previous = clock.now_s
        for seconds in advances:
            clock.advance(seconds)
            assert clock.now_s >= previous
            previous = clock.now_s
        assert clock.now_s == pytest.approx(sum(advances))

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e9, allow_nan=False))
    def test_hour_conversion(self, seconds):
        clock = SimClock()
        clock.advance(seconds)
        assert clock.now_hours == pytest.approx(seconds / 3600.0)


class TestCostModel:
    def test_cost_hierarchy(self):
        # Constraint checks must be vastly cheaper than a GP fit, which is
        # vastly cheaper than a minutes-long training — the hierarchy the
        # whole paper exploits.
        cost = DEFAULT_COST_MODEL
        assert cost.model_check_s < cost.gp_fit_s(20)
        assert cost.gp_fit_s(20) < 120.0

    def test_gp_fit_grows_with_observations(self):
        cost = CostModel()
        assert cost.gp_fit_s(100) > cost.gp_fit_s(10)

    def test_gp_fit_base(self):
        cost = CostModel(gp_fit_base_s=3.0, gp_fit_per_obs2_s=0.0)
        assert cost.gp_fit_s(50) == pytest.approx(3.0)
