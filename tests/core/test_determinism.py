"""End-to-end determinism regression (guards future refactors).

Every solver under both variants must produce a *byte-identical*
best-error trajectory when re-run with the same seed: the whole framework
— proposal RNG streams, chunked batch screening, GP fits, simulated
profiling — is deterministic by construction, and any refactor that
silently consumes randomness differently will trip these comparisons.
"""

import json

import pytest

from repro.core.hyperpower import SOLVERS, VARIANTS
from repro.core.methods import BayesianOptimizer
from repro.experiments.setup import quick_setup
from repro.io import run_to_dict

N_ITERATIONS = 20


@pytest.fixture(scope="module")
def setup():
    return quick_setup(
        "mnist", "gtx1070", power_budget_w=85.0, memory_budget_gb=1.15,
        seed=0, profiling_samples=100,
    )


@pytest.mark.slow
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_rerun_is_byte_identical(setup, solver, variant):
    first = setup.run(
        solver, variant, run_seed=7, max_evaluations=N_ITERATIONS
    )
    second = setup.run(
        solver, variant, run_seed=7, max_evaluations=N_ITERATIONS
    )
    assert first.n_trained == N_ITERATIONS
    assert (
        first.best_error_vs_samples().tobytes()
        == second.best_error_vs_samples().tobytes()
    )
    # The full records agree too, not just the headline trajectory.
    assert json.dumps(run_to_dict(first), sort_keys=True) == json.dumps(
        run_to_dict(second), sort_keys=True
    )


@pytest.mark.slow
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_scheduled_surrogate_reproduces_seed_path(
    setup, solver, variant, monkeypatch
):
    """``refit_every=1`` with warm starts off must be byte-identical to the
    seed loop, which fitted a *fresh* GP on every ``propose()``.

    The first run uses the persistent surrogate with the explicit knobs;
    the second forcibly drops the persisted GP before every proposal,
    which is exactly the seed's code path.  Any state leaking through the
    refit scheduler (hyper-parameters, Cholesky factors, RNG draws) would
    break the comparison.  The model-free solvers ride along to pin all
    eight cells.
    """
    scheduled = setup.run(
        solver,
        variant,
        run_seed=7,
        max_evaluations=N_ITERATIONS,
        gp_refit_every=1,
        gp_warm_start=False,
    )

    original_propose = BayesianOptimizer.propose

    def fresh_gp_propose(self, state, rng):
        self._gp = None  # seed semantics: no surrogate persistence
        return original_propose(self, state, rng)

    monkeypatch.setattr(BayesianOptimizer, "propose", fresh_gp_propose)
    seed_path = setup.run(
        solver, variant, run_seed=7, max_evaluations=N_ITERATIONS
    )

    assert (
        scheduled.best_error_vs_samples().tobytes()
        == seed_path.best_error_vs_samples().tobytes()
    )
    assert json.dumps(run_to_dict(scheduled), sort_keys=True) == json.dumps(
        run_to_dict(seed_path), sort_keys=True
    )


@pytest.mark.slow
def test_warm_started_schedule_is_deterministic(setup):
    """The fast schedule (sparse refits + warm starts) must itself re-run
    byte-identically — it changes trajectories, not reproducibility."""
    kwargs = dict(
        run_seed=11,
        max_evaluations=N_ITERATIONS,
        gp_refit_every=5,
        gp_warm_start=True,
    )
    first = setup.run("HW-IECI", "hyperpower", **kwargs)
    second = setup.run("HW-IECI", "hyperpower", **kwargs)
    assert json.dumps(run_to_dict(first), sort_keys=True) == json.dumps(
        run_to_dict(second), sort_keys=True
    )


@pytest.mark.slow
def test_different_seeds_diverge(setup):
    a = setup.run("Rand", "hyperpower", run_seed=0, max_evaluations=5)
    b = setup.run("Rand", "hyperpower", run_seed=1, max_evaluations=5)
    assert (
        a.best_error_vs_samples().tobytes()
        != b.best_error_vs_samples().tobytes()
    )
