"""End-to-end determinism regression (guards future refactors).

Every solver under both variants must produce a *byte-identical*
best-error trajectory when re-run with the same seed: the whole framework
— proposal RNG streams, chunked batch screening, GP fits, simulated
profiling — is deterministic by construction, and any refactor that
silently consumes randomness differently will trip these comparisons.
"""

import json

import pytest

from repro.core.hyperpower import SOLVERS, VARIANTS
from repro.experiments.setup import quick_setup
from repro.io import run_to_dict

N_ITERATIONS = 20


@pytest.fixture(scope="module")
def setup():
    return quick_setup(
        "mnist", "gtx1070", power_budget_w=85.0, memory_budget_gb=1.15,
        seed=0, profiling_samples=100,
    )


@pytest.mark.slow
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_rerun_is_byte_identical(setup, solver, variant):
    first = setup.run(
        solver, variant, run_seed=7, max_evaluations=N_ITERATIONS
    )
    second = setup.run(
        solver, variant, run_seed=7, max_evaluations=N_ITERATIONS
    )
    assert first.n_trained == N_ITERATIONS
    assert (
        first.best_error_vs_samples().tobytes()
        == second.best_error_vs_samples().tobytes()
    )
    # The full records agree too, not just the headline trajectory.
    assert json.dumps(run_to_dict(first), sort_keys=True) == json.dumps(
        run_to_dict(second), sort_keys=True
    )


@pytest.mark.slow
def test_different_seeds_diverge(setup):
    a = setup.run("Rand", "hyperpower", run_seed=0, max_evaluations=5)
    b = setup.run("Rand", "hyperpower", run_seed=1, max_evaluations=5)
    assert (
        a.best_error_vs_samples().tobytes()
        != b.best_error_vs_samples().tobytes()
    )
