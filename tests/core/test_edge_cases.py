"""Edge-case and failure-path tests for the core framework."""

import numpy as np
import pytest

from repro.core.acquisition import HWIECI
from repro.core.constraints import ConstraintSpec
from repro.core.hyperpower import HyperPower, build_method
from repro.core.methods import BayesianOptimizer, RandomSearch, SearchState
from repro.core.result import TrialStatus
from repro.experiments.setup import quick_setup
from repro.space.presets import mnist_space


class _RejectEverything:
    """A checker whose indicator never passes (degenerate budgets)."""

    def indicator(self, config):
        return False

    def satisfaction_probability(self, config):
        return 0.0

    def predictions(self, config):
        return 999.0, None


class _AcceptEverything:
    def indicator(self, config):
        return True

    def satisfaction_probability(self, config):
        return 1.0

    def predictions(self, config):
        return 1.0, None


class TestScreeningExhaustion:
    def test_random_search_gives_up_gracefully(self):
        space = mnist_space()
        method = RandomSearch(space, _RejectEverything())
        method.max_rejects = 50  # keep the test fast
        proposal = method.propose(SearchState(), np.random.default_rng(0))
        # The last draw is evaluated anyway, flagged infeasible.
        assert proposal.feasible_pred is False
        assert len(proposal.rejected) == method.max_rejects

    def test_bo_fallback_when_pool_fully_gated(self):
        space = mnist_space()
        checker = _RejectEverything()
        method = BayesianOptimizer(
            space, HWIECI(checker), model_checker=checker, n_init=2, pool_size=50
        )
        rng = np.random.default_rng(1)
        state = SearchState()
        # Fabricate two trained observations so the GP phase engages.
        from repro.core.result import Trial

        for i in range(3):
            config = space.sample(rng)
            state.trials.append(
                Trial(
                    index=i,
                    config=config,
                    status=TrialStatus.COMPLETED,
                    timestamp_s=float(i),
                    cost_s=1.0,
                    error=0.1 + 0.1 * i,
                    feasible_meas=True,
                )
            )
            state.trained_configs.append(config)
            state.trained_errors.append(0.1 + 0.1 * i)
            state.trained_feasible.append(True)
        proposal = method.propose(state, rng)
        # Every candidate was gated out -> the screened-random fallback
        # ran (and itself exhausted, since nothing passes).
        assert proposal.silent_model_checks > 0
        assert space.contains(proposal.config)


class TestDriverCaps:
    def test_max_samples_cap_stops_runaway_rejection(self):
        setup = quick_setup(
            "mnist", "tx1", power_budget_w=10.0, seed=0, profiling_samples=40
        )
        method = RandomSearch(setup.space, _RejectEverything())
        method.max_rejects = 200
        objective = setup.new_objective(0)
        driver = HyperPower(objective, method, "hyperpower")
        driver.MAX_SAMPLES = 150  # instance attribute shadows the class cap
        result = driver.run(np.random.default_rng(0), max_time_s=1e9)
        assert result.n_samples <= 150 + method.max_rejects + 1


class TestBuildMethodLatency:
    def test_latency_budget_flows_through(self):
        from repro.hwsim import GTX_1070, HardwareProfiler
        from repro.models import fit_latency_model, run_profiling_campaign

        space = mnist_space()
        rng = np.random.default_rng(2)
        profiler = HardwareProfiler(GTX_1070, rng)
        campaign = run_profiling_campaign(space, "mnist", profiler, 40, rng)
        latency_model = fit_latency_model(space, campaign)
        spec = ConstraintSpec(latency_budget_s=float(np.median(campaign.latency_s)))
        method = build_method(
            "Rand", "hyperpower", space, spec, latency_model=latency_model
        )
        proposal = method.propose(SearchState(), rng)
        assert method.checker.latency_model is latency_model
        assert space.contains(proposal.config)

    def test_missing_latency_model_rejected(self):
        space = mnist_space()
        spec = ConstraintSpec(latency_budget_s=0.01)
        with pytest.raises(ValueError, match="latency"):
            build_method("Rand", "hyperpower", space, spec)


class TestAcceptEverythingChecker:
    def test_no_rejections_when_space_fully_feasible(self):
        space = mnist_space()
        method = RandomSearch(space, _AcceptEverything())
        proposal = method.propose(SearchState(), np.random.default_rng(3))
        assert proposal.rejected == ()
        assert proposal.feasible_pred is True
