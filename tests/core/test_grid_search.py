"""Tests for the grid-search baseline."""

import numpy as np
import pytest

from repro.core.methods import GridSearch, SearchState
from repro.space.params import ContinuousParameter, IntegerParameter
from repro.space.space import SearchSpace


@pytest.fixture
def space():
    return SearchSpace(
        [
            IntegerParameter("features", 20, 80),
            IntegerParameter("kernel", 2, 5),
            ContinuousParameter("lr", 0.001, 0.1, log=True),
        ]
    )


class TestEnumeration:
    def test_grid_size(self, space):
        method = GridSearch(space, resolution=3)
        assert method.grid_size == 3 * 3 * 3

    def test_enumerates_all_points_once(self, space):
        method = GridSearch(space, resolution=2)
        rng = np.random.default_rng(0)
        state = SearchState()
        seen = set()
        for _ in range(method.grid_size):
            config = method.propose(state, rng).config
            seen.add(tuple(sorted(config.items())))
        assert len(seen) == method.grid_size

    def test_refines_after_exhaustion(self, space):
        method = GridSearch(space, resolution=2)
        rng = np.random.default_rng(1)
        state = SearchState()
        for _ in range(method.grid_size):
            method.propose(state, rng)
        # Next proposal restarts with a finer grid.
        method.propose(state, rng)
        assert method.grid_size == 3 * 3 * 3

    def test_proposals_are_valid(self, space):
        method = GridSearch(space, resolution=3)
        rng = np.random.default_rng(2)
        state = SearchState()
        for _ in range(10):
            assert space.contains(method.propose(state, rng).config)

    def test_deterministic_sequence(self, space):
        a = GridSearch(space, resolution=2)
        b = GridSearch(space, resolution=2)
        rng = np.random.default_rng(3)
        state = SearchState()
        for _ in range(5):
            assert a.propose(state, rng).config == b.propose(state, rng).config

    def test_resolution_validation(self, space):
        with pytest.raises(ValueError):
            GridSearch(space, resolution=1)


class TestScreenedGrid:
    class _EvenFeaturesChecker:
        def indicator(self, config):
            return config["features"] % 2 == 0

        def predictions(self, config):
            return float(config["features"]), None

    def test_screening_records_rejections(self, space):
        method = GridSearch(space, resolution=3, checker=self._EvenFeaturesChecker())
        rng = np.random.default_rng(4)
        proposal = method.propose(SearchState(), rng)
        assert proposal.config["features"] % 2 == 0
        for rejected in proposal.rejected:
            assert rejected.config["features"] % 2 == 1
