"""Crash-safe run journaling and bit-identical resume.

The contract under test: every completed round is durably journaled; a
journal with a torn tail (the crash landed mid-write) recovers cleanly;
and resuming an interrupted run replays the journal and continues
byte-identically — same trials, same clock, same RNG state — as the run
that was never killed.  The eight solver/variant cells all honour it.
"""

import json
import os
import shutil
from pathlib import Path

import pytest

from repro.core.faults import FaultRates, RetryPolicy
from repro.core.hyperpower import SOLVERS, VARIANTS
from repro.experiments.setup import quick_setup
from repro.io import JOURNAL_FORMAT, JournalReplay, RunJournal, run_to_dict

N_ITERATIONS = 10


@pytest.fixture(scope="module")
def setup():
    return quick_setup(
        "mnist", "gtx1070", power_budget_w=85.0, memory_budget_gb=1.15,
        seed=0, profiling_samples=100,
    )


def _truncate_rounds(path: Path, out: Path, keep_rounds: int) -> None:
    """Copy a journal keeping the header and the first ``keep_rounds``
    rounds, ending with a torn line — a simulated mid-write crash."""
    lines = path.read_bytes().split(b"\n")
    out.write_bytes(
        b"\n".join(lines[: 1 + keep_rounds]) + b"\n" + b'{"round": 99, "tor'
    )


# -- the journal file itself -------------------------------------------------------


class TestRunJournal:
    def test_header_and_round_lines(self, setup, tmp_path):
        path = tmp_path / "run.jsonl"
        result = setup.run(
            "Rand", "hyperpower", run_seed=1, max_evaluations=6,
            backend="serial", workers=2, journal=path,
        )
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line.strip()
        ]
        assert lines[0]["format"] == JOURNAL_FORMAT
        assert lines[0]["meta"]["solver"] == "Rand"
        rounds = [r for r in lines[1:] if "round" in r]
        assert [r["round"] for r in rounds] == list(range(len(rounds)))
        # Every queried trial of the run is journaled, in order.
        journaled = [t for r in rounds for t in r["trials"]]
        assert len(journaled) == result.n_samples
        assert [t["index"] for t in journaled] == list(
            range(result.n_samples)
        )
        assert lines[-1]["end"] is True
        assert lines[-1]["n_samples"] == result.n_samples

    def test_load_rejects_non_journal(self, tmp_path):
        path = tmp_path / "x.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro journal"):
            JournalReplay.load(path)

    def test_corrupt_tail_is_dropped(self, setup, tmp_path):
        path = tmp_path / "run.jsonl"
        setup.run(
            "Rand", "hyperpower", run_seed=1, max_evaluations=6,
            backend="serial", workers=2, journal=path,
        )
        full = JournalReplay.load(path)
        torn = tmp_path / "torn.jsonl"
        _truncate_rounds(path, torn, keep_rounds=2)
        recovered = JournalReplay.load(torn)
        assert recovered.n_rounds == 2
        assert not recovered.finished
        assert recovered.meta == full.meta

    def test_reopen_truncates_and_appends(self, setup, tmp_path):
        path = tmp_path / "run.jsonl"
        setup.run(
            "Rand", "hyperpower", run_seed=1, max_evaluations=6,
            backend="serial", workers=2, journal=path,
        )
        torn = tmp_path / "torn.jsonl"
        _truncate_rounds(path, torn, keep_rounds=2)
        journal = RunJournal.reopen(torn)
        assert journal.skip_replay
        journal.close()
        # The torn line is gone; the valid prefix parses round-trip.
        recovered = JournalReplay.load(torn)
        assert recovered.n_rounds == 2

    def test_closed_journal_refuses_writes(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl", meta={})
        journal.close()
        with pytest.raises(ValueError, match="closed"):
            journal.append_round([], None)


# -- resume ------------------------------------------------------------------------


class TestResume:
    def _full_then_resumed(
        self, setup, tmp_path, keep_rounds, **run_kwargs
    ):
        path = tmp_path / "full.jsonl"
        full = setup.run(journal=path, **run_kwargs)
        torn = tmp_path / "torn.jsonl"
        _truncate_rounds(path, torn, keep_rounds=keep_rounds)
        resumed = setup.run(resume_from=torn, **run_kwargs)
        return full, resumed, torn

    def test_resume_is_byte_identical_with_faults(self, setup, tmp_path):
        full, resumed, torn = self._full_then_resumed(
            setup, tmp_path, keep_rounds=3,
            solver="Rand", variant="hyperpower", run_seed=2,
            max_evaluations=N_ITERATIONS, backend="serial", workers=2,
            faults=FaultRates(crash=0.3, nvml=0.2), fault_seed=11,
            retry=RetryPolicy(max_attempts=2),
        )
        assert json.dumps(run_to_dict(full), sort_keys=True) == json.dumps(
            run_to_dict(resumed), sort_keys=True
        )
        # The resumed journal was completed in place, torn tail and all.
        completed = JournalReplay.load(torn)
        assert completed.finished
        assert completed.n_rounds >= 3

    def test_resume_of_finished_journal_replays_to_same_result(
        self, setup, tmp_path
    ):
        path = tmp_path / "full.jsonl"
        kwargs = dict(
            solver="Rand", variant="hyperpower", run_seed=2,
            max_evaluations=6, backend="serial", workers=2,
        )
        full = setup.run(journal=path, **kwargs)
        resumed = setup.run(resume_from=path, **kwargs)
        assert json.dumps(run_to_dict(full), sort_keys=True) == json.dumps(
            run_to_dict(resumed), sort_keys=True
        )

    def test_sequential_path_resume_reexecutes_identically(
        self, setup, tmp_path
    ):
        # pool=None: the journal verifies deterministic re-execution.
        full, resumed, _ = self._full_then_resumed(
            setup, tmp_path, keep_rounds=3,
            solver="Rand", variant="hyperpower", run_seed=2,
            max_evaluations=6,
        )
        assert json.dumps(run_to_dict(full), sort_keys=True) == json.dumps(
            run_to_dict(resumed), sort_keys=True
        )

    def test_resume_to_fresh_journal_records_all_rounds(
        self, setup, tmp_path
    ):
        path = tmp_path / "full.jsonl"
        kwargs = dict(
            solver="Rand", variant="hyperpower", run_seed=2,
            max_evaluations=6, backend="serial", workers=2,
        )
        setup.run(journal=path, **kwargs)
        torn = tmp_path / "torn.jsonl"
        _truncate_rounds(path, torn, keep_rounds=2)
        fresh = tmp_path / "fresh.jsonl"
        setup.run(resume_from=torn, journal=fresh, **kwargs)
        # The fresh journal holds the whole run, replayed rounds included.
        assert (
            JournalReplay.load(fresh).n_rounds
            == JournalReplay.load(path).n_rounds
        )
        # The torn source was left untouched.
        assert JournalReplay.load(torn).n_rounds == 2

    def test_resume_under_different_parameters_is_rejected(
        self, setup, tmp_path
    ):
        path = tmp_path / "full.jsonl"
        setup.run(
            "Rand", "hyperpower", run_seed=2, max_evaluations=6,
            backend="serial", workers=2, journal=path,
        )
        with pytest.raises(ValueError, match="different run parameters"):
            setup.run(
                "Rand", "hyperpower", run_seed=2, max_evaluations=8,
                backend="serial", workers=2, resume_from=path,
            )
        with pytest.raises(ValueError, match="different run parameters"):
            setup.run(
                "Rand-Walk", "hyperpower", run_seed=2, max_evaluations=6,
                backend="serial", workers=2, resume_from=path,
            )


@pytest.mark.slow
@pytest.mark.faults
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_kill_and_resume_all_cells(
    setup, tmp_path, solver, variant, fault_backend
):
    """ISSUE acceptance: killing a run mid-journal and resuming produces a
    byte-identical ``run_to_dict`` in all eight solver/variant cells.

    When ``FAULTS_ARTIFACT_DIR`` is set (the CI faults job), the torn and
    completed journals are copied there for artifact upload.
    """
    kwargs = dict(
        run_seed=7, max_evaluations=N_ITERATIONS,
        backend=fault_backend, workers=2,
    )
    path = tmp_path / "full.jsonl"
    full = setup.run(solver, variant, journal=path, **kwargs)
    torn = tmp_path / "torn.jsonl"
    n_rounds = JournalReplay.load(path).n_rounds
    _truncate_rounds(path, torn, keep_rounds=max(1, n_rounds // 2))
    resumed = setup.run(solver, variant, resume_from=torn, **kwargs)
    assert json.dumps(run_to_dict(full), sort_keys=True) == json.dumps(
        run_to_dict(resumed), sort_keys=True
    )
    artifact_dir = os.environ.get("FAULTS_ARTIFACT_DIR")
    if artifact_dir:
        dest = Path(artifact_dir)
        dest.mkdir(parents=True, exist_ok=True)
        cell = f"{solver}-{variant}".replace("/", "-")
        shutil.copy(path, dest / f"{cell}-full.jsonl")
        shutil.copy(torn, dest / f"{cell}-resumed.jsonl")
