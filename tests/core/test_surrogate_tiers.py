"""Surrogate-tier regressions at the optimizer level.

The contract of the sparse surrogate tier (ISSUE 7): opting in must be a
pure performance decision.  ``--surrogate auto`` below the switch
threshold stays *byte-identical* to the exact tier across all eight
solver/variant cells, the sparse tiers run the full pipeline to finite
results, and the CLI/`build_method` plumbing validates its knobs.
"""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.acquisition import ExpectedImprovement
from repro.core.constraints import ConstraintSpec, GPConstraintModel
from repro.core.hyperpower import SOLVERS, VARIANTS, build_method
from repro.core.methods import BayesianOptimizer, SearchState
from repro.experiments.setup import quick_setup
from repro.io import run_to_dict
from repro.space import mnist_space

pytestmark = pytest.mark.sparse_gp

N_ITERATIONS = 20


@pytest.fixture(scope="module")
def setup():
    return quick_setup(
        "mnist", "gtx1070", power_budget_w=85.0, memory_budget_gb=1.15,
        seed=0, profiling_samples=100,
    )


@pytest.mark.slow
@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.parametrize("solver", sorted(SOLVERS))
def test_auto_below_threshold_is_byte_identical_to_exact(
    setup, solver, variant
):
    """With n far below ``surrogate_switch_at``, the auto tier must run the
    exact GP through the identical code path — same RNG stream, same
    posterior, same trajectory, byte for byte.  The model-free solvers
    ride along to pin all eight cells."""
    exact = setup.run(
        solver, variant, run_seed=7, max_evaluations=N_ITERATIONS,
        surrogate="exact",
    )
    auto = setup.run(
        solver, variant, run_seed=7, max_evaluations=N_ITERATIONS,
        surrogate="auto",  # default switch_at=1000 >> 20 evaluations
    )
    assert (
        exact.best_error_vs_samples().tobytes()
        == auto.best_error_vs_samples().tobytes()
    )
    assert json.dumps(run_to_dict(exact), sort_keys=True) == json.dumps(
        run_to_dict(auto), sort_keys=True
    )


@pytest.mark.slow
@pytest.mark.parametrize("tier", ["rff", "nystrom"])
def test_sparse_tiers_run_the_full_pipeline(setup, tier):
    result = setup.run(
        "HW-CWEI", "hyperpower", run_seed=3, max_evaluations=15,
        surrogate=tier, surrogate_features=64,
    )
    assert result.n_trained == 15
    traj = result.best_error_vs_samples()
    assert np.all(np.isfinite(traj))
    # Re-running the sparse tier is still deterministic.
    again = setup.run(
        "HW-CWEI", "hyperpower", run_seed=3, max_evaluations=15,
        surrogate=tier, surrogate_features=64,
    )
    assert json.dumps(run_to_dict(result), sort_keys=True) == json.dumps(
        run_to_dict(again), sort_keys=True
    )


@pytest.mark.slow
def test_auto_past_threshold_switches_mid_run(setup):
    """Driving the switch point below the horizon exercises a live
    exact->sparse transition inside one optimization run."""
    result = setup.run(
        "HW-IECI", "hyperpower", run_seed=5, max_evaluations=15,
        surrogate="auto", surrogate_switch_at=8, surrogate_features=64,
    )
    assert result.n_trained == 15
    assert np.all(np.isfinite(result.best_error_vs_samples()))


class TestBuildMethodPlumbing:
    def _spec(self):
        return ConstraintSpec(power_budget_w=85.0)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="surrogate"):
            BayesianOptimizer(
                mnist_space(), ExpectedImprovement(), surrogate="dense"
            )

    @pytest.mark.parametrize("kwargs", [
        {"surrogate_features": 0},
        {"surrogate_switch_at": 0},
    ])
    def test_positive_knobs_enforced(self, kwargs):
        with pytest.raises(ValueError):
            BayesianOptimizer(mnist_space(), ExpectedImprovement(), **kwargs)

    def test_knobs_reach_optimizer_and_constraint_model(self):
        method = build_method(
            "HW-CWEI", "default", mnist_space(), self._spec(),
            surrogate="nystrom", surrogate_features=96,
            surrogate_switch_at=500,
        )
        assert isinstance(method, BayesianOptimizer)
        assert method.surrogate == "nystrom"
        assert method.surrogate_features == 96
        assert method.surrogate_switch_at == 500
        cm = method.learned_constraints
        assert isinstance(cm, GPConstraintModel)
        assert cm.surrogate == "nystrom"
        assert cm.surrogate_features == 96
        assert cm.surrogate_switch_at == 500


class TestFantasyLieFallback:
    def _optimizer_with_history(self, errors, fantasy="cl-mean"):
        space = mnist_space()
        opt = BayesianOptimizer(
            space, ExpectedImprovement(), fantasy=fantasy
        )
        rng = np.random.default_rng(0)
        configs = [space.sample(rng) for _ in range(len(errors))]
        state = SearchState(
            trained_configs=configs,
            trained_errors=list(errors),
            trained_feasible=[False] * len(errors),
        )
        finite = np.isfinite(np.asarray(errors))
        X = space.encode_many([c for c, ok in zip(configs, finite) if ok])
        gp = opt._make_surrogate()
        gp.fit(
            X, np.asarray(errors, dtype=float)[finite], optimize_hypers=False
        )
        pending = [space.sample(rng) for _ in range(2)]
        return opt, state, gp, pending

    def test_non_finite_errors_never_reach_the_surrogate(self):
        """Fantasizing while some observed errors are non-finite must fall
        back to the mean of the *finite* errors rather than poisoning the
        surrogate with a NaN lie (``cl-mean`` over a history containing
        NaN is itself NaN)."""
        errors = [0.3, 0.2, float("nan"), 0.25, 0.4, 0.35]
        opt, state, gp, pending = self._optimizer_with_history(errors)
        fantasy, n_lies = opt._fantasize(gp, state, pending)
        assert n_lies == len(pending)
        assert fantasy.n_observations == gp.n_observations + len(pending)
        mean, _ = fantasy.predict(
            opt.space.encode_many(pending)
        )
        assert np.all(np.isfinite(mean))

    def test_all_non_finite_errors_skip_fantasies(self):
        errors = [float("nan"), float("nan"), float("nan")]
        space = mnist_space()
        opt = BayesianOptimizer(
            space, ExpectedImprovement(), fantasy="cl-mean"
        )
        rng = np.random.default_rng(1)
        state = SearchState(
            trained_configs=[space.sample(rng) for _ in range(3)],
            trained_errors=list(errors),
            trained_feasible=[False, False, False],
        )
        X = space.encode_many([space.sample(rng) for _ in range(5)])
        gp = opt._make_surrogate()
        gp.fit(X, np.linspace(0.1, 0.5, 5), optimize_hypers=False)
        fantasy, n_lies = opt._fantasize(gp, state, [space.sample(rng)])
        assert n_lies == 0
        assert fantasy is gp


class TestCLIPlumbing:
    _BASE = [
        "--samples", "50", "run", "--pair", "mnist-gtx1070",
        "--solver", "Rand", "--variant", "hyperpower",
        "--evaluations", "3", "--run-seed", "1",
    ]

    def test_surrogate_flags_parse_and_run(self, tmp_path):
        out = tmp_path / "run.json"
        argv = self._BASE + [
            "--surrogate", "rff", "--surrogate-features", "32",
            "--out", str(out),
        ]
        assert cli_main(argv) == 0
        payload = json.loads(out.read_text())
        assert payload["format"] == "repro-runs/1"
        assert len(payload["runs"]) == 1

    @pytest.mark.parametrize("flag,value", [
        ("--surrogate-features", "0"),
        ("--surrogate-switch-at", "-5"),
    ])
    def test_non_positive_knobs_exit(self, flag, value):
        with pytest.raises(SystemExit):
            cli_main(self._BASE + [flag, value])

    def test_unknown_surrogate_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            cli_main(self._BASE + ["--surrogate", "dense"])
