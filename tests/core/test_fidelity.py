"""Tests for the rung-schedule bookkeeping (repro.core.fidelity).

Pure-logic invariants: ladder construction, cell/promotion arithmetic,
Hyperband bracket scaling, and — the property the async driver leans on —
promotion decisions that are invariant to the order paused trials arrive
in, with ties broken deterministically by issue ticket.
"""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fidelity import (
    FidelitySchedule,
    RungScheduler,
    segment_seed,
)


class TestGeometricLadder:
    def test_standard_ladder(self):
        sched = FidelitySchedule.geometric(27, min_epochs=1, eta=3)
        assert sched.rungs == (1, 3, 9, 27)
        assert sched.num_rungs == 4
        assert sched.max_epochs == 27

    def test_cap_terminates_ladder(self):
        sched = FidelitySchedule.geometric(20, min_epochs=1, eta=3)
        assert sched.rungs == (1, 3, 9, 20)

    def test_num_rungs_keeps_cheap_rungs_and_cap(self):
        sched = FidelitySchedule.geometric(27, eta=3, num_rungs=3)
        assert sched.rungs == (1, 3, 27)

    def test_single_rung_is_full_fidelity(self):
        sched = FidelitySchedule.geometric(20, num_rungs=1)
        assert sched.rungs == (20,)
        assert sched.is_final(0, 0)

    def test_validation(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            FidelitySchedule(rungs=(3, 3, 9))
        with pytest.raises(ValueError, match="eta"):
            FidelitySchedule(rungs=(1, 3), eta=1)
        with pytest.raises(ValueError, match="at least one rung"):
            FidelitySchedule(rungs=())
        with pytest.raises(ValueError, match="brackets"):
            FidelitySchedule(rungs=(1, 3), brackets=3)
        with pytest.raises(ValueError, match=">= 1 epoch"):
            FidelitySchedule(rungs=(0, 3))
        with pytest.raises(ValueError, match="min_epochs"):
            FidelitySchedule.geometric(5, min_epochs=9)

    def test_cell_sizes_shrink_by_eta(self):
        sched = FidelitySchedule.geometric(27, eta=3)  # 4 rungs
        assert sched.initial_cell(0) == 27  # eta**(num_rungs-1)
        assert [sched.cell_size(0, s) for s in range(4)] == [27, 9, 3, 1]
        assert [sched.promote_count(0, s) for s in range(4)] == [9, 3, 1, 1]

    def test_epoch_targets_and_starts(self):
        sched = FidelitySchedule.geometric(27, eta=3)
        assert [sched.target_epochs(0, s) for s in range(4)] == [1, 3, 9, 27]
        assert [sched.start_epoch(0, s) for s in range(4)] == [0, 1, 3, 9]

    def test_scatter_init_overrides_cell(self):
        sched = FidelitySchedule.geometric(27, eta=3, scatter_init=12)
        assert sched.initial_cell(0) == 12
        assert sched.cell_size(0, 1) == 4


class TestHyperbandBrackets:
    def test_bracket_ladders_skip_cheap_rungs(self):
        sched = FidelitySchedule.geometric(27, eta=3, brackets=3)
        assert sched.bracket_rungs(0) == (1, 3, 9, 27)
        assert sched.bracket_rungs(1) == (3, 9, 27)
        assert sched.bracket_rungs(2) == (9, 27)
        # A later bracket's stage-0 segment trains straight to its rung.
        assert sched.start_epoch(1, 0) == 0
        assert sched.target_epochs(1, 0) == 3
        assert sched.start_epoch(1, 1) == 3

    def test_bracket_cells_narrow_with_fidelity(self):
        sched = FidelitySchedule.geometric(27, eta=3, brackets=3)
        cells = [sched.initial_cell(b) for b in range(3)]
        assert cells[0] > cells[1] > cells[2] >= 1
        # Standard Hyperband width: ceil(n0 * (s+1) / ((s_b+1) * eta**b)).
        assert cells[1] == math.ceil(27 * 4 / (3 * 3))
        assert cells[2] == math.ceil(27 * 4 / (2 * 9))

    def test_bracket_bounds_checked(self):
        sched = FidelitySchedule.geometric(27, eta=3, brackets=2)
        with pytest.raises(ValueError, match="bracket"):
            sched.initial_cell(2)


class TestRungScheduler:
    def test_no_decision_until_cell_full(self):
        sched = RungScheduler(FidelitySchedule((1, 3, 9), n0=3))
        assert sched.arrive(0, 0, ticket=1, error=0.5) is None
        assert sched.arrive(0, 0, ticket=2, error=0.3) is None
        decision = sched.arrive(0, 0, ticket=3, error=0.4)
        assert decision is not None
        assert decision.promoted == (2,)
        assert decision.culled == (3, 1)
        assert sched.pauses == 3
        assert sched.promotions == 1 and sched.culls == 2

    def test_nonfinite_errors_rank_last(self):
        sched = RungScheduler(FidelitySchedule((1, 9), n0=3))
        sched.arrive(0, 0, ticket=1, error=float("nan"))
        sched.arrive(0, 0, ticket=2, error=0.9)
        decision = sched.arrive(0, 0, ticket=3, error=float("inf"))
        assert decision.promoted == (2,)
        assert set(decision.culled) == {1, 3}

    def test_equal_errors_break_by_ticket(self):
        sched = RungScheduler(FidelitySchedule((1, 9), n0=3))
        sched.arrive(0, 0, ticket=7, error=0.5)
        sched.arrive(0, 0, ticket=3, error=0.5)
        decision = sched.arrive(0, 0, ticket=5, error=0.5)
        assert decision.promoted == (3,)  # lowest ticket wins the tie
        assert decision.culled == (5, 7)

    def test_flush_drains_unfilled_cells(self):
        sched = RungScheduler(FidelitySchedule((1, 3, 9), n0=9))
        sched.arrive(0, 0, ticket=4, error=0.2)
        sched.arrive(0, 1, ticket=2, error=0.1)
        assert sched.n_paused == 2
        assert sched.flush() == [4, 2]  # cells in (bracket, stage) order
        assert sched.n_paused == 0
        assert sched.culls == 2

    @settings(max_examples=60, deadline=None)
    @given(
        errors=st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=2, max_size=7
        ),
        seed=st.integers(0, 2**32 - 1),
        ties=st.booleans(),
    )
    def test_decision_invariant_to_arrival_order(self, errors, seed, ties):
        """Any permutation of arrivals yields the identical decision —
        including at equal ranks, where the ticket tiebreaker decides."""
        if ties:
            errors = [round(e, 1) for e in errors]  # force collisions
        n = len(errors)
        schedule = FidelitySchedule((1, 9), n0=n)
        arrivals = list(enumerate(errors))  # ticket i, error e
        perm = np.random.default_rng(seed).permutation(n)
        baseline = None
        for order in (range(n), perm):
            sched = RungScheduler(schedule)
            decision = None
            for i in order:
                ticket, error = arrivals[int(i)]
                decision = sched.arrive(0, 0, ticket, error) or decision
            assert decision is not None
            if baseline is None:
                baseline = decision
            else:
                assert decision == baseline


class TestSegmentSeed:
    def test_deterministic_and_distinct(self):
        assert segment_seed(123, 3) == segment_seed(123, 3)
        assert segment_seed(123, 3) != segment_seed(123, 9)
        assert segment_seed(123, 3) != segment_seed(124, 3)
        # And distinct from the trial seed itself (the rung-0 stream).
        assert segment_seed(123, 3) != 123
