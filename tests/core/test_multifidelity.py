"""End-to-end tests for multi-fidelity rung scheduling.

Four invariant families guard the rung path:

* *seed purity* — a trial promoted through every rung reproduces the
  full-fidelity evaluation of the same seed bit-exactly (same curve,
  same best error), paying only incremental epochs per segment;
* *determinism* — serial/thread/process backends produce byte-identical
  runs, and promotion decisions never depend on completion arrival order;
* *crash safety* — a run killed mid-rung (trials paused, continuations in
  flight) resumes bit-identically from its journal, including under
  fault injection;
* *byte-identity of the classic paths* — ``rungs=0`` runs are untouched
  (the golden suite pins this globally; here we spot-check the knob).

The cross-backend tests honour ``MULTIFIDELITY_BACKEND``
(serial/thread/process), mirroring the async/faults/telemetry lanes.
"""

import os

import numpy as np
import pytest

from repro.core.faults import FaultRates, RetryPolicy, retry_seed
from repro.core.fidelity import FidelitySchedule
from repro.core.parallel import EvaluationPool, TrialCache
from repro.core.result import TrialStatus
from repro.experiments.setup import quick_setup
from repro.io import run_to_dict
from repro.telemetry import Telemetry

MULTIFIDELITY_BACKEND = os.environ.get("MULTIFIDELITY_BACKEND", "serial")

pytestmark = pytest.mark.multifidelity


@pytest.fixture(scope="module")
def setup():
    return quick_setup(
        "mnist", "gtx1070", power_budget_w=85.0, memory_budget_gb=1.15,
        seed=0, profiling_samples=100,
    )


RUN_KW = dict(scheduler="async", rungs=3, eta=3, workers=3)


# -- seed purity -------------------------------------------------------------------


class TestSeedPurity:
    def test_promoted_chain_matches_full_fidelity(self, setup):
        """Segments 0→1, 1→3, 3→n reproduce the one-shot evaluation."""
        objective = setup.new_objective(0)
        config = setup.space.sample(np.random.default_rng(5))
        seed = 424242
        full = objective.evaluate_seeded(config, seed)
        sched = FidelitySchedule.geometric(
            objective.trainer.dataset.default_epochs, eta=3
        )
        outcome = None
        total_cost = 0.0
        for stage in range(sched.num_rungs):
            outcome = objective.evaluate_segment(
                config,
                seed,
                start_epoch=sched.start_epoch(0, stage),
                epochs=sched.target_epochs(0, stage),
            )
            total_cost += outcome.cost_s
        assert outcome.error == full.error
        assert outcome.final_error == full.final_error
        assert outcome.epochs_run == full.epochs_run
        assert outcome.diverged == full.diverged
        # Continuations charge no setup and no measurement, so the chain
        # costs exactly the one-shot run.
        assert total_cost == pytest.approx(full.cost_s)

    def test_segment_zero_is_evaluate_seeded_prefix(self, setup):
        """A rung-0 segment is the classic evaluation truncated — same
        profiling charge, same measurement, same curve prefix."""
        objective = setup.new_objective(1)
        config = setup.space.sample(np.random.default_rng(6))
        full = objective.evaluate_seeded(config, 99)
        objective2 = setup.new_objective(1)
        head = objective2.evaluate_segment(config, 99, epochs=3)
        assert head.epochs_run <= 3
        assert head.measurement.power_w == full.measurement.power_w
        assert head.measurement.memory_bytes == full.measurement.memory_bytes
        assert head.measurement.latency_s == full.measurement.latency_s
        assert head.feasible_meas == full.feasible_meas


# -- scheduling behaviour ----------------------------------------------------------


class TestRungScheduling:
    def test_run_promotes_and_culls(self, setup):
        telemetry = Telemetry()
        result = setup.run(
            "HW-IECI", "hyperpower", backend=MULTIFIDELITY_BACKEND,
            max_evaluations=27, telemetry=telemetry, **RUN_KW,
        )
        statuses = {t.status for t in result.trials}
        assert TrialStatus.CULLED in statuses
        assert TrialStatus.COMPLETED in statuses
        snap = telemetry.metrics.snapshot()
        assert snap["rung.promotions"]["value"] > 0
        assert snap["rung.culls"]["value"] > 0
        # Every trained trial records the rung it terminated at.
        for t in result.trials:
            if t.status in (TrialStatus.CULLED, TrialStatus.COMPLETED):
                assert t.rung is not None
        # Culled trials carry real low-fidelity observations.
        culled = [t for t in result.trials if t.status is TrialStatus.CULLED]
        assert all(np.isfinite(t.error) for t in culled)
        assert all(t.epochs_run > 0 for t in culled)

    def test_full_ladder_trains_full_schedule(self, setup):
        result = setup.run(
            "Rand", "default", backend=MULTIFIDELITY_BACKEND,
            max_evaluations=27, **RUN_KW,
        )
        completed = [
            t for t in result.trials if t.status is TrialStatus.COMPLETED
        ]
        full_epochs = setup.dataset.default_epochs
        assert completed
        assert all(t.epochs_run == full_epochs for t in completed)

    def test_rungs_require_async_pool(self, setup):
        with pytest.raises(ValueError, match="asynchronous pool"):
            setup.run("Rand", "default", max_evaluations=4, rungs=3)
        with pytest.raises(ValueError, match="asynchronous pool"):
            setup.run(
                "Rand", "default", backend="serial", scheduler="sync",
                max_evaluations=4, rungs=3,
            )

    def test_rungs_off_is_byte_identical_knob(self, setup):
        """rungs=0 must route through the untouched classic async path."""
        kw = dict(
            backend=MULTIFIDELITY_BACKEND, workers=3, max_evaluations=8,
            scheduler="async",
        )
        classic = setup.run("HW-IECI", "hyperpower", **kw)
        with_knob = setup.run("HW-IECI", "hyperpower", rungs=0, **kw)
        assert run_to_dict(classic) == run_to_dict(with_knob)

    def test_hyperband_brackets_round_robin(self, setup):
        result = setup.run(
            "Rand", "default", backend=MULTIFIDELITY_BACKEND,
            scheduler="async", rungs=4, eta=3, brackets=2, workers=3,
            max_evaluations=30,
        )
        rungs_seen = {t.rung for t in result.trials if t.rung is not None}
        assert rungs_seen  # trials terminated at recorded stages
        assert result.n_samples == 30

    def test_worker_occupancy_stays_high(self, setup):
        telemetry = Telemetry()
        setup.run(
            "HW-IECI", "hyperpower", backend=MULTIFIDELITY_BACKEND,
            max_time_s=3600.0, telemetry=telemetry, **RUN_KW,
        )
        snap = telemetry.metrics.snapshot()
        assert snap["schedule.occupancy"]["value"] >= 0.9


# -- determinism -------------------------------------------------------------------


class TestDeterminism:
    def test_backends_identical(self, setup):
        kw = dict(max_evaluations=18, **RUN_KW)
        runs = [
            run_to_dict(setup.run("HW-IECI", "hyperpower", backend=b, **kw))
            for b in ("serial", "thread", "process")
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_repeat_runs_identical(self, setup):
        kw = dict(
            backend=MULTIFIDELITY_BACKEND, max_evaluations=18, **RUN_KW
        )
        a = setup.run("HW-IECI", "hyperpower", **kw)
        b = setup.run("HW-IECI", "hyperpower", **kw)
        assert run_to_dict(a) == run_to_dict(b)

    def test_fidelity_cache_keys_are_separate(self, setup):
        """Rung segments and classic trials never share cache entries."""
        cache = TrialCache()
        objective = setup.new_objective(3)
        config = setup.space.sample(np.random.default_rng(9))
        with EvaluationPool(
            objective, backend="serial", workers=1, cache=cache,
        ) as pool:
            pool.submit(config, 0.0, cache_lookup_s=0.01)
            classic = pool.next_completion()
            pool.submit_segment(config, classic.finish_s, epochs=3)
            rung = pool.next_completion()
        assert not classic.outcome.cached
        assert not rung.outcome.cached  # distinct key: no false hit
        assert pool.misses == 2
        # The fidelity-tagged entry remembers its effective curve seed,
        # so a later promotion of a cache-hit rung can resume the curve.
        key = cache.key(config, epochs=3)
        seed = cache.seed_for(key)
        assert seed is not None
        assert seed == retry_seed(rung.outcome.seed, 0)


# -- crash safety ------------------------------------------------------------------


def _truncate_rounds(path, out, keep_rounds):
    """Copy header + ``keep_rounds`` journal rounds, then a torn tail."""
    lines = path.read_bytes().splitlines(keepends=True)
    with open(out, "wb") as fh:
        fh.writelines(lines[: 1 + keep_rounds])
        fh.write(b'{"round": 99, "tor')


class TestMidRungResume:
    @pytest.mark.parametrize("keep_rounds", [0, 5, 13])
    def test_kill_and_resume_bit_exact(self, setup, tmp_path, keep_rounds):
        """Killing with trials paused at rungs and continuations in
        flight resumes bit-identically: same promotions, same culls."""
        kw = dict(
            backend=MULTIFIDELITY_BACKEND, max_evaluations=18, **RUN_KW
        )
        full_path = tmp_path / "full.jsonl"
        full = setup.run(
            "HW-IECI", "hyperpower", journal=full_path, **kw
        )
        part_path = tmp_path / "part.jsonl"
        _truncate_rounds(full_path, part_path, keep_rounds)
        resumed = setup.run(
            "HW-IECI", "hyperpower", resume_from=part_path, **kw
        )
        assert run_to_dict(resumed) == run_to_dict(full)
        assert part_path.read_bytes() == full_path.read_bytes()

    def test_kill_and_resume_with_faults(self, setup, tmp_path):
        """Continuation retries re-roll fault luck only — the curve seed
        is pinned — and the whole run still resumes bit-exactly."""
        kw = dict(
            backend=MULTIFIDELITY_BACKEND, max_evaluations=15,
            faults=FaultRates(crash=0.1, hang=0.05, nan_loss=0.05, nvml=0.1),
            retry=RetryPolicy(max_attempts=3, timeout_s=4000.0),
            **RUN_KW,
        )
        full_path = tmp_path / "full.jsonl"
        full = setup.run("Rand", "hyperpower", journal=full_path, **kw)
        assert full.n_attempts > full.n_trained  # faults actually fired
        part_path = tmp_path / "part.jsonl"
        _truncate_rounds(full_path, part_path, 7)
        resumed = setup.run("Rand", "hyperpower", resume_from=part_path, **kw)
        assert run_to_dict(resumed) == run_to_dict(full)
        assert part_path.read_bytes() == full_path.read_bytes()

    def test_resume_rejects_fidelity_mismatch(self, setup, tmp_path):
        """A journal written under different rung parameters is refused."""
        path = tmp_path / "rungs.jsonl"
        kw = dict(backend=MULTIFIDELITY_BACKEND, max_evaluations=6)
        setup.run(
            "Rand", "default", journal=path, scheduler="async",
            rungs=3, eta=3, workers=3, **kw,
        )
        with pytest.raises(ValueError, match="different .*parameters"):
            setup.run(
                "Rand", "default", resume_from=path, scheduler="async",
                rungs=2, eta=3, workers=3, **kw,
            )
