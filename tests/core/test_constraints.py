"""Tests for repro.core.constraints."""

import numpy as np
import pytest

from repro.core.constraints import (
    GIB,
    ConstraintSpec,
    GPConstraintModel,
    ModelConstraintChecker,
)
from repro.hwsim.devices import GTX_1070
from repro.hwsim.profiler import HardwareProfiler
from repro.models.hw_models import fit_hardware_models
from repro.models.profiling import run_profiling_campaign
from repro.space.presets import mnist_space


@pytest.fixture(scope="module")
def fitted():
    space = mnist_space()
    rng = np.random.default_rng(0)
    profiler = HardwareProfiler(GTX_1070, rng)
    data = run_profiling_campaign(space, "mnist", profiler, 80, rng)
    power, memory = fit_hardware_models(
        space, data, rng=np.random.default_rng(1), fit_intercept=True
    )
    return space, power, memory, data


class TestConstraintSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConstraintSpec(power_budget_w=-5.0)
        with pytest.raises(ValueError):
            ConstraintSpec(memory_budget_bytes=0.0)

    def test_unconstrained(self):
        assert ConstraintSpec().is_unconstrained
        assert not ConstraintSpec(power_budget_w=85.0).is_unconstrained

    def test_measured_feasible(self):
        spec = ConstraintSpec(power_budget_w=85.0, memory_budget_bytes=1.15 * GIB)
        assert spec.measured_feasible(80.0, 1.0 * GIB)
        assert not spec.measured_feasible(90.0, 1.0 * GIB)
        assert not spec.measured_feasible(80.0, 1.3 * GIB)

    def test_missing_measurement_counts_satisfied(self):
        # Tegra TX1: memory budget exists but cannot be measured -> the
        # paper drops the memory constraint there.
        spec = ConstraintSpec(power_budget_w=10.0, memory_budget_bytes=1.0 * GIB)
        assert spec.measured_feasible(8.0, None)
        assert not spec.measured_feasible(12.0, None)


class TestModelConstraintChecker:
    def test_requires_models_for_budgets(self, fitted):
        space, power, memory, _ = fitted
        spec = ConstraintSpec(power_budget_w=85.0)
        with pytest.raises(ValueError):
            ModelConstraintChecker(spec, None, None)
        ModelConstraintChecker(spec, power, None)  # OK

    def test_indicator_matches_predictions_without_margin(self, fitted):
        space, power, memory, data = fitted
        spec = ConstraintSpec(power_budget_w=85.0, memory_budget_bytes=1.15 * GIB)
        checker = ModelConstraintChecker(spec, power, memory, margin_sigmas=0.0)
        for config in data.configs[:20]:
            p, m = checker.predictions(config)
            expected = p <= 85.0 and m <= 1.15 * GIB
            assert checker.indicator(config) == expected

    def test_margin_makes_indicator_conservative(self, fitted):
        space, power, memory, data = fitted
        spec = ConstraintSpec(power_budget_w=85.0)
        loose = ModelConstraintChecker(spec, power, None, margin_sigmas=0.0)
        tight = ModelConstraintChecker(spec, power, None, margin_sigmas=2.0)
        accepted_loose = sum(loose.indicator(c) for c in data.configs)
        accepted_tight = sum(tight.indicator(c) for c in data.configs)
        assert accepted_tight <= accepted_loose

    def test_negative_margin_rejected(self, fitted):
        space, power, *_ = fitted
        with pytest.raises(ValueError):
            ModelConstraintChecker(
                ConstraintSpec(power_budget_w=85.0), power, None, margin_sigmas=-1.0
            )

    def test_probability_between_0_and_1(self, fitted):
        space, power, memory, data = fitted
        spec = ConstraintSpec(power_budget_w=85.0, memory_budget_bytes=1.15 * GIB)
        checker = ModelConstraintChecker(spec, power, memory)
        for config in data.configs[:20]:
            prob = checker.satisfaction_probability(config)
            assert 0.0 <= prob <= 1.0

    def test_probability_consistent_with_indicator(self, fitted):
        space, power, memory, data = fitted
        spec = ConstraintSpec(power_budget_w=85.0)
        checker = ModelConstraintChecker(spec, power, None)
        # Deep inside the feasible region the probability is near 1.
        probs_feasible = [
            checker.satisfaction_probability(c)
            for c in data.configs
            if checker.predictions(c)[0] < 80.0
        ]
        probs_infeasible = [
            checker.satisfaction_probability(c)
            for c in data.configs
            if checker.predictions(c)[0] > 95.0
        ]
        if probs_feasible and probs_infeasible:
            assert min(probs_feasible) > max(probs_infeasible)

    def test_unconstrained_always_feasible(self, fitted):
        space, power, memory, data = fitted
        checker = ModelConstraintChecker(ConstraintSpec(), None, None)
        assert checker.indicator(data.configs[0])
        assert checker.satisfaction_probability(data.configs[0]) == 1.0


class TestGPConstraintModel:
    def test_uninformative_before_observations(self, fitted):
        space, *_ = fitted
        spec = ConstraintSpec(power_budget_w=85.0)
        model = GPConstraintModel(space, spec)
        model.refit()
        config = space.sample(np.random.default_rng(2))
        assert model.satisfaction_probability(config) == 1.0
        assert model.indicator(config)

    def test_learns_power_landscape(self, fitted):
        space, power_model, _, data = fitted
        spec = ConstraintSpec(power_budget_w=85.0)
        model = GPConstraintModel(space, spec)
        for config, measured in zip(data.configs[:40], data.power_w[:40]):
            model.observe(config, measured, None)
        model.refit(np.random.default_rng(3))
        # Points whose measured power was far below / above budget should
        # receive high / low satisfaction probabilities.
        low_idx = int(np.argmin(data.power_w[:40]))
        high_idx = int(np.argmax(data.power_w[:40]))
        p_low = model.satisfaction_probability(data.configs[low_idx])
        p_high = model.satisfaction_probability(data.configs[high_idx])
        assert p_low > p_high

    def test_batch_matches_scalar_probabilities(self, fitted):
        space, _, _, data = fitted
        spec = ConstraintSpec(power_budget_w=85.0)
        model = GPConstraintModel(space, spec)
        for config, measured in zip(data.configs[:30], data.power_w[:30]):
            model.observe(config, measured, None)
        model.refit(np.random.default_rng(7))
        configs = data.configs[30:50]
        serial = np.array(
            [model.satisfaction_probability(c) for c in configs]
        )
        batch = np.asarray(model.satisfaction_probability_batch(configs))
        # The batch path evaluates the Gaussian CDF on the whole vector at
        # once; summation order inside erf differs from the scalar path by
        # a few ULP, amplified deep in the tails — hence 1e-8, not exact.
        np.testing.assert_allclose(batch, serial, rtol=1e-8)
        assert np.asarray(
            model.satisfaction_probability_batch([])
        ).shape == (0,)

    def test_nan_measurements_skipped(self, fitted):
        space, *_ = fitted
        spec = ConstraintSpec(power_budget_w=85.0)
        model = GPConstraintModel(space, spec)
        rng = np.random.default_rng(4)
        for _ in range(5):
            model.observe(space.sample(rng), None, None)
        model.refit()
        # All observations carried no power value -> still uninformative.
        assert model.satisfaction_probability(space.sample(rng)) == 1.0
